//! # decache
//!
//! A full-system simulation and reproduction of Rudolph & Segall's
//! *Dynamic Decentralized Cache Schemes for MIMD Parallel Processors*
//! (CMU-CS-84-139 / ISCA 1984): the **RB** and **RWB** snooping cache
//! coherence schemes, the **Test-and-Test-and-Set** synchronization
//! construct, the consistency proof as an executable model checker, and
//! the shared-bus bandwidth analysis including the multiple-bus machine.
//!
//! This umbrella crate re-exports the whole workspace under stable module
//! names; downstream users depend on `decache` alone.
//!
//! # Quickstart
//!
//! ```
//! use decache::core::ProtocolKind;
//! use decache::machine::{MachineBuilder, Script};
//! use decache::mem::{Addr, Word};
//!
//! // Two PEs share one variable under the RB scheme.
//! let shared = Addr::new(0);
//! let mut machine = MachineBuilder::new(ProtocolKind::Rb)
//!     .memory_words(64)
//!     .cache_lines(16)
//!     .processor(Script::new().write(shared, Word::new(42)).build())
//!     .processor(Script::new().read(shared).build())
//!     .build();
//! machine.run_to_completion(1_000);
//! assert_eq!(machine.memory().peek(shared).unwrap(), Word::new(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic dependency-free randomness: SplitMix64 seeding,
/// xoshiro256** streams, and the seeded randomized-test harness.
pub mod rng {
    pub use decache_rng::*;
}

/// Memory substrate: words, addresses, main memory, interleaved banks.
pub mod mem {
    pub use decache_mem::*;
}

/// Shared-bus substrate: transactions, arbitration, traffic accounting.
pub mod bus {
    pub use decache_bus::*;
}

/// Cache substrate: geometry, tag stores, statistics, Cm* emulation cache.
pub mod cache {
    pub use decache_cache::*;
}

/// The paper's contribution: the RB and RWB coherence protocols and their
/// baselines.
pub mod core {
    pub use decache_core::*;
}

/// The cycle-based MIMD machine simulator.
pub mod machine {
    pub use decache_machine::*;
}

/// Synchronization built on the simulated caches: TS and TTS spinlocks.
pub mod sync {
    pub use decache_sync::*;
}

/// Executable consistency proofs: product-machine checking and the
/// latest-value oracle.
pub mod verify {
    pub use decache_verify::*;
}

/// Workload generators.
pub mod workloads {
    pub use decache_workloads::*;
}

/// Bandwidth analytics and experiment table rendering.
pub mod analysis {
    pub use decache_analysis::*;
}

/// Unified telemetry: metrics snapshots, cycle-attribution histograms,
/// Perfetto trace export.
pub mod telemetry {
    pub use decache_telemetry::*;
}
