//! `decache-sim` — a small CLI front end for the simulator: pick a
//! protocol, a workload, and a machine shape; get cycles, traffic, and
//! hit ratios.
//!
//! ```text
//! decache-sim [--protocol rb|rb-nb|rwb|rwb:K|write-once|write-through|mesi]
//!             [--workload mix|array|lock|barrier]
//!             [--pes N] [--buses B] [--ops N] [--cache-lines N]
//! ```

use decache::core::ProtocolKind;
use decache::machine::MachineBuilder;
use decache::mem::{Addr, AddrRange};
use decache::sync::{BarrierWorker, LockWorker, Primitive};
use decache::workloads::{ArrayInit, MixConfig, MixWorkload};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Mix,
    Array,
    Lock,
    Barrier,
}

#[derive(Debug)]
struct Options {
    protocol: ProtocolKind,
    workload: Workload,
    pes: usize,
    buses: usize,
    ops: u64,
    cache_lines: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            protocol: ProtocolKind::Rwb,
            workload: Workload::Mix,
            pes: 8,
            buses: 1,
            ops: 2_000,
            cache_lines: 256,
        }
    }
}

fn parse_protocol(raw: &str) -> Result<ProtocolKind, String> {
    match raw {
        "rb" => Ok(ProtocolKind::Rb),
        "rb-nb" => Ok(ProtocolKind::RbNoBroadcast),
        "rwb" => Ok(ProtocolKind::Rwb),
        "write-once" => Ok(ProtocolKind::WriteOnce),
        "write-through" => Ok(ProtocolKind::WriteThrough),
        "mesi" => Ok(ProtocolKind::Mesi),
        other => {
            if let Some(k) = other.strip_prefix("rwb:") {
                let k: u8 = k
                    .parse()
                    .map_err(|_| format!("bad rwb threshold: {other}"))?;
                Ok(ProtocolKind::RwbThreshold(k))
            } else {
                Err(format!("unknown protocol: {other}"))
            }
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--protocol" => options.protocol = parse_protocol(value()?)?,
            "--workload" => {
                options.workload = match value()? {
                    "mix" => Workload::Mix,
                    "array" => Workload::Array,
                    "lock" => Workload::Lock,
                    "barrier" => Workload::Barrier,
                    other => return Err(format!("unknown workload: {other}")),
                }
            }
            "--pes" => {
                options.pes = value()?.parse().map_err(|e| format!("bad --pes: {e}"))?;
            }
            "--buses" => {
                options.buses = value()?.parse().map_err(|e| format!("bad --buses: {e}"))?;
            }
            "--ops" => {
                options.ops = value()?.parse().map_err(|e| format!("bad --ops: {e}"))?;
            }
            "--cache-lines" => {
                options.cache_lines = value()?
                    .parse()
                    .map_err(|e| format!("bad --cache-lines: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: decache-sim [--protocol P] [--workload W] [--pes N] \
                            [--buses B] [--ops N] [--cache-lines N]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if options.pes == 0 {
        return Err("--pes must be at least 1".to_owned());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut builder = MachineBuilder::new(options.protocol);
    builder
        .memory_words(1 << 15)
        .cache_lines(options.cache_lines)
        .buses(options.buses);

    match options.workload {
        Workload::Mix => {
            let shared = AddrRange::with_len(Addr::new(0), 64);
            let config = MixConfig {
                ops_per_pe: options.ops,
                ..MixConfig::default()
            };
            builder.processors(options.pes, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            });
        }
        Workload::Array => {
            let array = AddrRange::with_len(Addr::new(0), options.ops);
            builder.processor(Box::new(ArrayInit::new(array)));
        }
        Workload::Lock => {
            let rounds = options.ops.max(1);
            builder.processors(options.pes, |pe| {
                Box::new(
                    LockWorker::new(Addr::new(0), Primitive::TestAndTestAndSet)
                        .rounds(rounds)
                        .critical_section(Addr::new(1024 + pe as u64), 8),
                )
            });
        }
        Workload::Barrier => {
            let pes = options.pes as u64;
            let episodes = options.ops.max(1);
            builder.processors(options.pes, |_| {
                Box::new(BarrierWorker::new(Addr::new(0), pes, episodes))
            });
        }
    }

    let mut machine = builder.build();
    let cycles = machine.run_to_completion(10_000_000_000);

    println!("protocol:      {}", machine.protocol().name());
    println!("processors:    {}", machine.pe_count());
    println!("topology:      {}", machine.routing());
    println!("cycles:        {cycles}");
    println!("bus traffic:   {}", machine.traffic());
    println!("cache stats:   {}", machine.total_cache_stats());
    println!("machine stats: {}", machine.stats());
    if options.buses > 1 {
        let per_bus = machine.traffic_per_bus();
        for bus in 0..per_bus.bus_count() {
            println!("  bus {bus}: {}", per_bus.bus(bus));
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.protocol, ProtocolKind::Rwb);
        assert_eq!(o.workload, Workload::Mix);
        assert_eq!(o.pes, 8);
        assert_eq!(o.buses, 1);
    }

    #[test]
    fn all_flags_parse() {
        let o = parse_args(&args(&[
            "--protocol",
            "rb",
            "--workload",
            "lock",
            "--pes",
            "4",
            "--buses",
            "2",
            "--ops",
            "100",
            "--cache-lines",
            "64",
        ]))
        .unwrap();
        assert_eq!(o.protocol, ProtocolKind::Rb);
        assert_eq!(o.workload, Workload::Lock);
        assert_eq!(o.pes, 4);
        assert_eq!(o.buses, 2);
        assert_eq!(o.ops, 100);
        assert_eq!(o.cache_lines, 64);
    }

    #[test]
    fn protocol_spellings() {
        assert_eq!(
            parse_protocol("rb-nb").unwrap(),
            ProtocolKind::RbNoBroadcast
        );
        assert_eq!(
            parse_protocol("rwb:3").unwrap(),
            ProtocolKind::RwbThreshold(3)
        );
        assert_eq!(
            parse_protocol("write-once").unwrap(),
            ProtocolKind::WriteOnce
        );
        assert_eq!(parse_protocol("mesi").unwrap(), ProtocolKind::Mesi);
        assert!(parse_protocol("moesi").is_err());
        assert!(parse_protocol("rwb:x").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_args(&args(&["--pes"])).is_err());
        assert!(parse_args(&args(&["--pes", "0"])).is_err());
        assert!(parse_args(&args(&["--workload", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
    }
}
