/root/repo/target/debug/deps/properties-34ca76650936d2c2.d: crates/machine/tests/properties.rs

/root/repo/target/debug/deps/properties-34ca76650936d2c2: crates/machine/tests/properties.rs

crates/machine/tests/properties.rs:
