/root/repo/target/debug/deps/decache_bus-dcc215e1a8bf5037.d: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

/root/repo/target/debug/deps/decache_bus-dcc215e1a8bf5037: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

crates/bus/src/lib.rs:
crates/bus/src/arbiter.rs:
crates/bus/src/multibus.rs:
crates/bus/src/queue.rs:
crates/bus/src/routing.rs:
crates/bus/src/traffic.rs:
crates/bus/src/transaction.rs:
