/root/repo/target/debug/deps/decache_analysis-1423607b3af15d91.d: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/libdecache_analysis-1423607b3af15d91.rlib: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/libdecache_analysis-1423607b3af15d91.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bandwidth.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/multibus.rs:
crates/analysis/src/par.rs:
crates/analysis/src/saturation.rs:
crates/analysis/src/table.rs:
