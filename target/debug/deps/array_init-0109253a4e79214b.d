/root/repo/target/debug/deps/array_init-0109253a4e79214b.d: crates/bench/src/bin/array_init.rs Cargo.toml

/root/repo/target/debug/deps/libarray_init-0109253a4e79214b.rmeta: crates/bench/src/bin/array_init.rs Cargo.toml

crates/bench/src/bin/array_init.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
