/root/repo/target/debug/deps/hierarchy-22a16179ac99251d.d: crates/bench/src/bin/hierarchy.rs

/root/repo/target/debug/deps/hierarchy-22a16179ac99251d: crates/bench/src/bin/hierarchy.rs

crates/bench/src/bin/hierarchy.rs:
