/root/repo/target/debug/deps/refinement-fb37c9645af6a648.d: crates/verify/tests/refinement.rs

/root/repo/target/debug/deps/refinement-fb37c9645af6a648: crates/verify/tests/refinement.rs

crates/verify/tests/refinement.rs:
