/root/repo/target/debug/deps/decache_analysis-5e561e0aa2b5d3b3.d: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_analysis-5e561e0aa2b5d3b3.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/bandwidth.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/multibus.rs:
crates/analysis/src/par.rs:
crates/analysis/src/saturation.rs:
crates/analysis/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
