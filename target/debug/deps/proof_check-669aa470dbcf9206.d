/root/repo/target/debug/deps/proof_check-669aa470dbcf9206.d: crates/bench/src/bin/proof_check.rs

/root/repo/target/debug/deps/proof_check-669aa470dbcf9206: crates/bench/src/bin/proof_check.rs

crates/bench/src/bin/proof_check.rs:
