/root/repo/target/debug/deps/cmstar-14cc8dc43e8c64d9.d: crates/bench/benches/cmstar.rs Cargo.toml

/root/repo/target/debug/deps/libcmstar-14cc8dc43e8c64d9.rmeta: crates/bench/benches/cmstar.rs Cargo.toml

crates/bench/benches/cmstar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
