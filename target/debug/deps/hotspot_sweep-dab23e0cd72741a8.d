/root/repo/target/debug/deps/hotspot_sweep-dab23e0cd72741a8.d: crates/bench/src/bin/hotspot_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhotspot_sweep-dab23e0cd72741a8.rmeta: crates/bench/src/bin/hotspot_sweep.rs Cargo.toml

crates/bench/src/bin/hotspot_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
