/root/repo/target/debug/deps/ablation_broadcast-240464b101931f4c.d: crates/bench/src/bin/ablation_broadcast.rs

/root/repo/target/debug/deps/ablation_broadcast-240464b101931f4c: crates/bench/src/bin/ablation_broadcast.rs

crates/bench/src/bin/ablation_broadcast.rs:
