/root/repo/target/debug/deps/decache_sim-0052128f313489df.d: src/bin/decache-sim.rs

/root/repo/target/debug/deps/decache_sim-0052128f313489df: src/bin/decache-sim.rs

src/bin/decache-sim.rs:
