/root/repo/target/debug/deps/decache_sync-d3474cc9ed44bd2f.d: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

/root/repo/target/debug/deps/libdecache_sync-d3474cc9ed44bd2f.rlib: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

/root/repo/target/debug/deps/libdecache_sync-d3474cc9ed44bd2f.rmeta: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

crates/sync/src/lib.rs:
crates/sync/src/barrier.rs:
crates/sync/src/conduct.rs:
crates/sync/src/contention.rs:
crates/sync/src/lock.rs:
crates/sync/src/scenario.rs:
