/root/repo/target/debug/deps/ablation_arbiter-c49ed23868cc7418.d: crates/bench/src/bin/ablation_arbiter.rs

/root/repo/target/debug/deps/ablation_arbiter-c49ed23868cc7418: crates/bench/src/bin/ablation_arbiter.rs

crates/bench/src/bin/ablation_arbiter.rs:
