/root/repo/target/debug/deps/decache_sim-fdb0c3c876c84ebe.d: src/bin/decache-sim.rs

/root/repo/target/debug/deps/decache_sim-fdb0c3c876c84ebe: src/bin/decache-sim.rs

src/bin/decache-sim.rs:
