/root/repo/target/debug/deps/properties-5d97e345979bde1c.d: crates/machine/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5d97e345979bde1c.rmeta: crates/machine/tests/properties.rs Cargo.toml

crates/machine/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
