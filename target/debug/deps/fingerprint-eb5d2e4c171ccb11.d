/root/repo/target/debug/deps/fingerprint-eb5d2e4c171ccb11.d: tests/fingerprint.rs

/root/repo/target/debug/deps/fingerprint-eb5d2e4c171ccb11: tests/fingerprint.rs

tests/fingerprint.rs:
