/root/repo/target/debug/deps/proof-7b19b5d4cbd55ab6.d: crates/bench/benches/proof.rs

/root/repo/target/debug/deps/proof-7b19b5d4cbd55ab6: crates/bench/benches/proof.rs

crates/bench/benches/proof.rs:
