/root/repo/target/debug/deps/protocol_check-69863f1a30afba22.d: crates/bench/src/bin/protocol_check.rs

/root/repo/target/debug/deps/protocol_check-69863f1a30afba22: crates/bench/src/bin/protocol_check.rs

crates/bench/src/bin/protocol_check.rs:
