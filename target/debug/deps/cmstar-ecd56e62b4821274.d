/root/repo/target/debug/deps/cmstar-ecd56e62b4821274.d: crates/bench/benches/cmstar.rs

/root/repo/target/debug/deps/cmstar-ecd56e62b4821274: crates/bench/benches/cmstar.rs

crates/bench/benches/cmstar.rs:
