/root/repo/target/debug/deps/decache_core-d0bb57b7469b3bc4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_core-d0bb57b7469b3bc4.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/diagram.rs:
crates/core/src/introspect.rs:
crates/core/src/kind.rs:
crates/core/src/protocol.rs:
crates/core/src/rb.rs:
crates/core/src/rwb.rs:
crates/core/src/state.rs:
crates/core/src/write_once.rs:
crates/core/src/write_through.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
