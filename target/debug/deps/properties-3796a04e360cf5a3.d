/root/repo/target/debug/deps/properties-3796a04e360cf5a3.d: crates/workloads/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3796a04e360cf5a3.rmeta: crates/workloads/tests/properties.rs Cargo.toml

crates/workloads/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
