/root/repo/target/debug/deps/decache_sim-006c5e4151b6d829.d: src/bin/decache-sim.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_sim-006c5e4151b6d829.rmeta: src/bin/decache-sim.rs Cargo.toml

src/bin/decache-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
