/root/repo/target/debug/deps/ablation_broadcast-4f02bd2df44ab487.d: crates/bench/src/bin/ablation_broadcast.rs

/root/repo/target/debug/deps/ablation_broadcast-4f02bd2df44ab487: crates/bench/src/bin/ablation_broadcast.rs

crates/bench/src/bin/ablation_broadcast.rs:
