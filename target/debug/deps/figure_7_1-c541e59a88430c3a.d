/root/repo/target/debug/deps/figure_7_1-c541e59a88430c3a.d: crates/bench/src/bin/figure_7_1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_7_1-c541e59a88430c3a.rmeta: crates/bench/src/bin/figure_7_1.rs Cargo.toml

crates/bench/src/bin/figure_7_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
