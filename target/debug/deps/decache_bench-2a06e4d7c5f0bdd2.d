/root/repo/target/debug/deps/decache_bench-2a06e4d7c5f0bdd2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/decache_bench-2a06e4d7c5f0bdd2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
