/root/repo/target/debug/deps/hierarchy_sync-2ff09a15fa741295.d: tests/hierarchy_sync.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy_sync-2ff09a15fa741295.rmeta: tests/hierarchy_sync.rs Cargo.toml

tests/hierarchy_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
