/root/repo/target/debug/deps/coherence-b7029661de0100df.d: crates/machine/tests/coherence.rs

/root/repo/target/debug/deps/coherence-b7029661de0100df: crates/machine/tests/coherence.rs

crates/machine/tests/coherence.rs:
