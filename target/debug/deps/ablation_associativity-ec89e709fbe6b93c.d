/root/repo/target/debug/deps/ablation_associativity-ec89e709fbe6b93c.d: crates/bench/src/bin/ablation_associativity.rs

/root/repo/target/debug/deps/ablation_associativity-ec89e709fbe6b93c: crates/bench/src/bin/ablation_associativity.rs

crates/bench/src/bin/ablation_associativity.rs:
