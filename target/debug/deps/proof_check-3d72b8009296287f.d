/root/repo/target/debug/deps/proof_check-3d72b8009296287f.d: crates/bench/src/bin/proof_check.rs

/root/repo/target/debug/deps/proof_check-3d72b8009296287f: crates/bench/src/bin/proof_check.rs

crates/bench/src/bin/proof_check.rs:
