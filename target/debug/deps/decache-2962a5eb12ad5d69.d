/root/repo/target/debug/deps/decache-2962a5eb12ad5d69.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdecache-2962a5eb12ad5d69.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
