/root/repo/target/debug/deps/ablation_broadcast-e18032c25f20e9ae.d: crates/bench/src/bin/ablation_broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libablation_broadcast-e18032c25f20e9ae.rmeta: crates/bench/src/bin/ablation_broadcast.rs Cargo.toml

crates/bench/src/bin/ablation_broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
