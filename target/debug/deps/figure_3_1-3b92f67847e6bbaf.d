/root/repo/target/debug/deps/figure_3_1-3b92f67847e6bbaf.d: crates/bench/src/bin/figure_3_1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_3_1-3b92f67847e6bbaf.rmeta: crates/bench/src/bin/figure_3_1.rs Cargo.toml

crates/bench/src/bin/figure_3_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
