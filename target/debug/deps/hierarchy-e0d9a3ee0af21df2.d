/root/repo/target/debug/deps/hierarchy-e0d9a3ee0af21df2.d: crates/bench/src/bin/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy-e0d9a3ee0af21df2.rmeta: crates/bench/src/bin/hierarchy.rs Cargo.toml

crates/bench/src/bin/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
