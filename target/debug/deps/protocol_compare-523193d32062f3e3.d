/root/repo/target/debug/deps/protocol_compare-523193d32062f3e3.d: crates/bench/src/bin/protocol_compare.rs

/root/repo/target/debug/deps/protocol_compare-523193d32062f3e3: crates/bench/src/bin/protocol_compare.rs

crates/bench/src/bin/protocol_compare.rs:
