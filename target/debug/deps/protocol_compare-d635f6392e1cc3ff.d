/root/repo/target/debug/deps/protocol_compare-d635f6392e1cc3ff.d: crates/bench/src/bin/protocol_compare.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_compare-d635f6392e1cc3ff.rmeta: crates/bench/src/bin/protocol_compare.rs Cargo.toml

crates/bench/src/bin/protocol_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
