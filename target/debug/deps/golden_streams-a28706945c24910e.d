/root/repo/target/debug/deps/golden_streams-a28706945c24910e.d: crates/workloads/tests/golden_streams.rs

/root/repo/target/debug/deps/golden_streams-a28706945c24910e: crates/workloads/tests/golden_streams.rs

crates/workloads/tests/golden_streams.rs:
