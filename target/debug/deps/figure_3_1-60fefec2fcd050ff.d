/root/repo/target/debug/deps/figure_3_1-60fefec2fcd050ff.d: crates/bench/src/bin/figure_3_1.rs

/root/repo/target/debug/deps/figure_3_1-60fefec2fcd050ff: crates/bench/src/bin/figure_3_1.rs

crates/bench/src/bin/figure_3_1.rs:
