/root/repo/target/debug/deps/bandwidth-99c687888e1c72ec.d: crates/bench/src/bin/bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libbandwidth-99c687888e1c72ec.rmeta: crates/bench/src/bin/bandwidth.rs Cargo.toml

crates/bench/src/bin/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
