/root/repo/target/debug/deps/fast_path_invariants-0d2d5095506b578b.d: crates/machine/tests/fast_path_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libfast_path_invariants-0d2d5095506b578b.rmeta: crates/machine/tests/fast_path_invariants.rs Cargo.toml

crates/machine/tests/fast_path_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
