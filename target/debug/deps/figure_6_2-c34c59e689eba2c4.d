/root/repo/target/debug/deps/figure_6_2-c34c59e689eba2c4.d: crates/bench/src/bin/figure_6_2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_6_2-c34c59e689eba2c4.rmeta: crates/bench/src/bin/figure_6_2.rs Cargo.toml

crates/bench/src/bin/figure_6_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
