/root/repo/target/debug/deps/decache_bench-5caf1b606f21a250.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_bench-5caf1b606f21a250.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
