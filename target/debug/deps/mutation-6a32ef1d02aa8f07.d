/root/repo/target/debug/deps/mutation-6a32ef1d02aa8f07.d: crates/verify/tests/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libmutation-6a32ef1d02aa8f07.rmeta: crates/verify/tests/mutation.rs Cargo.toml

crates/verify/tests/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
