/root/repo/target/debug/deps/decache_mem-2579fea596ed0d77.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

/root/repo/target/debug/deps/decache_mem-2579fea596ed0d77: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/bank.rs:
crates/mem/src/error.rs:
crates/mem/src/memory.rs:
crates/mem/src/word.rs:
