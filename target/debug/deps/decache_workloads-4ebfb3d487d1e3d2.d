/root/repo/target/debug/deps/decache_workloads-4ebfb3d487d1e3d2.d: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

/root/repo/target/debug/deps/libdecache_workloads-4ebfb3d487d1e3d2.rlib: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

/root/repo/target/debug/deps/libdecache_workloads-4ebfb3d487d1e3d2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

crates/workloads/src/lib.rs:
crates/workloads/src/array_init.rs:
crates/workloads/src/cmstar.rs:
crates/workloads/src/matrix.rs:
crates/workloads/src/mix.rs:
crates/workloads/src/producer_consumer.rs:
crates/workloads/src/reference.rs:
crates/workloads/src/systolic.rs:
