/root/repo/target/debug/deps/decache_core-8a178b29d0ad0853.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

/root/repo/target/debug/deps/decache_core-8a178b29d0ad0853: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/diagram.rs:
crates/core/src/introspect.rs:
crates/core/src/kind.rs:
crates/core/src/protocol.rs:
crates/core/src/rb.rs:
crates/core/src/rwb.rs:
crates/core/src/state.rs:
crates/core/src/write_once.rs:
crates/core/src/write_through.rs:
