/root/repo/target/debug/deps/figure_5_1-a6ef9bb4701893f9.d: crates/bench/src/bin/figure_5_1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_5_1-a6ef9bb4701893f9.rmeta: crates/bench/src/bin/figure_5_1.rs Cargo.toml

crates/bench/src/bin/figure_5_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
