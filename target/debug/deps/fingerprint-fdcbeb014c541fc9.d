/root/repo/target/debug/deps/fingerprint-fdcbeb014c541fc9.d: tests/fingerprint.rs Cargo.toml

/root/repo/target/debug/deps/libfingerprint-fdcbeb014c541fc9.rmeta: tests/fingerprint.rs Cargo.toml

tests/fingerprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
