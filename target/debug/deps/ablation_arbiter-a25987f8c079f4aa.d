/root/repo/target/debug/deps/ablation_arbiter-a25987f8c079f4aa.d: crates/bench/src/bin/ablation_arbiter.rs Cargo.toml

/root/repo/target/debug/deps/libablation_arbiter-a25987f8c079f4aa.rmeta: crates/bench/src/bin/ablation_arbiter.rs Cargo.toml

crates/bench/src/bin/ablation_arbiter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
