/root/repo/target/debug/deps/consistency-fff704194e4d010e.d: tests/consistency.rs

/root/repo/target/debug/deps/consistency-fff704194e4d010e: tests/consistency.rs

tests/consistency.rs:
