/root/repo/target/debug/deps/cyclic_sharing-96ef6e1c9bfe71b9.d: crates/bench/src/bin/cyclic_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libcyclic_sharing-96ef6e1c9bfe71b9.rmeta: crates/bench/src/bin/cyclic_sharing.rs Cargo.toml

crates/bench/src/bin/cyclic_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
