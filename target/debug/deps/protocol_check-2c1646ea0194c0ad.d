/root/repo/target/debug/deps/protocol_check-2c1646ea0194c0ad.d: crates/bench/src/bin/protocol_check.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_check-2c1646ea0194c0ad.rmeta: crates/bench/src/bin/protocol_check.rs Cargo.toml

crates/bench/src/bin/protocol_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
