/root/repo/target/debug/deps/figure_6_3-355679d194ef569a.d: crates/bench/src/bin/figure_6_3.rs

/root/repo/target/debug/deps/figure_6_3-355679d194ef569a: crates/bench/src/bin/figure_6_3.rs

crates/bench/src/bin/figure_6_3.rs:
