/root/repo/target/debug/deps/figure_6_1-e22365cf985749f7.d: crates/bench/src/bin/figure_6_1.rs

/root/repo/target/debug/deps/figure_6_1-e22365cf985749f7: crates/bench/src/bin/figure_6_1.rs

crates/bench/src/bin/figure_6_1.rs:
