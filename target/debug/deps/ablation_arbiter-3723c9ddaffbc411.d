/root/repo/target/debug/deps/ablation_arbiter-3723c9ddaffbc411.d: crates/bench/src/bin/ablation_arbiter.rs Cargo.toml

/root/repo/target/debug/deps/libablation_arbiter-3723c9ddaffbc411.rmeta: crates/bench/src/bin/ablation_arbiter.rs Cargo.toml

crates/bench/src/bin/ablation_arbiter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
