/root/repo/target/debug/deps/decache_workloads-5d087d8722cb6777.d: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_workloads-5d087d8722cb6777.rmeta: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/array_init.rs:
crates/workloads/src/cmstar.rs:
crates/workloads/src/matrix.rs:
crates/workloads/src/mix.rs:
crates/workloads/src/producer_consumer.rs:
crates/workloads/src/reference.rs:
crates/workloads/src/systolic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
