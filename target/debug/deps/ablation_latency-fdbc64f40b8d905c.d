/root/repo/target/debug/deps/ablation_latency-fdbc64f40b8d905c.d: crates/bench/src/bin/ablation_latency.rs

/root/repo/target/debug/deps/ablation_latency-fdbc64f40b8d905c: crates/bench/src/bin/ablation_latency.rs

crates/bench/src/bin/ablation_latency.rs:
