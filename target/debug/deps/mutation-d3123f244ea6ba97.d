/root/repo/target/debug/deps/mutation-d3123f244ea6ba97.d: crates/verify/tests/mutation.rs

/root/repo/target/debug/deps/mutation-d3123f244ea6ba97: crates/verify/tests/mutation.rs

crates/verify/tests/mutation.rs:
