/root/repo/target/debug/deps/bandwidth-135d25041d42ddb0.d: crates/bench/src/bin/bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libbandwidth-135d25041d42ddb0.rmeta: crates/bench/src/bin/bandwidth.rs Cargo.toml

crates/bench/src/bin/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
