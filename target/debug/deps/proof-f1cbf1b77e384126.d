/root/repo/target/debug/deps/proof-f1cbf1b77e384126.d: crates/bench/benches/proof.rs Cargo.toml

/root/repo/target/debug/deps/libproof-f1cbf1b77e384126.rmeta: crates/bench/benches/proof.rs Cargo.toml

crates/bench/benches/proof.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
