/root/repo/target/debug/deps/figure_6_2-c8455fe68a1505db.d: crates/bench/src/bin/figure_6_2.rs

/root/repo/target/debug/deps/figure_6_2-c8455fe68a1505db: crates/bench/src/bin/figure_6_2.rs

crates/bench/src/bin/figure_6_2.rs:
