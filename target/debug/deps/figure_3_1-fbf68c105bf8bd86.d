/root/repo/target/debug/deps/figure_3_1-fbf68c105bf8bd86.d: crates/bench/src/bin/figure_3_1.rs

/root/repo/target/debug/deps/figure_3_1-fbf68c105bf8bd86: crates/bench/src/bin/figure_3_1.rs

crates/bench/src/bin/figure_3_1.rs:
