/root/repo/target/debug/deps/decache_bench-adc5fe0e814b2f07.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdecache_bench-adc5fe0e814b2f07.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdecache_bench-adc5fe0e814b2f07.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
