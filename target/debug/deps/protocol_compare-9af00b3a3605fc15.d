/root/repo/target/debug/deps/protocol_compare-9af00b3a3605fc15.d: crates/bench/src/bin/protocol_compare.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_compare-9af00b3a3605fc15.rmeta: crates/bench/src/bin/protocol_compare.rs Cargo.toml

crates/bench/src/bin/protocol_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
