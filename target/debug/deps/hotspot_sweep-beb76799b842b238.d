/root/repo/target/debug/deps/hotspot_sweep-beb76799b842b238.d: crates/bench/src/bin/hotspot_sweep.rs

/root/repo/target/debug/deps/hotspot_sweep-beb76799b842b238: crates/bench/src/bin/hotspot_sweep.rs

crates/bench/src/bin/hotspot_sweep.rs:
