/root/repo/target/debug/deps/ablation_latency-9f7858173b7c814a.d: crates/bench/src/bin/ablation_latency.rs Cargo.toml

/root/repo/target/debug/deps/libablation_latency-9f7858173b7c814a.rmeta: crates/bench/src/bin/ablation_latency.rs Cargo.toml

crates/bench/src/bin/ablation_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
