/root/repo/target/debug/deps/figure_6_3-1575c1baa2ebd1ba.d: crates/bench/src/bin/figure_6_3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_6_3-1575c1baa2ebd1ba.rmeta: crates/bench/src/bin/figure_6_3.rs Cargo.toml

crates/bench/src/bin/figure_6_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
