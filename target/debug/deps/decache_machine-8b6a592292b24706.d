/root/repo/target/debug/deps/decache_machine-8b6a592292b24706.d: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/decache_machine-8b6a592292b24706: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/builder.rs:
crates/machine/src/machine.rs:
crates/machine/src/op.rs:
crates/machine/src/processor.rs:
crates/machine/src/recovery.rs:
crates/machine/src/sharers.rs:
crates/machine/src/snapshot.rs:
crates/machine/src/stats.rs:
crates/machine/src/status.rs:
crates/machine/src/trace.rs:
