/root/repo/target/debug/deps/figure_6_3-1556f00adf74bd70.d: crates/bench/src/bin/figure_6_3.rs

/root/repo/target/debug/deps/figure_6_3-1556f00adf74bd70: crates/bench/src/bin/figure_6_3.rs

crates/bench/src/bin/figure_6_3.rs:
