/root/repo/target/debug/deps/figure_7_1-0fb5bf23d4b947c4.d: crates/bench/src/bin/figure_7_1.rs

/root/repo/target/debug/deps/figure_7_1-0fb5bf23d4b947c4: crates/bench/src/bin/figure_7_1.rs

crates/bench/src/bin/figure_7_1.rs:
