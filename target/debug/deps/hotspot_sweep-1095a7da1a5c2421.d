/root/repo/target/debug/deps/hotspot_sweep-1095a7da1a5c2421.d: crates/bench/src/bin/hotspot_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhotspot_sweep-1095a7da1a5c2421.rmeta: crates/bench/src/bin/hotspot_sweep.rs Cargo.toml

crates/bench/src/bin/hotspot_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
