/root/repo/target/debug/deps/hierarchy-ef11aa86f23bd47b.d: crates/bench/src/bin/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy-ef11aa86f23bd47b.rmeta: crates/bench/src/bin/hierarchy.rs Cargo.toml

crates/bench/src/bin/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
