/root/repo/target/debug/deps/properties-334a076d4313fc38.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/properties-334a076d4313fc38: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
