/root/repo/target/debug/deps/barrier_phases-039cabb4cf921baf.d: crates/bench/src/bin/barrier_phases.rs

/root/repo/target/debug/deps/barrier_phases-039cabb4cf921baf: crates/bench/src/bin/barrier_phases.rs

crates/bench/src/bin/barrier_phases.rs:
