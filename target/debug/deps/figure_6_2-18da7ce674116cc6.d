/root/repo/target/debug/deps/figure_6_2-18da7ce674116cc6.d: crates/bench/src/bin/figure_6_2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_6_2-18da7ce674116cc6.rmeta: crates/bench/src/bin/figure_6_2.rs Cargo.toml

crates/bench/src/bin/figure_6_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
