/root/repo/target/debug/deps/properties-e03a188ee6aea323.d: crates/cache/tests/properties.rs

/root/repo/target/debug/deps/properties-e03a188ee6aea323: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
