/root/repo/target/debug/deps/figure_5_1-36eb20c4076e865a.d: crates/bench/src/bin/figure_5_1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_5_1-36eb20c4076e865a.rmeta: crates/bench/src/bin/figure_5_1.rs Cargo.toml

crates/bench/src/bin/figure_5_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
