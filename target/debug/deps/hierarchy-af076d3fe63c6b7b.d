/root/repo/target/debug/deps/hierarchy-af076d3fe63c6b7b.d: crates/machine/tests/hierarchy.rs

/root/repo/target/debug/deps/hierarchy-af076d3fe63c6b7b: crates/machine/tests/hierarchy.rs

crates/machine/tests/hierarchy.rs:
