/root/repo/target/debug/deps/decache_verify-87698c33569ae761.d: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

/root/repo/target/debug/deps/libdecache_verify-87698c33569ae761.rlib: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

/root/repo/target/debug/deps/libdecache_verify-87698c33569ae761.rmeta: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

crates/verify/src/lib.rs:
crates/verify/src/conformance.rs:
crates/verify/src/lint.rs:
crates/verify/src/monotonic.rs:
crates/verify/src/oracle.rs:
crates/verify/src/product.rs:
crates/verify/src/witness.rs:
crates/verify/src/lint_baseline.txt:
