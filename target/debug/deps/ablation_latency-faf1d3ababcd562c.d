/root/repo/target/debug/deps/ablation_latency-faf1d3ababcd562c.d: crates/bench/src/bin/ablation_latency.rs

/root/repo/target/debug/deps/ablation_latency-faf1d3ababcd562c: crates/bench/src/bin/ablation_latency.rs

crates/bench/src/bin/ablation_latency.rs:
