/root/repo/target/debug/deps/decache_sim-4139e20e5266e99a.d: src/bin/decache-sim.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_sim-4139e20e5266e99a.rmeta: src/bin/decache-sim.rs Cargo.toml

src/bin/decache-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
