/root/repo/target/debug/deps/hierarchy-38867b54cd83a97a.d: crates/machine/tests/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy-38867b54cd83a97a.rmeta: crates/machine/tests/hierarchy.rs Cargo.toml

crates/machine/tests/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
