/root/repo/target/debug/deps/ablation_k-f40d0b1c93a3f90e.d: crates/bench/src/bin/ablation_k.rs Cargo.toml

/root/repo/target/debug/deps/libablation_k-f40d0b1c93a3f90e.rmeta: crates/bench/src/bin/ablation_k.rs Cargo.toml

crates/bench/src/bin/ablation_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
