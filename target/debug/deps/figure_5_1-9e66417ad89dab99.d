/root/repo/target/debug/deps/figure_5_1-9e66417ad89dab99.d: crates/bench/src/bin/figure_5_1.rs

/root/repo/target/debug/deps/figure_5_1-9e66417ad89dab99: crates/bench/src/bin/figure_5_1.rs

crates/bench/src/bin/figure_5_1.rs:
