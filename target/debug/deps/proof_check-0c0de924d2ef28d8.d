/root/repo/target/debug/deps/proof_check-0c0de924d2ef28d8.d: crates/bench/src/bin/proof_check.rs Cargo.toml

/root/repo/target/debug/deps/libproof_check-0c0de924d2ef28d8.rmeta: crates/bench/src/bin/proof_check.rs Cargo.toml

crates/bench/src/bin/proof_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
