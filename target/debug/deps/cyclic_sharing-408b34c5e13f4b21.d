/root/repo/target/debug/deps/cyclic_sharing-408b34c5e13f4b21.d: crates/bench/src/bin/cyclic_sharing.rs

/root/repo/target/debug/deps/cyclic_sharing-408b34c5e13f4b21: crates/bench/src/bin/cyclic_sharing.rs

crates/bench/src/bin/cyclic_sharing.rs:
