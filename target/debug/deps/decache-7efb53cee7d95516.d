/root/repo/target/debug/deps/decache-7efb53cee7d95516.d: src/lib.rs

/root/repo/target/debug/deps/libdecache-7efb53cee7d95516.rlib: src/lib.rs

/root/repo/target/debug/deps/libdecache-7efb53cee7d95516.rmeta: src/lib.rs

src/lib.rs:
