/root/repo/target/debug/deps/decache_bus-12db917fafc4f0ca.d: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

/root/repo/target/debug/deps/libdecache_bus-12db917fafc4f0ca.rlib: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

/root/repo/target/debug/deps/libdecache_bus-12db917fafc4f0ca.rmeta: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

crates/bus/src/lib.rs:
crates/bus/src/arbiter.rs:
crates/bus/src/multibus.rs:
crates/bus/src/queue.rs:
crates/bus/src/routing.rs:
crates/bus/src/traffic.rs:
crates/bus/src/transaction.rs:
