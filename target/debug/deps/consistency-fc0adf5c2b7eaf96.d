/root/repo/target/debug/deps/consistency-fc0adf5c2b7eaf96.d: tests/consistency.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency-fc0adf5c2b7eaf96.rmeta: tests/consistency.rs Cargo.toml

tests/consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
