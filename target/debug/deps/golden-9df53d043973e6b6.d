/root/repo/target/debug/deps/golden-9df53d043973e6b6.d: crates/rng/tests/golden.rs

/root/repo/target/debug/deps/golden-9df53d043973e6b6: crates/rng/tests/golden.rs

crates/rng/tests/golden.rs:
