/root/repo/target/debug/deps/decache-c341bca2791901a0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdecache-c341bca2791901a0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
