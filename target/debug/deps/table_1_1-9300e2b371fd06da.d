/root/repo/target/debug/deps/table_1_1-9300e2b371fd06da.d: crates/bench/src/bin/table_1_1.rs

/root/repo/target/debug/deps/table_1_1-9300e2b371fd06da: crates/bench/src/bin/table_1_1.rs

crates/bench/src/bin/table_1_1.rs:
