/root/repo/target/debug/deps/barrier_phases-6ac8f28d13405a25.d: crates/bench/src/bin/barrier_phases.rs

/root/repo/target/debug/deps/barrier_phases-6ac8f28d13405a25: crates/bench/src/bin/barrier_phases.rs

crates/bench/src/bin/barrier_phases.rs:
