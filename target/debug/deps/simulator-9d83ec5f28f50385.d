/root/repo/target/debug/deps/simulator-9d83ec5f28f50385.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-9d83ec5f28f50385.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
