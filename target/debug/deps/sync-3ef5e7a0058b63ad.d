/root/repo/target/debug/deps/sync-3ef5e7a0058b63ad.d: crates/bench/benches/sync.rs

/root/repo/target/debug/deps/sync-3ef5e7a0058b63ad: crates/bench/benches/sync.rs

crates/bench/benches/sync.rs:
