/root/repo/target/debug/deps/coherence-ce82c608f6b76aa7.d: crates/machine/tests/coherence.rs Cargo.toml

/root/repo/target/debug/deps/libcoherence-ce82c608f6b76aa7.rmeta: crates/machine/tests/coherence.rs Cargo.toml

crates/machine/tests/coherence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
