/root/repo/target/debug/deps/fast_path_invariants-99e2761d33433491.d: crates/machine/tests/fast_path_invariants.rs

/root/repo/target/debug/deps/fast_path_invariants-99e2761d33433491: crates/machine/tests/fast_path_invariants.rs

crates/machine/tests/fast_path_invariants.rs:
