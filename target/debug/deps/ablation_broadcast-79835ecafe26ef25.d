/root/repo/target/debug/deps/ablation_broadcast-79835ecafe26ef25.d: crates/bench/src/bin/ablation_broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libablation_broadcast-79835ecafe26ef25.rmeta: crates/bench/src/bin/ablation_broadcast.rs Cargo.toml

crates/bench/src/bin/ablation_broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
