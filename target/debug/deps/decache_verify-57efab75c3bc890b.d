/root/repo/target/debug/deps/decache_verify-57efab75c3bc890b.d: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt Cargo.toml

/root/repo/target/debug/deps/libdecache_verify-57efab75c3bc890b.rmeta: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/conformance.rs:
crates/verify/src/lint.rs:
crates/verify/src/monotonic.rs:
crates/verify/src/oracle.rs:
crates/verify/src/product.rs:
crates/verify/src/witness.rs:
crates/verify/src/lint_baseline.txt:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
