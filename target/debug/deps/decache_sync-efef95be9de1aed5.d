/root/repo/target/debug/deps/decache_sync-efef95be9de1aed5.d: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

/root/repo/target/debug/deps/decache_sync-efef95be9de1aed5: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

crates/sync/src/lib.rs:
crates/sync/src/barrier.rs:
crates/sync/src/conduct.rs:
crates/sync/src/contention.rs:
crates/sync/src/lock.rs:
crates/sync/src/scenario.rs:
