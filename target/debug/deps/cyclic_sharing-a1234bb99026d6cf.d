/root/repo/target/debug/deps/cyclic_sharing-a1234bb99026d6cf.d: crates/bench/src/bin/cyclic_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libcyclic_sharing-a1234bb99026d6cf.rmeta: crates/bench/src/bin/cyclic_sharing.rs Cargo.toml

crates/bench/src/bin/cyclic_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
