/root/repo/target/debug/deps/properties-1072fd7b3d865bc4.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-1072fd7b3d865bc4: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
