/root/repo/target/debug/deps/figure_6_1-5abbe9364619d809.d: crates/bench/src/bin/figure_6_1.rs

/root/repo/target/debug/deps/figure_6_1-5abbe9364619d809: crates/bench/src/bin/figure_6_1.rs

crates/bench/src/bin/figure_6_1.rs:
