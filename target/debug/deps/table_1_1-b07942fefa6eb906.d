/root/repo/target/debug/deps/table_1_1-b07942fefa6eb906.d: crates/bench/src/bin/table_1_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable_1_1-b07942fefa6eb906.rmeta: crates/bench/src/bin/table_1_1.rs Cargo.toml

crates/bench/src/bin/table_1_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
