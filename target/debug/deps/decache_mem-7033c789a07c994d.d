/root/repo/target/debug/deps/decache_mem-7033c789a07c994d.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_mem-7033c789a07c994d.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/bank.rs:
crates/mem/src/error.rs:
crates/mem/src/memory.rs:
crates/mem/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
