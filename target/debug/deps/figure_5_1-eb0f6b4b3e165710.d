/root/repo/target/debug/deps/figure_5_1-eb0f6b4b3e165710.d: crates/bench/src/bin/figure_5_1.rs

/root/repo/target/debug/deps/figure_5_1-eb0f6b4b3e165710: crates/bench/src/bin/figure_5_1.rs

crates/bench/src/bin/figure_5_1.rs:
