/root/repo/target/debug/deps/figure_6_1-10368ab55bfbf77c.d: crates/bench/src/bin/figure_6_1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_6_1-10368ab55bfbf77c.rmeta: crates/bench/src/bin/figure_6_1.rs Cargo.toml

crates/bench/src/bin/figure_6_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
