/root/repo/target/debug/deps/figures-a17cb6360ce2fb88.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-a17cb6360ce2fb88.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
