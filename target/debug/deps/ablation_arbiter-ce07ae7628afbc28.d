/root/repo/target/debug/deps/ablation_arbiter-ce07ae7628afbc28.d: crates/bench/src/bin/ablation_arbiter.rs

/root/repo/target/debug/deps/ablation_arbiter-ce07ae7628afbc28: crates/bench/src/bin/ablation_arbiter.rs

crates/bench/src/bin/ablation_arbiter.rs:
