/root/repo/target/debug/deps/decache_rng-551bcb7b634f08ee.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/decache_rng-551bcb7b634f08ee: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
