/root/repo/target/debug/deps/figure_6_2-7c0288e6f2395b95.d: crates/bench/src/bin/figure_6_2.rs

/root/repo/target/debug/deps/figure_6_2-7c0288e6f2395b95: crates/bench/src/bin/figure_6_2.rs

crates/bench/src/bin/figure_6_2.rs:
