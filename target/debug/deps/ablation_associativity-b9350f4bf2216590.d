/root/repo/target/debug/deps/ablation_associativity-b9350f4bf2216590.d: crates/bench/src/bin/ablation_associativity.rs

/root/repo/target/debug/deps/ablation_associativity-b9350f4bf2216590: crates/bench/src/bin/ablation_associativity.rs

crates/bench/src/bin/ablation_associativity.rs:
