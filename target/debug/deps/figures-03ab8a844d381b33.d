/root/repo/target/debug/deps/figures-03ab8a844d381b33.d: tests/figures.rs

/root/repo/target/debug/deps/figures-03ab8a844d381b33: tests/figures.rs

tests/figures.rs:
