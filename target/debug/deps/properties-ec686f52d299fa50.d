/root/repo/target/debug/deps/properties-ec686f52d299fa50.d: crates/bus/tests/properties.rs

/root/repo/target/debug/deps/properties-ec686f52d299fa50: crates/bus/tests/properties.rs

crates/bus/tests/properties.rs:
