/root/repo/target/debug/deps/decache_cache-e747f247bf85f0bc.d: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

/root/repo/target/debug/deps/decache_cache-e747f247bf85f0bc: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

crates/cache/src/lib.rs:
crates/cache/src/emulation.rs:
crates/cache/src/geometry.rs:
crates/cache/src/stats.rs:
crates/cache/src/tagstore.rs:
