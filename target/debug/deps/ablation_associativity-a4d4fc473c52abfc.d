/root/repo/target/debug/deps/ablation_associativity-a4d4fc473c52abfc.d: crates/bench/src/bin/ablation_associativity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_associativity-a4d4fc473c52abfc.rmeta: crates/bench/src/bin/ablation_associativity.rs Cargo.toml

crates/bench/src/bin/ablation_associativity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
