/root/repo/target/debug/deps/properties-a438e9214385f96c.d: crates/workloads/tests/properties.rs

/root/repo/target/debug/deps/properties-a438e9214385f96c: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
