/root/repo/target/debug/deps/array_init-ac70a1f8500d57eb.d: crates/bench/src/bin/array_init.rs

/root/repo/target/debug/deps/array_init-ac70a1f8500d57eb: crates/bench/src/bin/array_init.rs

crates/bench/src/bin/array_init.rs:
