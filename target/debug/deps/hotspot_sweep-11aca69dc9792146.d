/root/repo/target/debug/deps/hotspot_sweep-11aca69dc9792146.d: crates/bench/src/bin/hotspot_sweep.rs

/root/repo/target/debug/deps/hotspot_sweep-11aca69dc9792146: crates/bench/src/bin/hotspot_sweep.rs

crates/bench/src/bin/hotspot_sweep.rs:
