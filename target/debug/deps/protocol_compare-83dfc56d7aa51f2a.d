/root/repo/target/debug/deps/protocol_compare-83dfc56d7aa51f2a.d: crates/bench/src/bin/protocol_compare.rs

/root/repo/target/debug/deps/protocol_compare-83dfc56d7aa51f2a: crates/bench/src/bin/protocol_compare.rs

crates/bench/src/bin/protocol_compare.rs:
