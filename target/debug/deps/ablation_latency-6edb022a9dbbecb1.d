/root/repo/target/debug/deps/ablation_latency-6edb022a9dbbecb1.d: crates/bench/src/bin/ablation_latency.rs Cargo.toml

/root/repo/target/debug/deps/libablation_latency-6edb022a9dbbecb1.rmeta: crates/bench/src/bin/ablation_latency.rs Cargo.toml

crates/bench/src/bin/ablation_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
