/root/repo/target/debug/deps/ablation_associativity-92500a2fe317d353.d: crates/bench/src/bin/ablation_associativity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_associativity-92500a2fe317d353.rmeta: crates/bench/src/bin/ablation_associativity.rs Cargo.toml

crates/bench/src/bin/ablation_associativity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
