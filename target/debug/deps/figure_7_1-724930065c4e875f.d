/root/repo/target/debug/deps/figure_7_1-724930065c4e875f.d: crates/bench/src/bin/figure_7_1.rs

/root/repo/target/debug/deps/figure_7_1-724930065c4e875f: crates/bench/src/bin/figure_7_1.rs

crates/bench/src/bin/figure_7_1.rs:
