/root/repo/target/debug/deps/ablation_k-c5066ba4c1f37be2.d: crates/bench/src/bin/ablation_k.rs

/root/repo/target/debug/deps/ablation_k-c5066ba4c1f37be2: crates/bench/src/bin/ablation_k.rs

crates/bench/src/bin/ablation_k.rs:
