/root/repo/target/debug/deps/barrier_phases-409849db6dabc790.d: crates/bench/src/bin/barrier_phases.rs Cargo.toml

/root/repo/target/debug/deps/libbarrier_phases-409849db6dabc790.rmeta: crates/bench/src/bin/barrier_phases.rs Cargo.toml

crates/bench/src/bin/barrier_phases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
