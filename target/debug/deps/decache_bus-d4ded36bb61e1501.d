/root/repo/target/debug/deps/decache_bus-d4ded36bb61e1501.d: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_bus-d4ded36bb61e1501.rmeta: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs Cargo.toml

crates/bus/src/lib.rs:
crates/bus/src/arbiter.rs:
crates/bus/src/multibus.rs:
crates/bus/src/queue.rs:
crates/bus/src/routing.rs:
crates/bus/src/traffic.rs:
crates/bus/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
