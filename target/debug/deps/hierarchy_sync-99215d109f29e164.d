/root/repo/target/debug/deps/hierarchy_sync-99215d109f29e164.d: tests/hierarchy_sync.rs

/root/repo/target/debug/deps/hierarchy_sync-99215d109f29e164: tests/hierarchy_sync.rs

tests/hierarchy_sync.rs:
