/root/repo/target/debug/deps/end_to_end-adead7da1e5b5c2b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-adead7da1e5b5c2b: tests/end_to_end.rs

tests/end_to_end.rs:
