/root/repo/target/debug/deps/bandwidth-7565b8a4484331ce.d: crates/bench/src/bin/bandwidth.rs

/root/repo/target/debug/deps/bandwidth-7565b8a4484331ce: crates/bench/src/bin/bandwidth.rs

crates/bench/src/bin/bandwidth.rs:
