/root/repo/target/debug/deps/decache-d8f119ab59ee48e6.d: src/lib.rs

/root/repo/target/debug/deps/decache-d8f119ab59ee48e6: src/lib.rs

src/lib.rs:
