/root/repo/target/debug/deps/cyclic_sharing-d406bc4ddc5766c7.d: crates/bench/src/bin/cyclic_sharing.rs

/root/repo/target/debug/deps/cyclic_sharing-d406bc4ddc5766c7: crates/bench/src/bin/cyclic_sharing.rs

crates/bench/src/bin/cyclic_sharing.rs:
