/root/repo/target/debug/deps/decache_core-7cc3859ce7af47ca.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

/root/repo/target/debug/deps/libdecache_core-7cc3859ce7af47ca.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

/root/repo/target/debug/deps/libdecache_core-7cc3859ce7af47ca.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/diagram.rs:
crates/core/src/introspect.rs:
crates/core/src/kind.rs:
crates/core/src/protocol.rs:
crates/core/src/rb.rs:
crates/core/src/rwb.rs:
crates/core/src/state.rs:
crates/core/src/write_once.rs:
crates/core/src/write_through.rs:
