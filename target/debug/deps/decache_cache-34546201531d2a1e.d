/root/repo/target/debug/deps/decache_cache-34546201531d2a1e.d: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

/root/repo/target/debug/deps/libdecache_cache-34546201531d2a1e.rlib: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

/root/repo/target/debug/deps/libdecache_cache-34546201531d2a1e.rmeta: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

crates/cache/src/lib.rs:
crates/cache/src/emulation.rs:
crates/cache/src/geometry.rs:
crates/cache/src/stats.rs:
crates/cache/src/tagstore.rs:
