/root/repo/target/debug/deps/decache_verify-8fe2af4d92313932.d: crates/verify/src/lib.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs

/root/repo/target/debug/deps/decache_verify-8fe2af4d92313932: crates/verify/src/lib.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs

crates/verify/src/lib.rs:
crates/verify/src/monotonic.rs:
crates/verify/src/oracle.rs:
crates/verify/src/product.rs:
