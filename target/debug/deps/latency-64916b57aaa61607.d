/root/repo/target/debug/deps/latency-64916b57aaa61607.d: crates/machine/tests/latency.rs Cargo.toml

/root/repo/target/debug/deps/liblatency-64916b57aaa61607.rmeta: crates/machine/tests/latency.rs Cargo.toml

crates/machine/tests/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
