/root/repo/target/debug/deps/golden_streams-e14ee2f133f17867.d: crates/workloads/tests/golden_streams.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_streams-e14ee2f133f17867.rmeta: crates/workloads/tests/golden_streams.rs Cargo.toml

crates/workloads/tests/golden_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
