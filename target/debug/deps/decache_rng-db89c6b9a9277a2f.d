/root/repo/target/debug/deps/decache_rng-db89c6b9a9277a2f.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_rng-db89c6b9a9277a2f.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
