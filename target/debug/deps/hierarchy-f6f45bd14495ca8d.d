/root/repo/target/debug/deps/hierarchy-f6f45bd14495ca8d.d: crates/bench/src/bin/hierarchy.rs

/root/repo/target/debug/deps/hierarchy-f6f45bd14495ca8d: crates/bench/src/bin/hierarchy.rs

crates/bench/src/bin/hierarchy.rs:
