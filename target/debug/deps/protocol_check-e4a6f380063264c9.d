/root/repo/target/debug/deps/protocol_check-e4a6f380063264c9.d: crates/bench/src/bin/protocol_check.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_check-e4a6f380063264c9.rmeta: crates/bench/src/bin/protocol_check.rs Cargo.toml

crates/bench/src/bin/protocol_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
