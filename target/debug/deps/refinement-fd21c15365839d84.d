/root/repo/target/debug/deps/refinement-fd21c15365839d84.d: crates/verify/tests/refinement.rs Cargo.toml

/root/repo/target/debug/deps/librefinement-fd21c15365839d84.rmeta: crates/verify/tests/refinement.rs Cargo.toml

crates/verify/tests/refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
