/root/repo/target/debug/deps/decache_cache-288c224048f01344.d: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_cache-288c224048f01344.rmeta: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/emulation.rs:
crates/cache/src/geometry.rs:
crates/cache/src/stats.rs:
crates/cache/src/tagstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
