/root/repo/target/debug/deps/array_init-ecc20abe19222cb3.d: crates/bench/src/bin/array_init.rs

/root/repo/target/debug/deps/array_init-ecc20abe19222cb3: crates/bench/src/bin/array_init.rs

crates/bench/src/bin/array_init.rs:
