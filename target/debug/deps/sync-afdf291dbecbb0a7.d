/root/repo/target/debug/deps/sync-afdf291dbecbb0a7.d: crates/bench/benches/sync.rs Cargo.toml

/root/repo/target/debug/deps/libsync-afdf291dbecbb0a7.rmeta: crates/bench/benches/sync.rs Cargo.toml

crates/bench/benches/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
