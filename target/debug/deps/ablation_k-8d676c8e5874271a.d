/root/repo/target/debug/deps/ablation_k-8d676c8e5874271a.d: crates/bench/src/bin/ablation_k.rs

/root/repo/target/debug/deps/ablation_k-8d676c8e5874271a: crates/bench/src/bin/ablation_k.rs

crates/bench/src/bin/ablation_k.rs:
