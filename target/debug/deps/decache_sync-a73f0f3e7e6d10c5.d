/root/repo/target/debug/deps/decache_sync-a73f0f3e7e6d10c5.d: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_sync-a73f0f3e7e6d10c5.rmeta: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs Cargo.toml

crates/sync/src/lib.rs:
crates/sync/src/barrier.rs:
crates/sync/src/conduct.rs:
crates/sync/src/contention.rs:
crates/sync/src/lock.rs:
crates/sync/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
