/root/repo/target/debug/deps/decache_mem-0b4c1716603f7db7.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

/root/repo/target/debug/deps/libdecache_mem-0b4c1716603f7db7.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

/root/repo/target/debug/deps/libdecache_mem-0b4c1716603f7db7.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/bank.rs:
crates/mem/src/error.rs:
crates/mem/src/memory.rs:
crates/mem/src/word.rs:
