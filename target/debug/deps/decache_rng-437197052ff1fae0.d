/root/repo/target/debug/deps/decache_rng-437197052ff1fae0.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdecache_rng-437197052ff1fae0.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdecache_rng-437197052ff1fae0.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
