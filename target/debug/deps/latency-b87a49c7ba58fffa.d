/root/repo/target/debug/deps/latency-b87a49c7ba58fffa.d: crates/machine/tests/latency.rs

/root/repo/target/debug/deps/latency-b87a49c7ba58fffa: crates/machine/tests/latency.rs

crates/machine/tests/latency.rs:
