/root/repo/target/debug/deps/decache_machine-eac192c1f81c4270.d: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdecache_machine-eac192c1f81c4270.rmeta: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/builder.rs:
crates/machine/src/machine.rs:
crates/machine/src/op.rs:
crates/machine/src/processor.rs:
crates/machine/src/recovery.rs:
crates/machine/src/sharers.rs:
crates/machine/src/snapshot.rs:
crates/machine/src/stats.rs:
crates/machine/src/status.rs:
crates/machine/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
