/root/repo/target/debug/deps/decache_analysis-6ead14d3a439f863.d: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/decache_analysis-6ead14d3a439f863: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bandwidth.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/multibus.rs:
crates/analysis/src/par.rs:
crates/analysis/src/saturation.rs:
crates/analysis/src/table.rs:
