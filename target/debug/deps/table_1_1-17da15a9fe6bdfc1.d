/root/repo/target/debug/deps/table_1_1-17da15a9fe6bdfc1.d: crates/bench/src/bin/table_1_1.rs

/root/repo/target/debug/deps/table_1_1-17da15a9fe6bdfc1: crates/bench/src/bin/table_1_1.rs

crates/bench/src/bin/table_1_1.rs:
