/root/repo/target/debug/deps/bandwidth-191261a2f9302980.d: crates/bench/src/bin/bandwidth.rs

/root/repo/target/debug/deps/bandwidth-191261a2f9302980: crates/bench/src/bin/bandwidth.rs

crates/bench/src/bin/bandwidth.rs:
