/root/repo/target/debug/deps/protocol_check-417e4c39f5e44e2b.d: crates/bench/src/bin/protocol_check.rs

/root/repo/target/debug/deps/protocol_check-417e4c39f5e44e2b: crates/bench/src/bin/protocol_check.rs

crates/bench/src/bin/protocol_check.rs:
