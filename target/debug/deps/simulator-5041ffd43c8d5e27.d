/root/repo/target/debug/deps/simulator-5041ffd43c8d5e27.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-5041ffd43c8d5e27: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
