/root/repo/target/debug/examples/gen_golden-214ab1699d6ae6e4.d: crates/workloads/examples/gen_golden.rs

/root/repo/target/debug/examples/gen_golden-214ab1699d6ae6e4: crates/workloads/examples/gen_golden.rs

crates/workloads/examples/gen_golden.rs:
