/root/repo/target/debug/examples/systolic_ring-4548cfca78880616.d: examples/systolic_ring.rs Cargo.toml

/root/repo/target/debug/examples/libsystolic_ring-4548cfca78880616.rmeta: examples/systolic_ring.rs Cargo.toml

examples/systolic_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
