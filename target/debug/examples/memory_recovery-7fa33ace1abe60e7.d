/root/repo/target/debug/examples/memory_recovery-7fa33ace1abe60e7.d: examples/memory_recovery.rs

/root/repo/target/debug/examples/memory_recovery-7fa33ace1abe60e7: examples/memory_recovery.rs

examples/memory_recovery.rs:
