/root/repo/target/debug/examples/matvec_kernel-a361c578696dfdae.d: examples/matvec_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libmatvec_kernel-a361c578696dfdae.rmeta: examples/matvec_kernel.rs Cargo.toml

examples/matvec_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
