/root/repo/target/debug/examples/multibus_machine-27c82e2aefa522c4.d: examples/multibus_machine.rs

/root/repo/target/debug/examples/multibus_machine-27c82e2aefa522c4: examples/multibus_machine.rs

examples/multibus_machine.rs:
