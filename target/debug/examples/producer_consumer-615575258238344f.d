/root/repo/target/debug/examples/producer_consumer-615575258238344f.d: examples/producer_consumer.rs Cargo.toml

/root/repo/target/debug/examples/libproducer_consumer-615575258238344f.rmeta: examples/producer_consumer.rs Cargo.toml

examples/producer_consumer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
