/root/repo/target/debug/examples/matvec_kernel-c6e0f36856768d9f.d: examples/matvec_kernel.rs

/root/repo/target/debug/examples/matvec_kernel-c6e0f36856768d9f: examples/matvec_kernel.rs

examples/matvec_kernel.rs:
