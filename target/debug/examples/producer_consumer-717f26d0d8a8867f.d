/root/repo/target/debug/examples/producer_consumer-717f26d0d8a8867f.d: examples/producer_consumer.rs

/root/repo/target/debug/examples/producer_consumer-717f26d0d8a8867f: examples/producer_consumer.rs

examples/producer_consumer.rs:
