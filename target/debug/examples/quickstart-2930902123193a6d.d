/root/repo/target/debug/examples/quickstart-2930902123193a6d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2930902123193a6d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
