/root/repo/target/debug/examples/multibus_machine-748c869a237b1c44.d: examples/multibus_machine.rs Cargo.toml

/root/repo/target/debug/examples/libmultibus_machine-748c869a237b1c44.rmeta: examples/multibus_machine.rs Cargo.toml

examples/multibus_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
