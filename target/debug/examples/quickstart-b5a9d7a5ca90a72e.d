/root/repo/target/debug/examples/quickstart-b5a9d7a5ca90a72e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b5a9d7a5ca90a72e: examples/quickstart.rs

examples/quickstart.rs:
