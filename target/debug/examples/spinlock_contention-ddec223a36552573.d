/root/repo/target/debug/examples/spinlock_contention-ddec223a36552573.d: examples/spinlock_contention.rs

/root/repo/target/debug/examples/spinlock_contention-ddec223a36552573: examples/spinlock_contention.rs

examples/spinlock_contention.rs:
