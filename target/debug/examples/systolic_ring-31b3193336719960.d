/root/repo/target/debug/examples/systolic_ring-31b3193336719960.d: examples/systolic_ring.rs

/root/repo/target/debug/examples/systolic_ring-31b3193336719960: examples/systolic_ring.rs

examples/systolic_ring.rs:
