/root/repo/target/debug/examples/memory_recovery-41c8f6e5cb040d9d.d: examples/memory_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_recovery-41c8f6e5cb040d9d.rmeta: examples/memory_recovery.rs Cargo.toml

examples/memory_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
