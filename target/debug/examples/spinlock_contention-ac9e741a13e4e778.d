/root/repo/target/debug/examples/spinlock_contention-ac9e741a13e4e778.d: examples/spinlock_contention.rs Cargo.toml

/root/repo/target/debug/examples/libspinlock_contention-ac9e741a13e4e778.rmeta: examples/spinlock_contention.rs Cargo.toml

examples/spinlock_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
