/root/repo/target/debug/libdecache_rng.rlib: /root/repo/crates/rng/src/lib.rs
