/root/repo/target/release/deps/bandwidth-9000fa47662da866.d: crates/bench/src/bin/bandwidth.rs

/root/repo/target/release/deps/bandwidth-9000fa47662da866: crates/bench/src/bin/bandwidth.rs

crates/bench/src/bin/bandwidth.rs:
