/root/repo/target/release/deps/proof-11dd1f6e33cdbd73.d: crates/bench/benches/proof.rs

/root/repo/target/release/deps/proof-11dd1f6e33cdbd73: crates/bench/benches/proof.rs

crates/bench/benches/proof.rs:
