/root/repo/target/release/deps/decache_sim-e7cce1b0529d0fd4.d: src/bin/decache-sim.rs

/root/repo/target/release/deps/decache_sim-e7cce1b0529d0fd4: src/bin/decache-sim.rs

src/bin/decache-sim.rs:
