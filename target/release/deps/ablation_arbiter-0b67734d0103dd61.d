/root/repo/target/release/deps/ablation_arbiter-0b67734d0103dd61.d: crates/bench/src/bin/ablation_arbiter.rs

/root/repo/target/release/deps/ablation_arbiter-0b67734d0103dd61: crates/bench/src/bin/ablation_arbiter.rs

crates/bench/src/bin/ablation_arbiter.rs:
