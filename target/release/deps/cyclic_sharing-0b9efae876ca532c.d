/root/repo/target/release/deps/cyclic_sharing-0b9efae876ca532c.d: crates/bench/src/bin/cyclic_sharing.rs

/root/repo/target/release/deps/cyclic_sharing-0b9efae876ca532c: crates/bench/src/bin/cyclic_sharing.rs

crates/bench/src/bin/cyclic_sharing.rs:
