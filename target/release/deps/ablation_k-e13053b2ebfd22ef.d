/root/repo/target/release/deps/ablation_k-e13053b2ebfd22ef.d: crates/bench/src/bin/ablation_k.rs

/root/repo/target/release/deps/ablation_k-e13053b2ebfd22ef: crates/bench/src/bin/ablation_k.rs

crates/bench/src/bin/ablation_k.rs:
