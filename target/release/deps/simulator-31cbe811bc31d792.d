/root/repo/target/release/deps/simulator-31cbe811bc31d792.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-31cbe811bc31d792: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
