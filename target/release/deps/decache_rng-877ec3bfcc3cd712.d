/root/repo/target/release/deps/decache_rng-877ec3bfcc3cd712.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdecache_rng-877ec3bfcc3cd712.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdecache_rng-877ec3bfcc3cd712.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
