/root/repo/target/release/deps/decache_verify-80fd4492e4eaa066.d: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

/root/repo/target/release/deps/libdecache_verify-80fd4492e4eaa066.rlib: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

/root/repo/target/release/deps/libdecache_verify-80fd4492e4eaa066.rmeta: crates/verify/src/lib.rs crates/verify/src/conformance.rs crates/verify/src/lint.rs crates/verify/src/monotonic.rs crates/verify/src/oracle.rs crates/verify/src/product.rs crates/verify/src/witness.rs crates/verify/src/lint_baseline.txt

crates/verify/src/lib.rs:
crates/verify/src/conformance.rs:
crates/verify/src/lint.rs:
crates/verify/src/monotonic.rs:
crates/verify/src/oracle.rs:
crates/verify/src/product.rs:
crates/verify/src/witness.rs:
crates/verify/src/lint_baseline.txt:
