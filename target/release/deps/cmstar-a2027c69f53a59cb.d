/root/repo/target/release/deps/cmstar-a2027c69f53a59cb.d: crates/bench/benches/cmstar.rs

/root/repo/target/release/deps/cmstar-a2027c69f53a59cb: crates/bench/benches/cmstar.rs

crates/bench/benches/cmstar.rs:
