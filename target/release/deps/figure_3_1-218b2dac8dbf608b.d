/root/repo/target/release/deps/figure_3_1-218b2dac8dbf608b.d: crates/bench/src/bin/figure_3_1.rs

/root/repo/target/release/deps/figure_3_1-218b2dac8dbf608b: crates/bench/src/bin/figure_3_1.rs

crates/bench/src/bin/figure_3_1.rs:
