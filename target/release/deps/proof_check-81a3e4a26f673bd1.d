/root/repo/target/release/deps/proof_check-81a3e4a26f673bd1.d: crates/bench/src/bin/proof_check.rs

/root/repo/target/release/deps/proof_check-81a3e4a26f673bd1: crates/bench/src/bin/proof_check.rs

crates/bench/src/bin/proof_check.rs:
