/root/repo/target/release/deps/ablation_latency-09133ea699d89fdd.d: crates/bench/src/bin/ablation_latency.rs

/root/repo/target/release/deps/ablation_latency-09133ea699d89fdd: crates/bench/src/bin/ablation_latency.rs

crates/bench/src/bin/ablation_latency.rs:
