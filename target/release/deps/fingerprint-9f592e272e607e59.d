/root/repo/target/release/deps/fingerprint-9f592e272e607e59.d: tests/fingerprint.rs

/root/repo/target/release/deps/fingerprint-9f592e272e607e59: tests/fingerprint.rs

tests/fingerprint.rs:
