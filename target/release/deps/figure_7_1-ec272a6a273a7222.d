/root/repo/target/release/deps/figure_7_1-ec272a6a273a7222.d: crates/bench/src/bin/figure_7_1.rs

/root/repo/target/release/deps/figure_7_1-ec272a6a273a7222: crates/bench/src/bin/figure_7_1.rs

crates/bench/src/bin/figure_7_1.rs:
