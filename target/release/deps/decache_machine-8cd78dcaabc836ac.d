/root/repo/target/release/deps/decache_machine-8cd78dcaabc836ac.d: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libdecache_machine-8cd78dcaabc836ac.rlib: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libdecache_machine-8cd78dcaabc836ac.rmeta: crates/machine/src/lib.rs crates/machine/src/builder.rs crates/machine/src/machine.rs crates/machine/src/op.rs crates/machine/src/processor.rs crates/machine/src/recovery.rs crates/machine/src/sharers.rs crates/machine/src/snapshot.rs crates/machine/src/stats.rs crates/machine/src/status.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/builder.rs:
crates/machine/src/machine.rs:
crates/machine/src/op.rs:
crates/machine/src/processor.rs:
crates/machine/src/recovery.rs:
crates/machine/src/sharers.rs:
crates/machine/src/snapshot.rs:
crates/machine/src/stats.rs:
crates/machine/src/status.rs:
crates/machine/src/trace.rs:
