/root/repo/target/release/deps/figure_6_1-e1a6bd83c638f24f.d: crates/bench/src/bin/figure_6_1.rs

/root/repo/target/release/deps/figure_6_1-e1a6bd83c638f24f: crates/bench/src/bin/figure_6_1.rs

crates/bench/src/bin/figure_6_1.rs:
