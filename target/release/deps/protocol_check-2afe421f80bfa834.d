/root/repo/target/release/deps/protocol_check-2afe421f80bfa834.d: crates/bench/src/bin/protocol_check.rs

/root/repo/target/release/deps/protocol_check-2afe421f80bfa834: crates/bench/src/bin/protocol_check.rs

crates/bench/src/bin/protocol_check.rs:
