/root/repo/target/release/deps/decache_cache-9cb5ae3ee327bb27.d: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

/root/repo/target/release/deps/libdecache_cache-9cb5ae3ee327bb27.rlib: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

/root/repo/target/release/deps/libdecache_cache-9cb5ae3ee327bb27.rmeta: crates/cache/src/lib.rs crates/cache/src/emulation.rs crates/cache/src/geometry.rs crates/cache/src/stats.rs crates/cache/src/tagstore.rs

crates/cache/src/lib.rs:
crates/cache/src/emulation.rs:
crates/cache/src/geometry.rs:
crates/cache/src/stats.rs:
crates/cache/src/tagstore.rs:
