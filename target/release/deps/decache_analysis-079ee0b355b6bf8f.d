/root/repo/target/release/deps/decache_analysis-079ee0b355b6bf8f.d: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libdecache_analysis-079ee0b355b6bf8f.rlib: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libdecache_analysis-079ee0b355b6bf8f.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bandwidth.rs crates/analysis/src/chart.rs crates/analysis/src/compare.rs crates/analysis/src/multibus.rs crates/analysis/src/par.rs crates/analysis/src/saturation.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bandwidth.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/multibus.rs:
crates/analysis/src/par.rs:
crates/analysis/src/saturation.rs:
crates/analysis/src/table.rs:
