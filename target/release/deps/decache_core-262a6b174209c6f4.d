/root/repo/target/release/deps/decache_core-262a6b174209c6f4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

/root/repo/target/release/deps/libdecache_core-262a6b174209c6f4.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

/root/repo/target/release/deps/libdecache_core-262a6b174209c6f4.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/diagram.rs crates/core/src/introspect.rs crates/core/src/kind.rs crates/core/src/protocol.rs crates/core/src/rb.rs crates/core/src/rwb.rs crates/core/src/state.rs crates/core/src/write_once.rs crates/core/src/write_through.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/diagram.rs:
crates/core/src/introspect.rs:
crates/core/src/kind.rs:
crates/core/src/protocol.rs:
crates/core/src/rb.rs:
crates/core/src/rwb.rs:
crates/core/src/state.rs:
crates/core/src/write_once.rs:
crates/core/src/write_through.rs:
