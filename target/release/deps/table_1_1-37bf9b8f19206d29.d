/root/repo/target/release/deps/table_1_1-37bf9b8f19206d29.d: crates/bench/src/bin/table_1_1.rs

/root/repo/target/release/deps/table_1_1-37bf9b8f19206d29: crates/bench/src/bin/table_1_1.rs

crates/bench/src/bin/table_1_1.rs:
