/root/repo/target/release/deps/ablation_broadcast-f68f721077a9955c.d: crates/bench/src/bin/ablation_broadcast.rs

/root/repo/target/release/deps/ablation_broadcast-f68f721077a9955c: crates/bench/src/bin/ablation_broadcast.rs

crates/bench/src/bin/ablation_broadcast.rs:
