/root/repo/target/release/deps/figure_6_3-7cee8305f990b87a.d: crates/bench/src/bin/figure_6_3.rs

/root/repo/target/release/deps/figure_6_3-7cee8305f990b87a: crates/bench/src/bin/figure_6_3.rs

crates/bench/src/bin/figure_6_3.rs:
