/root/repo/target/release/deps/hotspot_sweep-f2a1ad2e5ed62aea.d: crates/bench/src/bin/hotspot_sweep.rs

/root/repo/target/release/deps/hotspot_sweep-f2a1ad2e5ed62aea: crates/bench/src/bin/hotspot_sweep.rs

crates/bench/src/bin/hotspot_sweep.rs:
