/root/repo/target/release/deps/ablation_associativity-f22b6a8859a4ce6f.d: crates/bench/src/bin/ablation_associativity.rs

/root/repo/target/release/deps/ablation_associativity-f22b6a8859a4ce6f: crates/bench/src/bin/ablation_associativity.rs

crates/bench/src/bin/ablation_associativity.rs:
