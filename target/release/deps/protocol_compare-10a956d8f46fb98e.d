/root/repo/target/release/deps/protocol_compare-10a956d8f46fb98e.d: crates/bench/src/bin/protocol_compare.rs

/root/repo/target/release/deps/protocol_compare-10a956d8f46fb98e: crates/bench/src/bin/protocol_compare.rs

crates/bench/src/bin/protocol_compare.rs:
