/root/repo/target/release/deps/decache_workloads-ff0353c910733f31.d: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

/root/repo/target/release/deps/libdecache_workloads-ff0353c910733f31.rlib: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

/root/repo/target/release/deps/libdecache_workloads-ff0353c910733f31.rmeta: crates/workloads/src/lib.rs crates/workloads/src/array_init.rs crates/workloads/src/cmstar.rs crates/workloads/src/matrix.rs crates/workloads/src/mix.rs crates/workloads/src/producer_consumer.rs crates/workloads/src/reference.rs crates/workloads/src/systolic.rs

crates/workloads/src/lib.rs:
crates/workloads/src/array_init.rs:
crates/workloads/src/cmstar.rs:
crates/workloads/src/matrix.rs:
crates/workloads/src/mix.rs:
crates/workloads/src/producer_consumer.rs:
crates/workloads/src/reference.rs:
crates/workloads/src/systolic.rs:
