/root/repo/target/release/deps/figure_6_2-985fafc54b625f3b.d: crates/bench/src/bin/figure_6_2.rs

/root/repo/target/release/deps/figure_6_2-985fafc54b625f3b: crates/bench/src/bin/figure_6_2.rs

crates/bench/src/bin/figure_6_2.rs:
