/root/repo/target/release/deps/decache_sync-e51ea2c2aa94f31c.d: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

/root/repo/target/release/deps/libdecache_sync-e51ea2c2aa94f31c.rlib: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

/root/repo/target/release/deps/libdecache_sync-e51ea2c2aa94f31c.rmeta: crates/sync/src/lib.rs crates/sync/src/barrier.rs crates/sync/src/conduct.rs crates/sync/src/contention.rs crates/sync/src/lock.rs crates/sync/src/scenario.rs

crates/sync/src/lib.rs:
crates/sync/src/barrier.rs:
crates/sync/src/conduct.rs:
crates/sync/src/contention.rs:
crates/sync/src/lock.rs:
crates/sync/src/scenario.rs:
