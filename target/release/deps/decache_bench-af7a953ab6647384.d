/root/repo/target/release/deps/decache_bench-af7a953ab6647384.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdecache_bench-af7a953ab6647384.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdecache_bench-af7a953ab6647384.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
