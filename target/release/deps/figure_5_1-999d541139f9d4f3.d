/root/repo/target/release/deps/figure_5_1-999d541139f9d4f3.d: crates/bench/src/bin/figure_5_1.rs

/root/repo/target/release/deps/figure_5_1-999d541139f9d4f3: crates/bench/src/bin/figure_5_1.rs

crates/bench/src/bin/figure_5_1.rs:
