/root/repo/target/release/deps/barrier_phases-1f09c53bae182450.d: crates/bench/src/bin/barrier_phases.rs

/root/repo/target/release/deps/barrier_phases-1f09c53bae182450: crates/bench/src/bin/barrier_phases.rs

crates/bench/src/bin/barrier_phases.rs:
