/root/repo/target/release/deps/decache-774e6a9acee97dce.d: src/lib.rs

/root/repo/target/release/deps/libdecache-774e6a9acee97dce.rlib: src/lib.rs

/root/repo/target/release/deps/libdecache-774e6a9acee97dce.rmeta: src/lib.rs

src/lib.rs:
