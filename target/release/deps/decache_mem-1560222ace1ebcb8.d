/root/repo/target/release/deps/decache_mem-1560222ace1ebcb8.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

/root/repo/target/release/deps/libdecache_mem-1560222ace1ebcb8.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

/root/repo/target/release/deps/libdecache_mem-1560222ace1ebcb8.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/bank.rs crates/mem/src/error.rs crates/mem/src/memory.rs crates/mem/src/word.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/bank.rs:
crates/mem/src/error.rs:
crates/mem/src/memory.rs:
crates/mem/src/word.rs:
