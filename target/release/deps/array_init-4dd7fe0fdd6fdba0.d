/root/repo/target/release/deps/array_init-4dd7fe0fdd6fdba0.d: crates/bench/src/bin/array_init.rs

/root/repo/target/release/deps/array_init-4dd7fe0fdd6fdba0: crates/bench/src/bin/array_init.rs

crates/bench/src/bin/array_init.rs:
