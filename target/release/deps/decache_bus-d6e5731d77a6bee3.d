/root/repo/target/release/deps/decache_bus-d6e5731d77a6bee3.d: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

/root/repo/target/release/deps/libdecache_bus-d6e5731d77a6bee3.rlib: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

/root/repo/target/release/deps/libdecache_bus-d6e5731d77a6bee3.rmeta: crates/bus/src/lib.rs crates/bus/src/arbiter.rs crates/bus/src/multibus.rs crates/bus/src/queue.rs crates/bus/src/routing.rs crates/bus/src/traffic.rs crates/bus/src/transaction.rs

crates/bus/src/lib.rs:
crates/bus/src/arbiter.rs:
crates/bus/src/multibus.rs:
crates/bus/src/queue.rs:
crates/bus/src/routing.rs:
crates/bus/src/traffic.rs:
crates/bus/src/transaction.rs:
