/root/repo/target/release/deps/hierarchy-2320b3c9940c19ce.d: crates/bench/src/bin/hierarchy.rs

/root/repo/target/release/deps/hierarchy-2320b3c9940c19ce: crates/bench/src/bin/hierarchy.rs

crates/bench/src/bin/hierarchy.rs:
