/root/repo/target/release/examples/debug_stuck-7fa07a85b1c1608e.d: examples/debug_stuck.rs

/root/repo/target/release/examples/debug_stuck-7fa07a85b1c1608e: examples/debug_stuck.rs

examples/debug_stuck.rs:
