//! Cross-crate integration: whole experiments through the umbrella API.

use decache::analysis::{MultibusExperiment, ProtocolComparison, SbbModel};
use decache::core::{Configuration, ProtocolKind};
use decache::mem::{Addr, Word};
use decache::sync::{ContentionExperiment, Primitive, SyncScenario};
use decache::verify::{ProductChecker, SerialOracle};
use decache::workloads::{CmStarApp, MixConfig};

#[test]
fn paper_headline_results_hold_together() {
    // 1. Table 1-1 shape: read miss ratio falls monotonically with size.
    let rows = CmStarApp::application_a().run_table(30_000);
    for pair in rows.windows(2) {
        assert!(pair[0].read_miss_pct >= pair[1].read_miss_pct - 0.5);
    }

    // 2. The Section 4 proof holds for both schemes.
    for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        assert!(ProductChecker::new(kind, 3).explore().holds());
    }

    // 3. TTS beats TS on bus traffic under contention.
    let ts = ContentionExperiment::new(ProtocolKind::Rb, Primitive::TestAndSet, 8).run();
    let tts = ContentionExperiment::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet, 8).run();
    assert!(tts.bus_transactions < ts.bus_transactions);

    // 4. The SBB worked example.
    assert!((SbbModel::paper_example().required_sbb_macs() - 12.8).abs() < 1e-9);
}

#[test]
fn scenario_tables_match_published_figures() {
    // Figure 6-1 final row: everyone readable with the lock value 1.
    let fig61 = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndSet).run();
    let (_, last) = fig61.table.rows().last().unwrap();
    for pe in 0..3 {
        assert_eq!(last.cell(pe), "R(1)");
    }

    // Figure 6-3's signature row: the intermediate configuration after a
    // successful TS under RWB.
    let fig63 = SyncScenario::new(ProtocolKind::Rwb, Primitive::TestAndTestAndSet).run();
    let (_, lock_row) = &fig63.table.rows()[1];
    assert_eq!(lock_row.configuration(), Configuration::Intermediate);
    assert_eq!(lock_row.cell(1), "F(1)");
}

#[test]
fn comparison_and_multibus_experiments_agree_with_the_paper() {
    let rows = ProtocolComparison::new(8)
        .config(MixConfig {
            ops_per_pe: 1_200,
            ..MixConfig::default()
        })
        .run();
    let tx = |name: &str| {
        rows.iter()
            .find(|r| r.protocol.to_string() == name)
            .unwrap()
            .bus_transactions
    };
    // Who wins: the dynamic schemes beat the static baselines.
    assert!(tx("RB") < tx("write-through"));
    assert!(tx("RWB") < tx("write-through"));

    let multibus = MultibusExperiment::new(8)
        .config(MixConfig {
            ops_per_pe: 1_200,
            ..MixConfig::default()
        })
        .run();
    // Dual bus halves the busiest bus's load (within tolerance).
    let single = multibus[0].max_bus_transactions as f64;
    let dual = multibus[1].max_bus_transactions as f64;
    assert!(dual < 0.7 * single, "dual {dual} vs single {single}");
}

#[test]
fn oracle_validates_the_simulator_for_every_protocol() {
    for kind in ProtocolKind::ALL {
        SerialOracle::new(kind, 3, 99)
            .addresses(32)
            .run(400)
            .unwrap();
    }
}

#[test]
fn umbrella_reexports_compose() {
    // Build a machine through the umbrella, drive it with the sync
    // conductor, and check a snapshot — five crates in one test.
    let conductor = decache::sync::Conductor::new(2);
    let mut machine = decache::machine::MachineBuilder::new(ProtocolKind::Rwb)
        .memory_words(64)
        .processors(2, |pe| conductor.processor(pe))
        .build();
    conductor.run_op(
        &mut machine,
        0,
        decache::machine::MemOp::write(Addr::new(3), Word::ONE),
    );
    conductor.run_op(&mut machine, 1, decache::machine::MemOp::read(Addr::new(3)));
    let snap = machine.snapshot(Addr::new(3));
    assert_ne!(snap.configuration(), Configuration::Illegal);
    assert_eq!(snap.memory(), Word::ONE);
}
