//! Golden tests: the rendered synchronization figures, pinned verbatim.
//!
//! These are the strongest regression guard in the repository — any
//! change to the protocols, the machine's cycle semantics, or the
//! scenario conductor that alters a single cell of a published figure
//! fails here with a readable diff.

use decache::core::ProtocolKind;
use decache::sync::{Primitive, SyncScenario};

fn rendered(protocol: ProtocolKind, primitive: Primitive) -> String {
    SyncScenario::new(protocol, primitive).run().render()
}

#[test]
fn figure_6_1_golden() {
    let expected = "\
P1    P2    P3    S     Observation
R(0)  R(0)  R(0)  0     Initial State
I(-)  L(1)  I(-)  1     P2 Locks S
R(1)  R(1)  R(1)  1     Others try to get S (TS)
R(1)  R(1)  R(1)  1     Others keep trying (TS spin)
I(-)  L(0)  I(-)  0     P2 releases S
L(1)  I(-)  I(-)  1     P1 gets the S
R(1)  R(1)  R(1)  1     Others try to get S
";
    assert_eq!(rendered(ProtocolKind::Rb, Primitive::TestAndSet), expected);
}

#[test]
fn figure_6_2_golden() {
    let expected = "\
P1    P2    P3    S     Observation
R(0)  R(0)  R(0)  0     Initial State
I(-)  L(1)  I(-)  1     P2 Locks S
R(1)  R(1)  R(1)  1     Others test S (first test)
R(1)  R(1)  R(1)  1     Others spin on S (in cache)
I(-)  L(0)  I(-)  0     P2 releases S
R(0)  R(0)  R(0)  0     A Bus Read to S
L(1)  I(-)  I(-)  1     P1 gets the S
R(1)  R(1)  R(1)  1     Others try to get S
";
    assert_eq!(
        rendered(ProtocolKind::Rb, Primitive::TestAndTestAndSet),
        expected
    );
}

#[test]
fn figure_6_3_golden() {
    // Note: the S column is the *memory* word; after "P2 releases S" the
    // latest value (0) lives in P2's L line while memory still shows 1 —
    // faithful RWB semantics (see EXPERIMENTS.md).
    let expected = "\
P1    P2    P3    S     Observation
R(0)  R(0)  R(0)  0     Initial State
R(1)  F(1)  R(1)  1     P2 Locks S
R(1)  F(1)  R(1)  1     Others test S (first test)
R(1)  F(1)  R(1)  1     Others spin on S (in cache)
I(-)  L(0)  I(-)  1     P2 releases S
R(0)  R(0)  R(0)  0     A Bus Read to S
F(1)  R(1)  R(1)  1     P1 gets the S
F(1)  R(1)  R(1)  1     Others try to get S
";
    assert_eq!(
        rendered(ProtocolKind::Rwb, Primitive::TestAndTestAndSet),
        expected
    );
}

#[test]
fn figure_3_1_transition_table_golden() {
    use decache::core::{transition_table, Rb};
    let rows: Vec<String> = transition_table(&Rb::new())
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let expected = vec![
        "I --CR [generate BR]--> R",
        "I --CW [generate BW]--> L",
        "I --BR [capture data]--> R",
        "I --BW--> I",
        "R --CR--> R",
        "R --CW [generate BW]--> L",
        "R --BR--> R",
        "R --BW--> I",
        "L --CR--> L",
        "L --CW--> L",
        "L --BR [interrupt BR, supply data]--> R",
        "L --BW--> I",
    ];
    assert_eq!(rows, expected);
}

#[test]
fn figure_5_1_transition_table_golden() {
    use decache::core::{transition_table, Rwb};
    let rows: Vec<String> = transition_table(&Rwb::new())
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let expected = vec![
        "I --CR [generate BR]--> R",
        "I --CW [generate BW]--> F",
        "I --BR [capture data]--> R",
        "I --BW [capture data]--> R",
        "I --BI--> I",
        "R --CR--> R",
        "R --CW [generate BW]--> F",
        "R --BR--> R",
        "R --BW [capture data]--> R",
        "R --BI--> I",
        "F --CR--> F",
        "F --CW [generate BI]--> L",
        "F --BR--> F",
        "F --BW [capture data]--> R",
        "F --BI--> I",
        "L --CR--> L",
        "L --CW--> L",
        "L --BR [interrupt BR, supply data]--> R",
        "L --BW [capture data]--> R",
        "L --BI--> I",
    ];
    assert_eq!(rows, expected);
}
