//! Seeded randomized whole-machine consistency: the Section 4 theorem
//! as an invariant over concurrent machines, for every protocol.
//!
//! Each test runs a fixed corpus of seeded cases (replayable via
//! `DECACHE_TEST_SEED`, scalable via `DECACHE_TEST_CASES`) and checks
//! the invariant under **all eight** `ProtocolKind` variants — the
//! paper's seven schemes plus the table-defined MESI — for every
//! generated program, so no protocol is ever skipped by chance.

use decache::core::{Configuration, ProtocolKind};
use decache::machine::{MachineBuilder, Script};
use decache::mem::{Addr, Word};
use decache::rng::{testing::check, Rng};

const ADDRESSES: u64 = 8;

/// The seven protocol variants of the §4 consistency claim, plus the
/// table-driven MESI (whose semantics live entirely in IR data).
const PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
    ProtocolKind::Mesi,
];

/// A tiny op encoding: read, write, or test-and-set.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64, u64),
    Ts(u64),
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0u8..3) {
        0 => Op::Read(rng.gen_range(0..ADDRESSES)),
        1 => Op::Write(rng.gen_range(0..ADDRESSES), rng.gen_range(1u64..1000)),
        _ => Op::Ts(rng.gen_range(0..ADDRESSES)),
    }
}

fn gen_ops(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Op> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| gen_op(rng)).collect()
}

fn build_script(ops: &[Op]) -> Script {
    let mut script = Script::new();
    for &op in ops {
        script = match op {
            Op::Read(a) => script.read(Addr::new(a)),
            Op::Write(a, v) => script.write(Addr::new(a), Word::new(v)),
            Op::Ts(a) => script.test_and_set(Addr::new(a), Word::ONE),
        };
    }
    script
}

/// Any concurrent program on any protocol terminates, and every address
/// ends in a legal configuration whose owner (if any) holds a value
/// some processor actually wrote.
#[test]
fn random_concurrent_programs_stay_consistent() {
    check("random_concurrent_programs_stay_consistent", 12, |rng| {
        let programs: Vec<Vec<Op>> = (0..rng.gen_range(1usize..5))
            .map(|_| gen_ops(rng, 1, 20))
            .collect();
        for &kind in &PROTOCOLS {
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(64).cache_lines(4); // tiny cache: force evictions
            for ops in &programs {
                builder.processor(build_script(ops).build());
            }
            let mut machine = builder.build();
            assert!(
                machine.run(2_000_000),
                "machine did not terminate under {kind}"
            );

            for a in 0..ADDRESSES {
                let snap = machine.snapshot(Addr::new(a));
                assert_ne!(
                    snap.configuration(),
                    Configuration::Illegal,
                    "illegal configuration at @{a} under {kind}: {snap}"
                );
                // All readable copies agree with each other and with
                // memory (when no owner exists, memory is current).
                let owner = (0..machine.pe_count())
                    .find(|&pe| snap.line(pe).is_some_and(|(s, _)| s.owns_latest()));
                if owner.is_none() {
                    for pe in 0..machine.pe_count() {
                        if let Some((state, data)) = snap.line(pe) {
                            if state.is_readable_locally() {
                                assert_eq!(
                                    data,
                                    snap.memory(),
                                    "stale readable copy at P{pe} @{a} under {kind}"
                                );
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Mutual exclusion: across any interleaving, at most one TS per
/// address acquires while the word stays nonzero.
#[test]
fn test_and_set_is_atomic_under_races() {
    check("test_and_set_is_atomic_under_races", 12, |rng| {
        let pes = rng.gen_range(2usize..6);
        for &kind in &PROTOCOLS {
            let lock = Addr::new(0);
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(16);
            for _ in 0..pes {
                builder.processor(Script::new().test_and_set(lock, Word::ONE).build());
            }
            let mut machine = builder.build();
            assert!(machine.run(100_000));
            assert_eq!(machine.stats().ts_successes, 1, "{kind}");
            assert_eq!(machine.stats().ts_failures, pes as u64 - 1, "{kind}");
            assert_eq!(machine.memory().peek(lock).unwrap(), Word::ONE, "{kind}");
        }
    });
}

/// Single-writer visibility: when one PE writes an ascending sequence
/// and another reads, the final latest value is the last write.
#[test]
fn readers_only_see_written_values() {
    check("readers_only_see_written_values", 12, |rng| {
        let writes = rng.gen_range(1u64..12);
        for &kind in &PROTOCOLS {
            let x = Addr::new(0);
            let mut writer = Script::new();
            for v in 1..=writes {
                writer = writer.write(x, Word::new(v));
            }
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(16);
            builder.processor(writer.build());
            let mut reader = Script::new();
            for _ in 0..writes {
                reader = reader.read(x);
            }
            builder.processor(reader.build());
            let mut machine = builder.build();
            assert!(machine.run(100_000));
            // Final latest value is the last write, held by the owner
            // or memory.
            let snap = machine.snapshot(x);
            let latest = (0..machine.pe_count())
                .find_map(|pe| {
                    snap.line(pe)
                        .filter(|(s, _)| s.owns_latest())
                        .map(|(_, d)| d)
                })
                .unwrap_or(snap.memory());
            assert_eq!(latest, Word::new(writes), "{kind}");
        }
    });
}

/// The op encoding on a 1-PE machine behaves like a plain memory.
#[test]
fn single_pe_machine_is_a_plain_memory() {
    check("single_pe_machine_is_a_plain_memory", 12, |rng| {
        let ops = gen_ops(rng, 1, 40);
        for &kind in &PROTOCOLS {
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(64).cache_lines(4);
            builder.processor(build_script(&ops).build());
            let mut machine = builder.build();
            assert!(machine.run(1_000_000));

            // Replay against a flat model.
            let mut model = [0u64; ADDRESSES as usize];
            for op in &ops {
                match *op {
                    Op::Read(_) => {}
                    Op::Write(a, v) => model[a as usize] = v,
                    Op::Ts(a) => {
                        if model[a as usize] == 0 {
                            model[a as usize] = 1;
                        }
                    }
                }
            }
            for a in 0..ADDRESSES {
                let snap = machine.snapshot(Addr::new(a));
                let latest = snap
                    .line(0)
                    .filter(|(s, _)| s.owns_latest())
                    .map_or(snap.memory(), |(_, d)| d);
                assert_eq!(latest, Word::new(model[a as usize]), "@{a} under {kind}");
            }
        }
    });
}
