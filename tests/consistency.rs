//! Property-based whole-machine consistency: the Section 4 theorem as a
//! randomized invariant over concurrent machines, for every protocol.

use decache::core::{Configuration, ProtocolKind};
use decache::machine::{MachineBuilder, Script};
use decache::mem::{Addr, Word};
use proptest::prelude::*;

const ADDRESSES: u64 = 8;

/// A tiny op encoding for proptest: (pe_op_kind, address, value).
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64, u64),
    Ts(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ADDRESSES).prop_map(Op::Read),
        (0..ADDRESSES, 1u64..1000).prop_map(|(a, v)| Op::Write(a, v)),
        (0..ADDRESSES).prop_map(Op::Ts),
    ]
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Rb),
        Just(ProtocolKind::RbNoBroadcast),
        Just(ProtocolKind::Rwb),
        Just(ProtocolKind::RwbThreshold(1)),
        Just(ProtocolKind::RwbThreshold(3)),
        Just(ProtocolKind::WriteOnce),
        Just(ProtocolKind::WriteThrough),
    ]
}

fn build_script(ops: &[Op]) -> Script {
    let mut script = Script::new();
    for &op in ops {
        script = match op {
            Op::Read(a) => script.read(Addr::new(a)),
            Op::Write(a, v) => script.write(Addr::new(a), Word::new(v)),
            Op::Ts(a) => script.test_and_set(Addr::new(a), Word::ONE),
        };
    }
    script
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any concurrent program on any protocol terminates, and every
    /// address ends in a legal configuration whose owner (if any) holds
    /// a value some processor actually wrote.
    #[test]
    fn random_concurrent_programs_stay_consistent(
        kind in protocol_strategy(),
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..20),
            1..5
        ),
    ) {
        let mut builder = MachineBuilder::new(kind);
        builder.memory_words(64).cache_lines(4); // tiny cache: force evictions
        for ops in &programs {
            builder.processor(build_script(ops).build());
        }
        let mut machine = builder.build();
        prop_assert!(machine.run(2_000_000), "machine did not terminate under {kind}");

        for a in 0..ADDRESSES {
            let snap = machine.snapshot(Addr::new(a));
            prop_assert_ne!(
                snap.configuration(),
                Configuration::Illegal,
                "illegal configuration at @{} under {}: {}", a, kind, snap
            );
            // All readable copies agree with each other and with memory
            // (when no owner exists, memory is current).
            let owner = (0..machine.pe_count())
                .find(|&pe| snap.line(pe).is_some_and(|(s, _)| s.owns_latest()));
            if owner.is_none() {
                for pe in 0..machine.pe_count() {
                    if let Some((state, data)) = snap.line(pe) {
                        if state.is_readable_locally() {
                            prop_assert_eq!(
                                data, snap.memory(),
                                "stale readable copy at P{} @{} under {}", pe, a, kind
                            );
                        }
                    }
                }
            }
        }
    }

    /// Mutual exclusion: across any interleaving, at most one TS per
    /// address acquires while the word stays nonzero.
    #[test]
    fn test_and_set_is_atomic_under_races(
        kind in protocol_strategy(),
        pes in 2usize..6,
    ) {
        let lock = Addr::new(0);
        let mut builder = MachineBuilder::new(kind);
        builder.memory_words(16);
        for _ in 0..pes {
            builder.processor(Script::new().test_and_set(lock, Word::ONE).build());
        }
        let mut machine = builder.build();
        prop_assert!(machine.run(100_000));
        prop_assert_eq!(machine.stats().ts_successes, 1);
        prop_assert_eq!(machine.stats().ts_failures, pes as u64 - 1);
        prop_assert_eq!(machine.memory().peek(lock).unwrap(), Word::ONE);
    }

    /// Single-writer visibility: when one PE writes an ascending
    /// sequence and others read, every read observes a value the writer
    /// actually wrote (or the initial zero), never garbage.
    #[test]
    fn readers_only_see_written_values(
        kind in protocol_strategy(),
        writes in 1u64..12,
    ) {
        let x = Addr::new(0);
        let mut writer = Script::new();
        for v in 1..=writes {
            writer = writer.write(x, Word::new(v));
        }
        let mut builder = MachineBuilder::new(kind);
        builder.memory_words(16);
        builder.processor(writer.build());
        let mut reader = Script::new();
        for _ in 0..writes {
            reader = reader.read(x);
        }
        builder.processor(reader.build());
        let mut machine = builder.build();
        prop_assert!(machine.run(100_000));
        // Final latest value is the last write, held by the owner or
        // memory.
        let snap = machine.snapshot(x);
        let latest = (0..machine.pe_count())
            .find_map(|pe| snap.line(pe).filter(|(s, _)| s.owns_latest()).map(|(_, d)| d))
            .unwrap_or(snap.memory());
        prop_assert_eq!(latest, Word::new(writes));
    }

    /// The op encoding on a 1-PE machine behaves like a plain memory.
    #[test]
    fn single_pe_machine_is_a_plain_memory(
        kind in protocol_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut builder = MachineBuilder::new(kind);
        builder.memory_words(64).cache_lines(4);
        builder.processor(build_script(&ops).build());
        let mut machine = builder.build();
        prop_assert!(machine.run(1_000_000));

        // Replay against a flat model.
        let mut model = [0u64; ADDRESSES as usize];
        for op in &ops {
            match *op {
                Op::Read(_) => {}
                Op::Write(a, v) => model[a as usize] = v,
                Op::Ts(a) => {
                    if model[a as usize] == 0 {
                        model[a as usize] = 1;
                    }
                }
            }
        }
        for a in 0..ADDRESSES {
            let snap = machine.snapshot(Addr::new(a));
            let latest = snap
                .line(0)
                .filter(|(s, _)| s.owns_latest())
                .map(|(_, d)| d)
                .unwrap_or(snap.memory());
            prop_assert_eq!(latest, Word::new(model[a as usize]), "@{} under {}", a, kind);
        }
    }
}
