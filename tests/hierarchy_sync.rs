//! Synchronization on the hierarchical machine: locks and barriers live
//! in the global region; critical-section work stays cluster-local.

use decache::core::ProtocolKind;
use decache::machine::MachineBuilder;
use decache::mem::{Addr, Word};
use decache::sync::{BarrierWorker, LockWorker, Primitive};

const GLOBAL_WORDS: u64 = 64;
const MEMORY_WORDS: u64 = 1024;

/// The private word of PE `pe` inside its own cluster's region.
fn private_word(pe: usize, pes: usize, clusters: usize) -> Addr {
    let per_cluster = pes / clusters;
    let cluster = pe / per_cluster;
    let cluster_words = (MEMORY_WORDS - GLOBAL_WORDS) / clusters as u64;
    let base = GLOBAL_WORDS + cluster as u64 * cluster_words;
    Addr::new(base + (pe % per_cluster) as u64)
}

#[test]
fn cross_cluster_locking_is_mutually_exclusive() {
    for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        let pes = 8;
        let clusters = 4;
        let mut b = MachineBuilder::new(kind);
        b.memory_words(MEMORY_WORDS)
            .cache_lines(64)
            .clusters(clusters, GLOBAL_WORDS);
        b.processors(pes, |pe| {
            Box::new(
                LockWorker::new(Addr::new(0), Primitive::TestAndTestAndSet)
                    .rounds(3)
                    .critical_section(private_word(pe, pes, clusters), 6),
            )
        });
        let mut machine = b.build();
        machine.run_to_completion(10_000_000);
        assert_eq!(machine.stats().ts_successes, 24, "{kind}");
        // The lock ends free (latest value zero, wherever it lives).
        let snap = machine.snapshot(Addr::new(0));
        let latest = (0..pes)
            .find_map(|pe| {
                machine
                    .cache_line(pe, Addr::new(0))
                    .filter(|(s, _)| s.owns_latest())
                    .map(|(_, d)| d)
            })
            .unwrap_or(snap.memory());
        assert_eq!(latest, Word::ZERO, "{kind}");
    }
}

#[test]
fn critical_section_work_uses_only_the_cluster_bus() {
    let pes = 4;
    let clusters = 2;
    let mut b = MachineBuilder::new(ProtocolKind::Rwb);
    b.memory_words(MEMORY_WORDS)
        .cache_lines(64)
        .clusters(clusters, GLOBAL_WORDS);
    b.processors(pes, |pe| {
        Box::new(
            LockWorker::new(Addr::new(0), Primitive::TestAndTestAndSet)
                .rounds(2)
                .critical_section(private_word(pe, pes, clusters), 8),
        )
    });
    let mut machine = b.build();
    machine.run_to_completion(10_000_000);
    let per_bus = machine.traffic_per_bus();
    // Global bus: only lock transactions (reads/RMW of @0).
    assert!(per_bus.bus(0).total_transactions() > 0);
    // Cluster buses carry the critical-section cold misses.
    assert!(per_bus.bus(1).total_transactions() > 0);
    assert!(per_bus.bus(2).total_transactions() > 0);
    // No BI/BW of private words ever appears globally: the global bus
    // carries no plain writes at all (lock release writes do target the
    // global region, so allow those).
    let global_writes = per_bus.bus(0).total_writes();
    let expected_releases = machine.stats().ts_successes; // one release per acquisition
    assert!(
        global_writes <= 2 * expected_releases,
        "global writes {global_writes} should be bounded by lock activity"
    );
}

#[test]
fn barrier_spans_clusters_through_the_global_region() {
    let pes = 8;
    let mut b = MachineBuilder::new(ProtocolKind::Rwb);
    b.memory_words(MEMORY_WORDS)
        .cache_lines(64)
        .clusters(4, GLOBAL_WORDS);
    b.processors(pes, |_| {
        Box::new(BarrierWorker::new(Addr::new(0), pes as u64, 3))
    });
    let mut machine = b.build();
    machine.run_to_completion(10_000_000);
    assert_eq!(machine.stats().ts_successes, 24); // 8 workers x 3 episodes
}
