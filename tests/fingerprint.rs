//! Machine-fingerprint golden test: pins the *complete observable
//! behaviour* of the cycle engine so performance work cannot change a
//! single simulated statistic.
//!
//! For a grid of seeded scenarios × all seven [`ProtocolKind`] variants,
//! the test runs the machine to completion and folds every statistic the
//! machine exposes — elapsed cycles, per-bus traffic by transaction
//! type, per-PE cache hit/miss counters by access kind and reference
//! class, the machine counters (broadcast-satisfied, write-backs,
//! Test-and-Set successes/failures, lock rejections), and a checksum of
//! final memory contents — into one FNV-1a fingerprint. The golden
//! values below were captured from the engine *before* the sharer-index
//! fast path landed; the fast path must be invisible to every one of
//! them.
//!
//! To regenerate after an *intentional* behavioural change, run
//! `DECACHE_FINGERPRINT_PRINT=1 cargo test --test fingerprint -- --nocapture`
//! and paste the printed table.

use decache::cache::{AccessKind, RefClass};
use decache::core::ProtocolKind;
use decache::machine::{Machine, MachineBuilder, Script};
use decache::mem::{Addr, AddrRange, Word};
use decache::workloads::{MixConfig, MixWorkload};

/// The seven protocol variants, in fingerprint order.
const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// FNV-1a over the rendered statistics dump.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders every statistic of a finished machine into one stable string.
fn dump(machine: &Machine, cycles: u64) -> String {
    use decache::bus::BusOpKind;
    use std::fmt::Write as _;

    let mut out = String::new();
    writeln!(out, "cycles={cycles}").unwrap();
    let per_bus = machine.traffic_per_bus();
    for bus in 0..per_bus.bus_count() {
        let t = per_bus.bus(bus);
        writeln!(
            out,
            "bus{bus}: BR={} BW={} BI={} BRL={} BWU={} aborts={} retries={} busy={} idle={}",
            t.count(BusOpKind::Read),
            t.count(BusOpKind::Write),
            t.count(BusOpKind::Invalidate),
            t.count(BusOpKind::ReadWithLock),
            t.count(BusOpKind::WriteWithUnlock),
            t.aborted_reads,
            t.retries,
            t.busy_cycles,
            t.idle_cycles,
        )
        .unwrap();
    }
    for pe in 0..machine.pe_count() {
        let s = machine.cache_stats(pe);
        write!(out, "pe{pe}:").unwrap();
        for kind in [AccessKind::Read, AccessKind::Write] {
            for class in RefClass::ALL {
                write!(out, " {}/{}", s.hits(kind, class), s.misses(kind, class)).unwrap();
            }
        }
        writeln!(out).unwrap();
    }
    let m = machine.stats();
    writeln!(
        out,
        "machine: bcast={} wb={} ts_ok={} ts_fail={} lockrej={}",
        m.broadcast_satisfied, m.writebacks, m.ts_successes, m.ts_failures, m.lock_rejections
    )
    .unwrap();
    // Memory contents checksum: position-sensitive fold over every word.
    let mut mem_hash = 0xcbf2_9ce4_8422_2325u64;
    for addr in 0..machine.memory().size() {
        let w = machine.memory().peek(Addr::new(addr)).unwrap();
        mem_hash ^= w.value().rotate_left((addr % 63) as u32);
        mem_hash = mem_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    writeln!(out, "memory={mem_hash:016x}").unwrap();
    out
}

/// One scenario: a named machine constructor.
struct Scenario {
    name: &'static str,
    build: fn(ProtocolKind) -> Machine,
}

/// 8 PEs on the default mixed workload, single bus, small caches so
/// conflict evictions (and write-backs) occur.
fn mix_single_builder(kind: ProtocolKind) -> MachineBuilder {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 400,
        ..MixConfig::default()
    };
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(1 << 12)
        .cache_lines(64)
        .processors(8, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    builder
}

fn mix_single(kind: ProtocolKind) -> Machine {
    mix_single_builder(kind).build()
}

/// 8 PEs over two interleaved buses.
fn mix_dualbus_builder(kind: ProtocolKind) -> MachineBuilder {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 300,
        ..MixConfig::default()
    };
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(1 << 12)
        .cache_lines(128)
        .buses(2)
        .processors(8, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    builder
}

fn mix_dualbus(kind: ProtocolKind) -> Machine {
    mix_dualbus_builder(kind).build()
}

/// 8 PEs in 2 clusters: shared refs on the global bus, private refs on
/// the cluster buses.
fn mix_clustered_builder(kind: ProtocolKind) -> MachineBuilder {
    const GLOBAL: u64 = 64;
    let shared = AddrRange::with_len(Addr::new(0), GLOBAL);
    let config = MixConfig {
        ops_per_pe: 300,
        ..MixConfig::default()
    };
    let memory_words = 1u64 << 13;
    let clusters = 2usize;
    let pes = 8usize;
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(memory_words)
        .cache_lines(64)
        .clusters(clusters, GLOBAL);
    builder.processors(pes, |pe| {
        let per_cluster = pes / clusters;
        let cluster_words = (memory_words - GLOBAL) / clusters as u64;
        let base = GLOBAL + (pe / per_cluster) as u64 * cluster_words;
        let slot = (pe % per_cluster) as u64;
        let private = AddrRange::with_len(Addr::new(base + slot * 128), 128);
        Box::new(MixWorkload::with_private_region(
            config, shared, private, pe as u64,
        ))
    });
    builder
}

fn mix_clustered(kind: ProtocolKind) -> Machine {
    mix_clustered_builder(kind).build()
}

/// 4 PEs hammering one lock word with Test-and-Set while touching a few
/// shared words — exercises locked reads, unlocking writes, lock
/// rejections, and TS failures.
fn ts_contention_builder(kind: ProtocolKind) -> MachineBuilder {
    let lock = Addr::new(0);
    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(64).cache_lines(16);
    for pe in 0..4usize {
        let mut script = Script::new();
        for round in 0..6u64 {
            script = script
                .test_and_set(lock, Word::ONE)
                .read(Addr::new(1 + (pe as u64 + round) % 8))
                .write(Addr::new(1 + round % 8), Word::new(pe as u64 * 100 + round))
                .write(lock, Word::ZERO);
        }
        builder.processor(script.build());
    }
    builder
}

fn ts_contention(kind: ProtocolKind) -> Machine {
    ts_contention_builder(kind).build()
}

/// 4 PEs with tiny caches cycling through a region larger than the
/// cache — eviction- and write-back-heavy, with heavy line migration.
fn eviction_churn_builder(kind: ProtocolKind) -> MachineBuilder {
    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(256).cache_lines(8);
    for pe in 0..4usize {
        let mut script = Script::new();
        for i in 0..48u64 {
            let a = Addr::new((i * 7 + pe as u64 * 3) % 64);
            script = if i % 3 == 0 {
                script.write(a, Word::new(i + pe as u64))
            } else {
                script.read(a)
            };
        }
        builder.processor(script.build());
    }
    builder
}

fn eviction_churn(kind: ProtocolKind) -> Machine {
    eviction_churn_builder(kind).build()
}

/// 128 PEs on the mixed workload over one bus — the paper's §7 scale.
/// Large-n coverage for the batched broadcast path and the sharded
/// issue phase (every other scenario is small-n).
fn mix_128pe_builder(kind: ProtocolKind) -> MachineBuilder {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 60,
        ..MixConfig::default()
    };
    // Memory must cover every PE's private region (see MixWorkload::new).
    let memory_words = (1u64 << 14).max((1088 + 128u64 * 256).next_power_of_two());
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(memory_words)
        .cache_lines(256)
        .processors(128, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    builder
}

fn mix_128pe(kind: ProtocolKind) -> Machine {
    mix_128pe_builder(kind).build()
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "mix_single",
        build: mix_single,
    },
    Scenario {
        name: "mix_dualbus",
        build: mix_dualbus,
    },
    Scenario {
        name: "mix_clustered",
        build: mix_clustered,
    },
    Scenario {
        name: "ts_contention",
        build: ts_contention,
    },
    Scenario {
        name: "eviction_churn",
        build: eviction_churn,
    },
    Scenario {
        name: "mix_128pe",
        build: mix_128pe,
    },
];

/// Golden fingerprints captured from the pre-optimization engine
/// (rows: scenario; columns: the seven protocols in `PROTOCOLS` order).
#[rustfmt::skip]
const GOLDEN: [(&str, [u64; 7]); 6] = [
    ("mix_single", [0x636d5a182cc03c6c, 0x0dcfcc4b752adba9, 0xac24686ff847893c, 0x4398f6f33868cb32, 0x457c0946a3ec3baa, 0x69eca5b8cf8e6847, 0x734b3f48eeeec781]),
    ("mix_dualbus", [0x19c17eb2a87033c0, 0x3f8e376bdfc16e89, 0xc6a406c794b2b991, 0x11f01a82e70a7482, 0x6c3a98743900fa3a, 0xf52cb474e4d6c471, 0x569af8055d022000]),
    ("mix_clustered", [0x9fcfb04e0dfd63b2, 0x3cbc8fb1e23a3055, 0xcca416d13c172d5d, 0x328f83a224abe505, 0x315dc7ba6093e22f, 0x3c0291232dfe0544, 0x4111bbb37c0bc4dd]),
    ("ts_contention", [0xa73bbda14da1f1b4, 0xa73bbda14da1f1b4, 0xfb6d0ccb464e2e25, 0xbda95245f6865ec2, 0x66be13973f1cac59, 0x66be13973f1cac59, 0x66be13973f1cac59]),
    ("eviction_churn", [0xc4351197056304ec, 0xc4351197056304ec, 0x0b15d5de758b6bf4, 0x1016366c2f145d1d, 0x0b15d5de758b6bf4, 0x0b15d5de758b6bf4, 0x0b15d5de758b6bf4]),
    ("mix_128pe", [0xec9052056162eda5, 0xf065c988e81804ff, 0x6b680dfd553494e8, 0x9eab946c3805b74f, 0x1ca71498e80f7161, 0x9b7086944ffaafa1, 0xc87b4e3389d3bcb9]),
];

/// Golden fingerprints for the table-driven MESI (rows: scenario).
/// Kept separate from [`GOLDEN`]: those columns pin the pre-optimization
/// engine and must never be regenerated for a protocol addition.
/// Captured the same way, with
/// `DECACHE_FINGERPRINT_PRINT=1 cargo test --test fingerprint -- --nocapture`.
#[rustfmt::skip]
const MESI_GOLDEN: [(&str, u64); 6] = [
    ("mix_single", 0xdaaedc3b8cded7bb),
    ("mix_dualbus", 0xf7786afab9ed5e2f),
    ("mix_clustered", 0xc0437050a5e398f5),
    ("ts_contention", 0x8fa3b6f530112c19),
    ("eviction_churn", 0x0b15d5de758b6bf4),
    ("mix_128pe", 0x6d194f5bebc80ce7),
];

/// The non-default service disciplines, in discipline-golden column
/// order. The default (per-cycle) columns are pinned by [`GOLDEN`].
const DISCIPLINES: [decache::bus::ServiceDiscipline; 3] = [
    decache::bus::ServiceDiscipline::Fcfs,
    decache::bus::ServiceDiscipline::Batched,
    decache::bus::ServiceDiscipline::Split,
];

/// A scenario constructor that stops at the builder, so the discipline
/// tests can set the service discipline before building.
type BuilderFn = fn(ProtocolKind) -> MachineBuilder;

/// The builder-returning scenarios the discipline goldens run (RWB
/// only — the headline protocol; the full protocol grid under the
/// default discipline is already pinned above).
const DISCIPLINE_SCENARIOS: [(&str, BuilderFn); 5] = [
    ("mix_single", mix_single_builder),
    ("mix_dualbus", mix_dualbus_builder),
    ("mix_clustered", mix_clustered_builder),
    ("ts_contention", ts_contention_builder),
    ("eviction_churn", eviction_churn_builder),
];

/// Golden fingerprints per discipline (rows: scenario; columns: the
/// disciplines in [`DISCIPLINES`] order), captured with
/// `DECACHE_FINGERPRINT_PRINT=1 cargo test --test fingerprint -- --nocapture`.
#[rustfmt::skip]
const DISCIPLINE_GOLDEN: [(&str, [u64; 3]); 5] = [
    ("mix_single", [0x9751aa1f8008f4ad, 0xf3c09c65ccdfbdc1, 0x1941adb885cfa5ce]),
    ("mix_dualbus", [0x81989da7033c6c4e, 0xb1357106a9049459, 0xddba787b37ca9b94]),
    ("mix_clustered", [0xed647a2eb5b88a65, 0x5f9569007fb0b36d, 0x311055238a6670b6]),
    ("ts_contention", [0xb66010c7d7c5826a, 0xb66010c7d7c5826a, 0xf5af4dc29f8e9d89]),
    ("eviction_churn", [0xb49e96fe8be783c6, 0xb49e96fe8be783c6, 0x96192ce7e74efc00]),
];

fn fingerprint(scenario: &Scenario, kind: ProtocolKind) -> (u64, String) {
    let mut machine = (scenario.build)(kind);
    let cycles = machine.run_to_completion(50_000_000);
    let text = dump(&machine, cycles);
    (fnv1a(&text), text)
}

/// Attaching the conformance oracle must not move a single statistic:
/// observers are pure, so the oracle-instrumented run reproduces the
/// exact same golden fingerprints — and conforms to the product model.
#[test]
fn conformance_oracle_is_invisible_to_fingerprints() {
    use decache::verify::Refinement;
    // The two single-bus scenarios with the densest protocol activity
    // (locked reads, unlocking writes, evictions, write-backs).
    for (scenario, golden) in SCENARIOS.iter().zip(GOLDEN.iter()) {
        if !matches!(scenario.name, "ts_contention" | "eviction_churn") {
            continue;
        }
        for (&kind, &expect) in PROTOCOLS.iter().zip(golden.1.iter()) {
            let mut machine = (scenario.build)(kind);
            let oracle = Refinement::new(kind, machine.pe_count());
            machine.attach_observer(oracle.observer());
            let cycles = machine.run_to_completion(50_000_000);
            let text = dump(&machine, cycles);
            assert_eq!(
                fnv1a(&text),
                expect,
                "the oracle perturbed scenario '{}' under {kind:?};\nfull dump:\n{text}",
                scenario.name
            );
            assert!(oracle.checked_steps() > 0);
            oracle.assert_clean();
        }
    }
}

/// A zero-rate [`FaultPlan`] must be free: the fault engine is armed
/// but never draws, so the instrumented run is bit-identical to the
/// golden fingerprints.
#[test]
fn inert_fault_plan_is_invisible_to_fingerprints() {
    use decache::machine::FaultPlan;
    for (scenario_name, builder_fn) in [
        (
            "ts_contention",
            ts_contention_builder as fn(ProtocolKind) -> MachineBuilder,
        ),
        ("eviction_churn", eviction_churn_builder),
    ] {
        let golden = GOLDEN
            .iter()
            .find(|(name, _)| *name == scenario_name)
            .expect("scenario present in the golden table");
        for (&kind, &expect) in PROTOCOLS.iter().zip(golden.1.iter()) {
            let mut builder = builder_fn(kind);
            builder.fault_plan(FaultPlan::new(0xFEED));
            let mut machine = builder.build();
            let cycles = machine.run_to_completion(50_000_000);
            let text = dump(&machine, cycles);
            assert_eq!(
                fnv1a(&text),
                expect,
                "an inert fault plan perturbed scenario '{scenario_name}' \
                 under {kind:?};\nfull dump:\n{text}"
            );
            assert_eq!(machine.fault_stats().total_injected(), 0);
        }
    }
}

/// Enabling telemetry must not move a single statistic: histogram
/// recording is pure observation behind the builder gate, so the
/// telemetry-enabled run reproduces the exact golden fingerprints —
/// while the cycle-attribution histograms populate and the unified
/// snapshot passes its conservation audit.
#[test]
fn telemetry_is_invisible_to_fingerprints() {
    use decache::telemetry::MetricsSnapshot;
    for (scenario_name, builder_fn) in [
        (
            "ts_contention",
            ts_contention_builder as fn(ProtocolKind) -> MachineBuilder,
        ),
        ("eviction_churn", eviction_churn_builder),
    ] {
        let golden = GOLDEN
            .iter()
            .find(|(name, _)| *name == scenario_name)
            .expect("scenario present in the golden table");
        for (&kind, &expect) in PROTOCOLS.iter().zip(golden.1.iter()) {
            let mut builder = builder_fn(kind);
            builder.telemetry();
            let mut machine = builder.build();
            let cycles = machine.run_to_completion(50_000_000);
            let text = dump(&machine, cycles);
            assert_eq!(
                fnv1a(&text),
                expect,
                "telemetry perturbed scenario '{scenario_name}' under \
                 {kind:?};\nfull dump:\n{text}"
            );
            let hist = machine.histograms().expect("telemetry is enabled");
            assert!(hist.bus_acquire_wait.count() > 0, "histograms populated");
            let snapshot = MetricsSnapshot::from_machine(&machine);
            snapshot.check_conservation().unwrap_or_else(|violations| {
                panic!(
                    "conservation violated in '{scenario_name}' under \
                     {kind:?}:\n  {}",
                    violations.join("\n  ")
                )
            });
        }
    }
}

/// The sharded issue phase must be invisible: `mix_128pe` rebuilt with
/// `step_threads(4)` — a shape whose idle population holds the shard
/// gate open — reproduces the exact same golden fingerprints as the
/// sequential engine, for every protocol.
#[test]
fn sharded_issue_is_invisible_to_fingerprints() {
    let golden = GOLDEN
        .iter()
        .find(|(name, _)| *name == "mix_128pe")
        .expect("scenario present in the golden table");
    for (&kind, &expect) in PROTOCOLS.iter().zip(golden.1.iter()) {
        let mut builder = mix_128pe_builder(kind);
        builder.step_threads(4);
        let mut machine = builder.build();
        let cycles = machine.run_to_completion(50_000_000);
        let text = dump(&machine, cycles);
        assert_eq!(
            fnv1a(&text),
            expect,
            "the sharded issue phase perturbed mix_128pe under {kind:?};\nfull dump:\n{text}"
        );
    }
}

/// The table-driven MESI — executed by the generic rule interpreter
/// from pure IR data — is deterministic across the full scenario grid,
/// pinned by its own golden table so interpreter work cannot silently
/// change a MESI statistic.
#[test]
fn mesi_fingerprints_match_seeded_goldens() {
    let print_mode = std::env::var("DECACHE_FINGERPRINT_PRINT").is_ok();
    for (scenario, golden) in SCENARIOS.iter().zip(MESI_GOLDEN.iter()) {
        assert_eq!(
            scenario.name, golden.0,
            "scenario/MESI-golden tables out of sync"
        );
        let (hash, text) = fingerprint(scenario, ProtocolKind::Mesi);
        if print_mode {
            println!("    (\"{}\", 0x{hash:016x}),", scenario.name);
            continue;
        }
        assert_eq!(
            hash, golden.1,
            "MESI fingerprint drift in scenario '{}' \
             (got 0x{hash:016x}, want 0x{:016x});\nfull dump:\n{text}",
            scenario.name, golden.1
        );
    }
}

/// Each non-default service discipline is deterministic and pinned by
/// its own golden table; the default-discipline goldens above stay
/// bit-identical, so this table only moves when a discipline's own
/// semantics intentionally change.
#[test]
fn discipline_fingerprints_match_seeded_goldens() {
    let print_mode = std::env::var("DECACHE_FINGERPRINT_PRINT").is_ok();
    for ((name, builder_fn), golden) in DISCIPLINE_SCENARIOS.iter().zip(DISCIPLINE_GOLDEN.iter()) {
        assert_eq!(
            *name, golden.0,
            "scenario/discipline-golden tables out of sync"
        );
        let mut row = Vec::new();
        for (&discipline, &expect) in DISCIPLINES.iter().zip(golden.1.iter()) {
            let mut builder = builder_fn(ProtocolKind::Rwb);
            // Two-cycle transactions create the contention windows in
            // which the disciplines actually order grants differently.
            builder.discipline(discipline).transaction_cycles(2);
            let mut machine = builder.build();
            let cycles = machine.run_to_completion(50_000_000);
            let text = dump(&machine, cycles);
            let hash = fnv1a(&text);
            row.push(format!("0x{hash:016x}"));
            if !print_mode {
                assert_eq!(
                    hash, expect,
                    "discipline fingerprint drift in '{name}' under {discipline};\nfull dump:\n{text}"
                );
            }
        }
        if print_mode {
            println!("    (\"{name}\", [{}]),", row.join(", "));
        }
    }
}

/// The conformance oracle stays invisible — and clean — under every
/// non-default discipline: arbitration order and split phasing change
/// *when* transactions happen, never *what* the protocol does, so the
/// instrumented run reproduces the discipline goldens exactly and
/// refines the product model.
#[test]
fn conformance_oracle_is_invisible_under_disciplines() {
    use decache::verify::Refinement;
    let golden = DISCIPLINE_GOLDEN
        .iter()
        .find(|(name, _)| *name == "ts_contention")
        .expect("scenario present in the discipline-golden table");
    for (&discipline, &expect) in DISCIPLINES.iter().zip(golden.1.iter()) {
        let mut builder = ts_contention_builder(ProtocolKind::Rwb);
        builder.discipline(discipline).transaction_cycles(2);
        let mut machine = builder.build();
        let oracle = Refinement::new(ProtocolKind::Rwb, machine.pe_count());
        machine.attach_observer(oracle.observer());
        let cycles = machine.run_to_completion(50_000_000);
        let text = dump(&machine, cycles);
        assert_eq!(
            fnv1a(&text),
            expect,
            "the oracle perturbed ts_contention under {discipline};\nfull dump:\n{text}"
        );
        assert!(oracle.checked_steps() > 0);
        oracle.assert_clean();
    }
}

#[test]
fn machine_fingerprints_match_pre_optimization_goldens() {
    let print_mode = std::env::var("DECACHE_FINGERPRINT_PRINT").is_ok();
    for (scenario, golden) in SCENARIOS.iter().zip(GOLDEN.iter()) {
        assert_eq!(
            scenario.name, golden.0,
            "scenario/golden tables out of sync"
        );
        if print_mode {
            let prints: Vec<String> = PROTOCOLS
                .iter()
                .map(|&kind| format!("0x{:016x}", fingerprint(scenario, kind).0))
                .collect();
            println!("    (\"{}\", [{}]),", scenario.name, prints.join(", "));
            continue;
        }
        for (&kind, &expect) in PROTOCOLS.iter().zip(golden.1.iter()) {
            let (hash, text) = fingerprint(scenario, kind);
            assert_eq!(
                hash, expect,
                "fingerprint drift in scenario '{}' under {kind:?} \
                 (got 0x{hash:016x}, want 0x{expect:016x});\nfull dump:\n{text}",
                scenario.name
            );
        }
    }
}
