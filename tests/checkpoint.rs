//! Restore-equivalence suite: proves [`Machine::checkpoint`] /
//! [`Machine::restore`] capture the *complete* run state, for every
//! protocol.
//!
//! The property: running a machine N cycles must be indistinguishable
//! from running N/2 cycles, checkpointing, serializing the checkpoint
//! through the telemetry JSON codec, restoring into a *freshly built*
//! machine, and running the rest — down to the last statistic the
//! machine exposes (the same `dump` rendering `tests/fingerprint.rs`
//! pins with goldens). The grid covers all eight protocols × single
//! bus, interleaved dual bus, an *active* fault storm, and telemetry
//! recording.
//!
//! Two golden checkpoint files (2-PE RB and RWB) are committed under
//! `tests/golden/`; they pin the on-disk format at
//! [`CHECKPOINT_VERSION`]. Regenerate after an *intentional* format
//! change (with a version bump) via
//! `DECACHE_CHECKPOINT_PRINT=1 cargo test --test checkpoint`.

use decache::bus::ServiceDiscipline;
use decache::cache::{AccessKind, RefClass};
use decache::core::ProtocolKind;
use decache::machine::{
    CheckpointError, FaultPlan, Machine, MachineBuilder, MachineCheckpoint, OpResult, Poll,
    RestoreError, Script, CHECKPOINT_VERSION,
};
use decache::mem::{Addr, AddrRange, Word};
use decache::telemetry::{
    checkpoint_from_json, checkpoint_to_json, load_checkpoint, save_checkpoint, Json,
    MetricsSnapshot,
};
use decache::workloads::{MixConfig, MixWorkload};
use std::path::PathBuf;

/// All eight protocols: the paper's seven schemes plus table-driven MESI.
const ALL_PROTOCOLS: [ProtocolKind; 8] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
    ProtocolKind::Mesi,
];

const CAP: u64 = 50_000_000;

/// Renders every statistic of a machine into one stable string — the
/// same rendering `tests/fingerprint.rs` fingerprints, so "equal dumps"
/// here means "equal under the golden-fingerprint lens" there.
fn dump(machine: &Machine, cycles: u64) -> String {
    use decache::bus::BusOpKind;
    use std::fmt::Write as _;

    let mut out = String::new();
    writeln!(out, "cycles={cycles}").unwrap();
    let per_bus = machine.traffic_per_bus();
    for bus in 0..per_bus.bus_count() {
        let t = per_bus.bus(bus);
        writeln!(
            out,
            "bus{bus}: BR={} BW={} BI={} BRL={} BWU={} aborts={} retries={} busy={} idle={}",
            t.count(BusOpKind::Read),
            t.count(BusOpKind::Write),
            t.count(BusOpKind::Invalidate),
            t.count(BusOpKind::ReadWithLock),
            t.count(BusOpKind::WriteWithUnlock),
            t.aborted_reads,
            t.retries,
            t.busy_cycles,
            t.idle_cycles,
        )
        .unwrap();
    }
    for pe in 0..machine.pe_count() {
        let s = machine.cache_stats(pe);
        write!(out, "pe{pe}:").unwrap();
        for kind in [AccessKind::Read, AccessKind::Write] {
            for class in RefClass::ALL {
                write!(out, " {}/{}", s.hits(kind, class), s.misses(kind, class)).unwrap();
            }
        }
        writeln!(out).unwrap();
    }
    let m = machine.stats();
    writeln!(
        out,
        "machine: bcast={} wb={} ts_ok={} ts_fail={} lockrej={}",
        m.broadcast_satisfied, m.writebacks, m.ts_successes, m.ts_failures, m.lock_rejections
    )
    .unwrap();
    let mut mem_hash = 0xcbf2_9ce4_8422_2325u64;
    for addr in 0..machine.memory().size() {
        let w = machine.memory().peek(Addr::new(addr)).unwrap();
        mem_hash ^= w.value().rotate_left((addr % 63) as u32);
        mem_hash = mem_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    writeln!(out, "memory={mem_hash:016x}").unwrap();
    out
}

/// 8 PEs on the mixed workload; the builder is returned so fault plans
/// and telemetry can be attached before `.build()`.
fn mix_builder(kind: ProtocolKind, buses: usize) -> MachineBuilder {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 200,
        ..MixConfig::default()
    };
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(1 << 12)
        .cache_lines(64)
        .buses(buses)
        .processors(8, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    builder
}

/// Serializes a checkpoint through the telemetry JSON codec and back,
/// asserting the round trip is exact — every restore below goes through
/// the serialized form, never the in-memory struct alone.
fn json_roundtrip(ck: &MachineCheckpoint) -> MachineCheckpoint {
    let text = checkpoint_to_json(ck).to_string();
    let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("re-parsing checkpoint JSON: {e}"));
    let decoded =
        checkpoint_from_json(&parsed).unwrap_or_else(|e| panic!("decoding checkpoint JSON: {e}"));
    assert_eq!(*ck, decoded, "JSON codec round trip must be exact");
    decoded
}

/// Runs `build()` uninterrupted to completion, then again split at the
/// halfway cycle — checkpoint, JSON round trip, restore into a third
/// freshly built machine, finish there. Returns the two finished
/// machines (full, resumed) and the final cycle count, after asserting
/// both finished on the same cycle.
fn run_split(build: &dyn Fn() -> Machine) -> (Machine, Machine, u64) {
    let mut full = build();
    let cycles = full.run_to_completion(CAP);

    let mut first = build();
    for _ in 0..cycles / 2 {
        first.step();
    }
    let ck = json_roundtrip(&first.checkpoint().expect("mid-run checkpoint"));

    let mut resumed = build();
    resumed
        .restore(&ck)
        .expect("restore into an identically built machine");
    resumed.assert_fast_path_invariants();
    let finished = resumed.run_to_completion(CAP);
    assert_eq!(
        finished, cycles,
        "resumed run must finish on the same cycle"
    );
    (full, resumed, cycles)
}

/// Checkpoint/restore at the halfway cycle is invisible to every
/// statistic, for all eight protocols on one bus and on two interleaved
/// buses.
#[test]
fn restore_is_bit_exact_for_every_protocol() {
    for &kind in &ALL_PROTOCOLS {
        for buses in [1usize, 2] {
            let (full, resumed, cycles) = run_split(&|| mix_builder(kind, buses).build());
            assert_eq!(
                dump(&resumed, cycles),
                dump(&full, cycles),
                "restore perturbed the {buses}-bus mix under {kind:?}"
            );
        }
    }
}

/// The same property with a *live* fault storm: memory flips, cache
/// flips, and bus losses keep drawing across the checkpoint boundary,
/// so the fault engine's RNG stream, schedule cursor, and
/// detection-latency ledger must all survive the round trip. Both runs
/// step a fixed cycle count (completion under injected faults is not
/// the property here; bit-exactness is).
#[test]
fn restore_is_bit_exact_under_an_active_fault_storm() {
    const TOTAL: u64 = 600;
    for (seed, &kind) in ALL_PROTOCOLS.iter().enumerate() {
        let build = || {
            let mut builder = mix_builder(kind, 1);
            builder.fault_plan(
                FaultPlan::new(0xD1CE_0000 + seed as u64)
                    .memory_flip_rate(0.01)
                    .cache_flip_rate(0.005)
                    .bus_loss_rate(0.002)
                    .region(AddrRange::with_len(Addr::new(0), 64)),
            );
            builder.build()
        };

        let mut full = build();
        for _ in 0..TOTAL {
            full.step();
        }
        assert!(
            full.fault_stats().total_injected() > 0,
            "the storm must actually inject under {kind:?}"
        );
        let want = dump(&full, TOTAL);

        let mut first = build();
        for _ in 0..TOTAL / 2 {
            first.step();
        }
        let ck = json_roundtrip(&first.checkpoint().expect("mid-storm checkpoint"));
        let mut resumed = build();
        resumed.restore(&ck).expect("restore under an active storm");
        resumed.assert_fast_path_invariants();
        for _ in 0..TOTAL - TOTAL / 2 {
            resumed.step();
        }
        assert_eq!(
            dump(&resumed, TOTAL),
            want,
            "restore perturbed the fault storm under {kind:?}"
        );
        assert_eq!(
            resumed.fault_stats().total_injected(),
            full.fault_stats().total_injected(),
            "fault injection count diverged after restore under {kind:?}"
        );
    }
}

/// With telemetry enabled, the full [`MetricsSnapshot`] — histograms
/// included — survives checkpoint/restore byte-for-byte in its
/// canonical JSON form.
#[test]
fn restore_preserves_telemetry_exactly() {
    for &kind in &ALL_PROTOCOLS {
        let build = || {
            let mut builder = mix_builder(kind, 1);
            builder.telemetry();
            builder.build()
        };
        let (full, resumed, cycles) = run_split(&build);
        assert_eq!(
            dump(&resumed, cycles),
            dump(&full, cycles),
            "restore perturbed the telemetry run under {kind:?}"
        );
        let want = MetricsSnapshot::from_machine(&full).to_json().to_string();
        let got = MetricsSnapshot::from_machine(&resumed)
            .to_json()
            .to_string();
        assert_eq!(
            got, want,
            "telemetry snapshot diverged after restore under {kind:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Service disciplines
// ---------------------------------------------------------------------

/// Checkpoint/restore at the halfway cycle is invisible under every
/// service discipline. Multi-cycle transactions make the capture land
/// inside held-bus windows, so the FCFS arrival lane and the batched
/// remainder are non-trivially populated at the boundary.
#[test]
fn restore_is_bit_exact_under_every_service_discipline() {
    for discipline in ServiceDiscipline::ALL {
        for buses in [1usize, 2] {
            let build = || {
                let mut builder = mix_builder(ProtocolKind::Rwb, buses);
                builder.discipline(discipline).transaction_cycles(3);
                builder.build()
            };
            let (full, resumed, cycles) = run_split(&build);
            assert_eq!(
                dump(&resumed, cycles),
                dump(&full, cycles),
                "restore perturbed the {buses}-bus mix under {discipline}"
            );
        }
    }
}

/// A split-transaction checkpoint captured with address phases in
/// flight (granted on the bus, data phase still pending) restores those
/// phases exactly: the resumed machine finishes on the same cycle with
/// the same statistics as an uninterrupted run.
#[test]
fn split_checkpoint_restores_in_flight_phases() {
    let build = || {
        let mut builder = mix_builder(ProtocolKind::Rwb, 1);
        builder
            .discipline(ServiceDiscipline::Split)
            .transaction_cycles(4);
        builder.build()
    };
    let mut full = build();
    let cycles = full.run_to_completion(CAP);
    let want = dump(&full, cycles);

    // Step until a checkpoint actually holds an in-flight transaction,
    // so the restore below provably exercises the in-flight lane rather
    // than an incidentally empty queue.
    let mut first = build();
    let mut captured = None;
    for _ in 0..cycles {
        first.step();
        let candidate = first.checkpoint().expect("mid-run checkpoint");
        if candidate.queues.iter().any(|q| !q.in_flight.is_empty()) {
            captured = Some(candidate);
            break;
        }
    }
    let ck = json_roundtrip(&captured.expect("the mix never had a split phase in flight"));

    let mut resumed = build();
    resumed
        .restore(&ck)
        .expect("restore with address phases in flight");
    resumed.assert_fast_path_invariants();
    let finished = resumed.run_to_completion(CAP);
    assert_eq!(
        finished, cycles,
        "resumed run must finish on the same cycle"
    );
    assert_eq!(
        dump(&resumed, finished),
        want,
        "restore perturbed the in-flight split state"
    );
}

/// A checkpoint records the service discipline it ran under and refuses
/// to restore into a machine running a different one — the queue lanes
/// it carries only make sense to the discipline that filled them.
#[test]
fn restore_rejects_a_discipline_mismatch() {
    let build = |discipline| {
        let mut builder = mix_builder(ProtocolKind::Rb, 1);
        builder.discipline(discipline).transaction_cycles(2);
        builder.build()
    };
    let mut machine = build(ServiceDiscipline::Fcfs);
    for _ in 0..50 {
        machine.step();
    }
    let ck = machine.checkpoint().expect("capture under FCFS");
    assert_eq!(ck.discipline, "fcfs");

    let err = build(ServiceDiscipline::Batched)
        .restore(&ck)
        .expect_err("an FCFS checkpoint must not restore into a batched machine");
    assert!(
        err.to_string().contains("discipline"),
        "Display should name the mismatch: {err}"
    );
}

// ---------------------------------------------------------------------
// Golden on-disk format
// ---------------------------------------------------------------------

/// The deterministic 2-PE machine behind the committed golden
/// checkpoint files: scripted reads, writes, and a Test-and-Set so the
/// capture holds non-trivial cache lines and pending state.
fn golden_machine(kind: ProtocolKind) -> Machine {
    MachineBuilder::new(kind)
        .memory_words(64)
        .cache_lines(16)
        .processor(
            Script::new()
                .write(Addr::new(0), Word::new(7))
                .read(Addr::new(1))
                .test_and_set(Addr::new(2), Word::ONE)
                .write(Addr::new(2), Word::ZERO)
                .read(Addr::new(0))
                .build(),
        )
        .processor(
            Script::new()
                .read(Addr::new(0))
                .write(Addr::new(1), Word::new(9))
                .read(Addr::new(2))
                .write(Addr::new(0), Word::new(11))
                .build(),
        )
        .build()
}

/// Cycle at which the golden checkpoints were captured — mid-flight,
/// with bus transactions and cache lines in motion.
const GOLDEN_CYCLES: u64 = 9;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

/// The committed golden checkpoint files are byte-identical to what
/// [`save_checkpoint`] writes today, and they still load and restore
/// into a machine that finishes exactly like an uninterrupted run —
/// pinning the on-disk format at [`CHECKPOINT_VERSION`].
#[test]
fn committed_golden_checkpoints_stay_loadable_and_exact() {
    let regen = std::env::var("DECACHE_CHECKPOINT_PRINT").is_ok();
    for (kind, file) in [
        (ProtocolKind::Rb, "checkpoint_rb_2pe.json"),
        (ProtocolKind::Rwb, "checkpoint_rwb_2pe.json"),
    ] {
        let path = golden_path(file);
        let mut machine = golden_machine(kind);
        for _ in 0..GOLDEN_CYCLES {
            machine.step();
        }
        let ck = machine.checkpoint().expect("golden capture");
        assert_eq!(ck.version, CHECKPOINT_VERSION);

        if regen {
            save_checkpoint(&path, &ck).expect("writing golden checkpoint");
            println!("regenerated {}", path.display());
            continue;
        }

        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "reading {}: {e} (regenerate with DECACHE_CHECKPOINT_PRINT=1)",
                path.display()
            )
        });
        let mut expect = checkpoint_to_json(&ck).to_string();
        expect.push('\n');
        assert_eq!(
            committed, expect,
            "{file} drifted from today's serialization — an intentional \
             format change needs a CHECKPOINT_VERSION bump and a regen"
        );

        let loaded = load_checkpoint(&path).expect("loading the committed golden");
        assert_eq!(loaded, ck, "decode of the committed golden must be exact");

        let mut resumed = golden_machine(kind);
        resumed
            .restore(&loaded)
            .expect("restoring the committed golden");
        resumed.assert_fast_path_invariants();
        let mut full = golden_machine(kind);
        let cycles = full.run_to_completion(10_000);
        let finished = resumed.run_to_completion(10_000);
        assert_eq!(finished, cycles);
        assert_eq!(
            dump(&resumed, finished),
            dump(&full, cycles),
            "the committed {kind:?} golden no longer resumes bit-exactly"
        );
    }
}

// ---------------------------------------------------------------------
// Structured errors
// ---------------------------------------------------------------------

/// Restore rejects version, protocol, and shape mismatches with
/// structured [`RestoreError`]s — never a panic.
#[test]
fn restore_validates_version_protocol_and_shape() {
    let mut machine = golden_machine(ProtocolKind::Rb);
    for _ in 0..GOLDEN_CYCLES {
        machine.step();
    }
    let ck = machine.checkpoint().expect("capture");

    let mut wrong_version = ck.clone();
    wrong_version.version += 1;
    let err = golden_machine(ProtocolKind::Rb)
        .restore(&wrong_version)
        .expect_err("a future version must be rejected");
    assert!(
        matches!(
            err,
            RestoreError::Version { found, expected }
                if found == CHECKPOINT_VERSION + 1 && expected == CHECKPOINT_VERSION
        ),
        "got {err:?}"
    );

    let err = golden_machine(ProtocolKind::Rwb)
        .restore(&ck)
        .expect_err("an RB checkpoint must not restore into an RWB machine");
    assert!(matches!(err, RestoreError::Protocol { .. }), "got {err:?}");
    assert!(
        err.to_string().contains("protocol"),
        "Display should name the mismatch: {err}"
    );

    let mut four_pe = MachineBuilder::new(ProtocolKind::Rb);
    four_pe.memory_words(64).cache_lines(16);
    for _ in 0..4 {
        four_pe.processor(Script::new().read(Addr::new(0)).build());
    }
    let err = four_pe
        .build()
        .restore(&ck)
        .expect_err("a 2-PE checkpoint must not restore into a 4-PE machine");
    assert!(
        matches!(
            err,
            RestoreError::Shape {
                what: "PEs",
                found: 2,
                expected: 4
            }
        ),
        "got {err:?}"
    );

    let err = golden_machine(ProtocolKind::Rb)
        .restore(&MachineCheckpoint {
            memory_size: 128,
            ..ck.clone()
        })
        .expect_err("a memory-size mismatch must be rejected");
    assert!(
        matches!(
            err,
            RestoreError::Shape {
                what: "memory words",
                ..
            }
        ),
        "got {err:?}"
    );
}

/// A closure processor cannot export its state; [`Machine::checkpoint`]
/// fails with a structured error naming the offending PE instead of
/// silently dropping it.
#[test]
fn closure_processors_fail_checkpoint_with_a_structured_error() {
    let mut machine = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_lines(16)
        .processor(Script::new().read(Addr::new(0)).build())
        .processor(Box::new(|_last: Option<&OpResult>| Poll::Halt))
        .build();
    machine.step();
    let err = machine
        .checkpoint()
        .expect_err("a closure processor is uncheckpointable");
    assert_eq!(err, CheckpointError::Processor { pe: 1 });
    assert!(
        err.to_string().contains("P1"),
        "Display names the PE: {err}"
    );
}
