//! A parallel matrix–vector product: read-only shared data (the matrix
//! and input vector) plus per-worker local output — the reference mix
//! the paper's assumptions describe, on real compute.
//!
//! Run with `cargo run --example matvec_kernel`.

use decache::analysis::TextTable;
use decache::core::ProtocolKind;
use decache::machine::MachineBuilder;
use decache::mem::{Addr, Word};
use decache::workloads::{MatVec, MatVecLayout};

fn main() {
    let rows = 16u64;
    let cols = 16u64;
    let workers = 4u64;
    let layout = MatVecLayout::new(Addr::new(0), rows, cols);
    let matrix: Vec<u64> = (0..rows * cols).map(|i| (i * 31 + 7) % 100).collect();
    let input: Vec<u64> = (0..cols).map(|i| i + 1).collect();
    let expected = layout.expected(&matrix, &input);

    let mut table = TextTable::new(vec!["protocol", "cycles", "bus tx", "hit ratio", "result"]);
    for kind in ProtocolKind::ALL {
        let mut builder = MachineBuilder::new(kind);
        builder
            .memory_words(1024)
            .cache_lines(128)
            .initialize_memory(
                layout.matrix,
                &matrix.iter().map(|&v| Word::new(v)).collect::<Vec<_>>(),
            )
            .initialize_memory(
                layout.input,
                &input.iter().map(|&v| Word::new(v)).collect::<Vec<_>>(),
            );
        builder.processors(workers as usize, |pe| {
            Box::new(MatVec::new(layout, pe as u64, workers))
        });
        let mut machine = builder.build();
        let cycles = machine.run_to_completion(10_000_000);

        let correct = (0..rows).all(|r| {
            let addr = layout.output.offset(r);
            let snap = machine.snapshot(addr);
            let latest = (0..workers as usize)
                .find_map(|pe| {
                    machine
                        .cache_line(pe, addr)
                        .filter(|(s, _)| s.owns_latest())
                        .map(|(_, d)| d)
                })
                .unwrap_or(snap.memory());
            latest.value() == expected[r as usize]
        });

        table.row(vec![
            kind.to_string(),
            cycles.to_string(),
            machine.traffic().total_transactions().to_string(),
            format!("{:.1}%", machine.total_cache_stats().hit_ratio() * 100.0),
            if correct {
                "correct".to_owned()
            } else {
                "WRONG".to_owned()
            },
        ]);
    }

    println!("{rows}x{cols} matrix-vector product on {workers} workers:");
    println!("{table}");
    println!("the matrix streams once per worker slice; the input vector is");
    println!("read-only shared and caches everywhere after the first row — the");
    println!("traffic profile the paper's assumptions (Section 2) describe.");
}
