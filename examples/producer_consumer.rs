//! Cyclic sharing: one producer, many consumers, and the difference
//! between broadcasting events (write-once), broadcasting read data
//! (RB), and broadcasting write data too (RWB).
//!
//! Run with `cargo run --example producer_consumer`.

use decache::analysis::TextTable;
use decache::bus::BusOpKind;
use decache::core::ProtocolKind;
use decache::machine::MachineBuilder;
use decache::mem::{Addr, AddrRange};
use decache::workloads::ProducerConsumer;

fn main() {
    let buffer = AddrRange::with_len(Addr::new(8), 16);
    let flag = Addr::new(0);

    let mut table = TextTable::new(vec![
        "protocol",
        "bus reads",
        "bus writes",
        "total tx",
        "cycles",
        "broadcast-satisfied",
    ]);

    for kind in ProtocolKind::ALL {
        let pc = ProducerConsumer::new(buffer, flag, 5);
        let mut builder = MachineBuilder::new(kind);
        builder
            .memory_words(64)
            .cache_lines(32)
            .processor(pc.producer());
        for _ in 0..4 {
            builder.processor(pc.consumer());
        }
        let mut machine = builder.build();
        let cycles = machine.run_to_completion(1_000_000);
        let t = machine.traffic();
        table.row(vec![
            kind.to_string(),
            t.count(BusOpKind::Read).to_string(),
            t.count(BusOpKind::Write).to_string(),
            t.total_transactions().to_string(),
            cycles.to_string(),
            machine.stats().broadcast_satisfied.to_string(),
        ]);
    }

    println!("1 producer + 4 consumers, 16-word buffer, 5 rounds:");
    println!("{table}");
    println!("RWB consumers re-read from their own caches after each write broadcast");
    println!("(\"subsequent read references will cause no bus activity\", Section 5).");
}
