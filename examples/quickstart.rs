//! Quickstart: build a four-processor shared-bus machine, run a tiny
//! program under the RB scheme, and inspect what the caches and bus did.
//!
//! Run with `cargo run --example quickstart`.

use decache::core::ProtocolKind;
use decache::machine::{MachineBuilder, Script};
use decache::mem::{Addr, Word};

fn main() {
    // A shared flag written by P0 and read by everyone else.
    let flag = Addr::new(0);

    let mut machine = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(256)
        .cache_lines(64)
        .trace()
        .processor(Script::new().write(flag, Word::new(42)).build())
        .processor(Script::new().read(flag).read(flag).build())
        .processor(Script::new().read(flag).read(flag).build())
        .processor(Script::new().read(flag).read(flag).build())
        .build();

    let cycles = machine.run_to_completion(10_000);

    println!(
        "ran {cycles} bus cycles under {}",
        machine.protocol().name()
    );
    println!("memory[flag] = {}", machine.memory().peek(flag).unwrap());
    println!("per-address snapshot: {}", machine.snapshot(flag));
    println!("bus traffic: {}", machine.traffic());
    println!("machine stats: {}", machine.stats());
    println!();
    println!("event trace:");
    for event in machine.trace() {
        println!("  {event}");
    }
    println!();
    println!(
        "note the broadcast: one bus read filled every invalidated cache \
         (broadcast-satisfied = {}), the paper's key mechanism.",
        machine.stats().broadcast_satisfied
    );
}
