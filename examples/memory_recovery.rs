//! Memory reliability through cache replication — the paper's Section 8
//! future-work idea, demonstrated: corrupt a memory word, then recover
//! it from the replicated copies the coherence protocol left in the
//! caches. RWB's write broadcasting keeps more replicas alive than RB.
//!
//! Run with `cargo run --example memory_recovery`.

use decache::core::ProtocolKind;
use decache::machine::{MachineBuilder, Script};
use decache::mem::{Addr, Word};

fn main() {
    let x = Addr::new(4);

    for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        // Three readers share a value; the writer then updates it once.
        let mut machine = MachineBuilder::new(kind)
            .memory_words(64)
            .processor(Script::new().read(x).read(x).build())
            .processor(Script::new().read(x).read(x).build())
            .processor(Script::new().read(x).read(x).build())
            .processor(Script::new().read(x).write(x, Word::new(1234)).build())
            .build();
        machine.run_to_completion(10_000);

        println!("{}:", machine.protocol().name());
        println!("  snapshot after the write: {}", machine.snapshot(x));
        println!("  usable replicas: {}", machine.replica_count(x));

        // A cosmic ray hits the memory array.
        machine
            .corrupt_memory(x, Word::new(0xDEAD))
            .expect("x is in range");
        println!(
            "  memory corrupted to {}",
            machine.memory().peek(x).unwrap()
        );

        match machine.recover_memory(x) {
            Ok(recovered) => println!("  recovered {recovered} from the caches"),
            Err(e) => println!("  unrecoverable: {e}"),
        }
        assert_eq!(machine.memory().peek(x).unwrap(), Word::new(1234));
        println!();
    }

    println!("RWB keeps every reader's copy alive through its write broadcast");
    println!("(\"a higher probability that some cache contains a correct copy\",");
    println!("Section 5), so it tolerates more simultaneous faults than RB.");
}
