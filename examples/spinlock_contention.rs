//! Spinlock hot spots: measure what Test-and-Set does to the shared bus
//! versus the paper's Test-and-Test-and-Set, under RB and RWB.
//!
//! Run with `cargo run --example spinlock_contention`.

use decache::analysis::TextTable;
use decache::core::ProtocolKind;
use decache::sync::{ContentionExperiment, Primitive, SyncScenario};

fn main() {
    // First, the paper's own illustration: the Figure 6-2 state table.
    let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet).run();
    println!("Figure 6-2 (TTS on RB), regenerated:");
    println!("{}", report.render());

    // Then the quantitative version: 12 processors fighting for one lock.
    let mut table = TextTable::new(vec![
        "protocol",
        "primitive",
        "cycles",
        "bus transactions",
        "failed TS",
    ]);
    for protocol in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        for primitive in [Primitive::TestAndSet, Primitive::TestAndTestAndSet] {
            let r = ContentionExperiment::new(protocol, primitive, 12)
                .rounds(3)
                .critical_refs(12)
                .run();
            table.row(vec![
                protocol.to_string(),
                primitive.to_string(),
                r.cycles.to_string(),
                r.bus_transactions.to_string(),
                r.failed_ts.to_string(),
            ]);
        }
    }
    println!("12 processors, 3 acquisitions each, 12-reference critical sections:");
    println!("{table}");
    println!("TTS spins in the cache; TS burns a locked bus read per failed attempt.");
}
