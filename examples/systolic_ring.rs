//! A systolic ring pipeline (the workload family of the paper's
//! companion report [RUD84]): each stage spins — in its cache — on its
//! input cell, transforms the value, and forwards it to the next stage.
//!
//! Run with `cargo run --example systolic_ring`.

use decache::analysis::TextTable;
use decache::core::ProtocolKind;
use decache::machine::MachineBuilder;
use decache::mem::Addr;
use decache::workloads::SystolicStage;

fn main() {
    let stages = 6;
    let rounds = 8;

    let mut table = TextTable::new(vec![
        "protocol",
        "cycles",
        "bus reads",
        "bus writes",
        "total tx",
        "refs (spins incl.)",
    ]);
    for kind in ProtocolKind::ALL {
        let base = Addr::new(0);
        let mut machine = MachineBuilder::new(kind)
            .memory_words(64)
            .cache_lines(32)
            .processors(stages, |pe| {
                Box::new(SystolicStage::new(base, pe, stages, rounds))
            })
            .build();
        let cycles = machine.run_to_completion(10_000_000);
        let t = machine.traffic();
        table.row(vec![
            kind.to_string(),
            cycles.to_string(),
            t.total_reads().to_string(),
            t.total_writes().to_string(),
            t.total_transactions().to_string(),
            machine.total_cache_stats().total_references().to_string(),
        ]);
    }

    println!("{stages}-stage systolic ring, {rounds} circulations:");
    println!("{table}");
    println!("each stage's wait-spin hits in its own cache; the forwarding writes");
    println!("are the cyclic write-then-read pattern Section 5 optimizes, so RWB");
    println!("moves the pipeline with the fewest bus reads.");
}
