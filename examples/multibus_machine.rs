//! The Figure 7-1 machine: split the caches and memory over multiple
//! interleaved shared buses and watch the per-bus load divide.
//!
//! Run with `cargo run --example multibus_machine`.

use decache::analysis::{MultibusExperiment, SbbModel};
use decache::core::ProtocolKind;

fn main() {
    // The analytic motivation first: the paper's worked example.
    let model = SbbModel::paper_example();
    println!("analytic bound: {model}");
    for buses in [1u32, 2, 4] {
        println!(
            "  {buses} bus(es): {:.1} MACS per bus required",
            model.per_bus_macs(buses)
        );
    }
    println!();

    // Then the simulation: 16 processors on 1, 2, and 4 buses.
    let rows = MultibusExperiment::new(16)
        .protocol(ProtocolKind::Rwb)
        .run();
    println!("simulated (16 PEs, RWB, LSB-interleaved banks):");
    println!("{}", MultibusExperiment::render(&rows));
    println!("per-bus shares:");
    for r in &rows {
        println!(
            "  {} bus(es): {}",
            r.buses,
            r.shares
                .iter()
                .map(|s| format!("{:.1}%", s * 100.0))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }
}
