//! Seeded randomized tests for the memory substrate.

use decache_mem::{Addr, AddrRange, BankedMemory, Memory, PeId, Word};
use decache_rng::testing::check;

/// A write followed by a read of the same address returns the value
/// written, regardless of any other traffic to other addresses.
#[test]
fn write_then_read_round_trips() {
    check("write_then_read_round_trips", 64, |rng| {
        let size = rng.gen_range(1u64..512);
        let mut mem = Memory::new(size);
        let mut model = vec![Word::ZERO; size as usize];
        for _ in 0..rng.gen_range(1usize..64) {
            let addr = Addr::new(rng.gen_range(0u64..512) % size);
            let word = Word::new(rng.next_u64());
            mem.write(addr, word).unwrap();
            model[addr.index() as usize] = word;
        }
        for i in 0..size {
            assert_eq!(mem.read(Addr::new(i)).unwrap(), model[i as usize]);
        }
    });
}

/// A banked memory is observationally equivalent to a flat memory for
/// any interleaving factor: banking is an implementation detail.
#[test]
fn banked_memory_matches_flat_memory() {
    check("banked_memory_matches_flat_memory", 64, |rng| {
        let bank_bits = rng.gen_range(0u32..4);
        let size = 256u64;
        let mut flat = Memory::new(size);
        let mut banked = BankedMemory::new(size, bank_bits);
        for _ in 0..rng.gen_range(1usize..128) {
            let addr = Addr::new(rng.gen_range(0u64..size));
            if rng.gen_bool(0.5) {
                let w = Word::new(rng.next_u64());
                flat.write(addr, w).unwrap();
                banked.write(addr, w).unwrap();
            } else {
                assert_eq!(flat.read(addr).unwrap(), banked.read(addr).unwrap());
            }
        }
        for i in 0..size {
            assert_eq!(
                flat.peek(Addr::new(i)).unwrap(),
                banked.peek(Addr::new(i)).unwrap()
            );
        }
    });
}

/// Bank traffic partitions total traffic: the per-bank write counters
/// always sum to the number of writes issued.
#[test]
fn bank_stats_partition_traffic() {
    check("bank_stats_partition_traffic", 64, |rng| {
        let bank_bits = rng.gen_range(0u32..3);
        let writes = rng.gen_range(1usize..64);
        let mut banked = BankedMemory::new(64, bank_bits);
        for _ in 0..writes {
            banked
                .write(Addr::new(rng.gen_range(0u64..64)), Word::ONE)
                .unwrap();
        }
        let sum: u64 = (0..banked.bank_count())
            .map(|b| banked.bank_stats(b).writes)
            .sum();
        assert_eq!(sum, writes as u64);
        assert_eq!(banked.total_stats().writes, writes as u64);
    });
}

/// While a word is locked, no other PE can mutate it; after unlock the
/// final value is the unlocking write's value.
#[test]
fn lock_excludes_other_writers() {
    check("lock_excludes_other_writers", 64, |rng| {
        let a = Addr::new(rng.gen_range(0u64..32));
        let unlock_value = rng.next_u64();
        let mut mem = Memory::new(32);
        let holder = PeId::new(100);
        mem.read_with_lock(a, holder).unwrap();
        for _ in 0..rng.gen_range(0usize..8) {
            // Writes and locked reads by anyone else must fail.
            let pe = rng.gen_range(0u16..8);
            assert!(mem.write_checked(a, Word::new(7), PeId::new(pe)).is_err());
            assert!(mem.read_with_lock(a, PeId::new(pe)).is_err());
        }
        mem.write_with_unlock(a, Word::new(unlock_value), holder)
            .unwrap();
        assert_eq!(mem.peek(a).unwrap(), Word::new(unlock_value));
        assert_eq!(mem.lock_holder(a), None);
    });
}

/// Address ranges enumerate exactly their length and agree with
/// `contains`.
#[test]
fn range_iteration_matches_contains() {
    check("range_iteration_matches_contains", 64, |rng| {
        let start = rng.gen_range(0u64..1000);
        let len = rng.gen_range(0u64..100);
        let range = AddrRange::with_len(Addr::new(start), len);
        let members: Vec<Addr> = range.iter().collect();
        assert_eq!(members.len() as u64, len);
        for a in &members {
            assert!(range.contains(*a));
        }
        assert!(!range.contains(Addr::new(start + len)));
    });
}

/// Bank selection and within-bank index reconstruct the address.
#[test]
fn bank_split_reconstructs_address() {
    check("bank_split_reconstructs_address", 64, |rng| {
        let raw = rng.gen_range(0u64..1_000_000);
        let bank_bits = rng.gen_range(0u32..6);
        let addr = Addr::new(raw);
        let bank = addr.bank_of(bank_bits) as u64;
        let local = addr.within_bank(bank_bits).index();
        assert_eq!((local << bank_bits) | bank, raw);
    });
}
