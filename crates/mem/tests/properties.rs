//! Property-based tests for the memory substrate.

use decache_mem::{Addr, AddrRange, BankedMemory, Memory, PeId, Word};
use proptest::prelude::*;

proptest! {
    /// A write followed by a read of the same address returns the value
    /// written, regardless of any other traffic to other addresses.
    #[test]
    fn write_then_read_round_trips(
        size in 1u64..512,
        ops in prop::collection::vec((0u64..512, any::<u64>()), 1..64),
    ) {
        let mut mem = Memory::new(size);
        let mut model = vec![Word::ZERO; size as usize];
        for (raw_addr, value) in ops {
            let addr = Addr::new(raw_addr % size);
            let word = Word::new(value);
            mem.write(addr, word).unwrap();
            model[addr.index() as usize] = word;
        }
        for i in 0..size {
            prop_assert_eq!(mem.read(Addr::new(i)).unwrap(), model[i as usize]);
        }
    }

    /// A banked memory is observationally equivalent to a flat memory for
    /// any interleaving factor: banking is an implementation detail.
    #[test]
    fn banked_memory_matches_flat_memory(
        bank_bits in 0u32..4,
        ops in prop::collection::vec((0u64..256, any::<u64>(), any::<bool>()), 1..128),
    ) {
        let size = 256u64;
        let mut flat = Memory::new(size);
        let mut banked = BankedMemory::new(size, bank_bits);
        for (raw_addr, value, is_write) in ops {
            let addr = Addr::new(raw_addr % size);
            if is_write {
                let w = Word::new(value);
                flat.write(addr, w).unwrap();
                banked.write(addr, w).unwrap();
            } else {
                prop_assert_eq!(flat.read(addr).unwrap(), banked.read(addr).unwrap());
            }
        }
        for i in 0..size {
            prop_assert_eq!(flat.peek(Addr::new(i)).unwrap(), banked.peek(Addr::new(i)).unwrap());
        }
    }

    /// Bank traffic partitions total traffic: the per-bank write counters
    /// always sum to the number of writes issued.
    #[test]
    fn bank_stats_partition_traffic(
        bank_bits in 0u32..3,
        addrs in prop::collection::vec(0u64..64, 1..64),
    ) {
        let mut banked = BankedMemory::new(64, bank_bits);
        for raw in &addrs {
            banked.write(Addr::new(*raw), Word::ONE).unwrap();
        }
        let sum: u64 = (0..banked.bank_count())
            .map(|b| banked.bank_stats(b).writes)
            .sum();
        prop_assert_eq!(sum, addrs.len() as u64);
        prop_assert_eq!(banked.total_stats().writes, addrs.len() as u64);
    }

    /// While a word is locked, no other PE can mutate it; after unlock the
    /// final value is the unlocking write's value.
    #[test]
    fn lock_excludes_other_writers(
        addr in 0u64..32,
        intruders in prop::collection::vec(0u16..8, 0..8),
        unlock_value in any::<u64>(),
    ) {
        let mut mem = Memory::new(32);
        let a = Addr::new(addr);
        let holder = PeId::new(100);
        mem.read_with_lock(a, holder).unwrap();
        for pe in intruders {
            // Writes and locked reads by anyone else must fail.
            prop_assert!(mem.write_checked(a, Word::new(7), PeId::new(pe)).is_err());
            prop_assert!(mem.read_with_lock(a, PeId::new(pe)).is_err());
        }
        mem.write_with_unlock(a, Word::new(unlock_value), holder).unwrap();
        prop_assert_eq!(mem.peek(a).unwrap(), Word::new(unlock_value));
        prop_assert_eq!(mem.lock_holder(a), None);
    }

    /// Address ranges enumerate exactly their length and agree with
    /// `contains`.
    #[test]
    fn range_iteration_matches_contains(start in 0u64..1000, len in 0u64..100) {
        let range = AddrRange::with_len(Addr::new(start), len);
        let members: Vec<Addr> = range.iter().collect();
        prop_assert_eq!(members.len() as u64, len);
        for a in &members {
            prop_assert!(range.contains(*a));
        }
        prop_assert!(!range.contains(Addr::new(start + len)));
    }

    /// Bank selection and within-bank index reconstruct the address.
    #[test]
    fn bank_split_reconstructs_address(raw in 0u64..1_000_000, bank_bits in 0u32..6) {
        let addr = Addr::new(raw);
        let bank = addr.bank_of(bank_bits) as u64;
        let local = addr.within_bank(bank_bits).index();
        prop_assert_eq!((local << bank_bits) | bank, raw);
    }
}
