//! Word-granular physical addresses.

use std::fmt;
use std::ops::Range;

/// A word-granular physical address in the shared memory.
///
/// The paper treats "address", "variable", and "data item" interchangeably
/// (Section 3, footnote 5): each refers to a single word of shared memory,
/// because the cache block size is one word.
///
/// # Examples
///
/// ```
/// use decache_mem::Addr;
/// let a = Addr::new(10);
/// assert_eq!(a.offset(2), Addr::new(12));
/// // Bank selection uses the least significant bits (Figure 7-1).
/// assert_eq!(Addr::new(5).bank_of(2), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw word index.
    pub const fn new(index: u64) -> Self {
        Addr(index)
    }

    /// Returns the raw word index of this address.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the address displaced by `delta` words.
    #[must_use]
    pub const fn offset(self, delta: u64) -> Addr {
        Addr(self.0 + delta)
    }

    /// Selects the memory bank for a machine with `2^bank_bits` interleaved
    /// banks, using the least significant address bits.
    ///
    /// This is the division rule of the paper's multi-bus configuration:
    /// "the private caches and the shared memory are divided into two memory
    /// banks using the least significant address bit" (Section 7).
    pub const fn bank_of(self, bank_bits: u32) -> usize {
        (self.0 & ((1 << bank_bits) - 1)) as usize
    }

    /// Returns the address as seen *within* its bank: the word index with
    /// the bank-selection bits stripped.
    pub const fn within_bank(self, bank_bits: u32) -> Addr {
        Addr(self.0 >> bank_bits)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(index: u64) -> Self {
        Addr(index)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

/// A half-open range of addresses `[start, end)`, useful for laying out
/// regions (code, private data, shared data) in workload generators.
///
/// # Examples
///
/// ```
/// use decache_mem::{Addr, AddrRange};
/// let region = AddrRange::new(Addr::new(100), Addr::new(104));
/// assert_eq!(region.len(), 4);
/// assert!(region.contains(Addr::new(103)));
/// assert!(!region.contains(Addr::new(104)));
/// let all: Vec<_> = region.iter().collect();
/// assert_eq!(all.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    start: Addr,
    end: Addr,
}

impl AddrRange {
    /// Creates the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Addr, end: Addr) -> Self {
        assert!(
            start <= end,
            "address range start {start} must not exceed end {end}"
        );
        AddrRange { start, end }
    }

    /// Creates a range of `len` words starting at `start`.
    pub fn with_len(start: Addr, len: u64) -> Self {
        AddrRange::new(start, start.offset(len))
    }

    /// Returns the first address of the range.
    pub const fn start(self) -> Addr {
        self.start
    }

    /// Returns the first address past the end of the range.
    pub const fn end(self) -> Addr {
        self.end
    }

    /// Returns the number of words in the range.
    pub const fn len(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Returns `true` if the range contains no addresses.
    pub const fn is_empty(self) -> bool {
        self.start.0 == self.end.0
    }

    /// Returns `true` if `addr` falls inside the range.
    pub const fn contains(self, addr: Addr) -> bool {
        self.start.0 <= addr.0 && addr.0 < self.end.0
    }

    /// Returns the `i`-th address of the range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn nth(self, i: u64) -> Addr {
        assert!(i < self.len(), "index {i} out of range of {self:?}");
        self.start.offset(i)
    }

    /// Iterates over every address in the range, in increasing order.
    pub fn iter(self) -> Iter {
        Iter {
            inner: self.start.0..self.end.0,
        }
    }
}

impl IntoIterator for AddrRange {
    type Item = Addr;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the addresses of an [`AddrRange`], produced by
/// [`AddrRange::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    inner: Range<u64>,
}

impl Iterator for Iter {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        self.inner.next().map(Addr::new)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_selection_uses_low_bits() {
        // One bank bit: even addresses to bank 0, odd to bank 1.
        assert_eq!(Addr::new(4).bank_of(1), 0);
        assert_eq!(Addr::new(5).bank_of(1), 1);
        // Two bank bits: four-way interleave.
        assert_eq!(Addr::new(6).bank_of(2), 2);
        assert_eq!(Addr::new(7).bank_of(2), 3);
        // Zero bank bits: single bus, everything in bank 0.
        assert_eq!(Addr::new(1234).bank_of(0), 0);
    }

    #[test]
    fn within_bank_strips_selection_bits() {
        assert_eq!(Addr::new(6).within_bank(1), Addr::new(3));
        assert_eq!(Addr::new(7).within_bank(2), Addr::new(1));
    }

    #[test]
    fn range_membership_and_len() {
        let r = AddrRange::with_len(Addr::new(8), 4);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(Addr::new(8)));
        assert!(r.contains(Addr::new(11)));
        assert!(!r.contains(Addr::new(12)));
        assert!(!r.contains(Addr::new(7)));
    }

    #[test]
    fn empty_range() {
        let r = AddrRange::new(Addr::new(5), Addr::new(5));
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_range_panics() {
        let _ = AddrRange::new(Addr::new(6), Addr::new(5));
    }

    #[test]
    fn nth_and_iter_agree() {
        let r = AddrRange::with_len(Addr::new(100), 5);
        let collected: Vec<_> = r.iter().collect();
        for i in 0..5 {
            assert_eq!(collected[i as usize], r.nth(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_past_end_panics() {
        AddrRange::with_len(Addr::new(0), 3).nth(3);
    }

    #[test]
    fn iterator_is_exact_size() {
        let r = AddrRange::with_len(Addr::new(0), 10);
        let it = r.iter();
        assert_eq!(it.len(), 10);
    }
}
