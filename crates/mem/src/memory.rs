//! The simulated shared main memory.

use crate::{Addr, MemError, PeId, Word};
use std::collections::{HashMap, HashSet};

/// Access counters maintained by a [`Memory`].
///
/// These feed the bus-bandwidth analysis of Section 7: every memory access
/// corresponds to a bus cycle reaching the memory module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of words read from memory.
    pub reads: u64,
    /// Number of words written to memory.
    pub writes: u64,
    /// Number of locked reads (the first half of read-modify-write cycles).
    pub locked_reads: u64,
    /// Number of writes rejected because the target word was locked.
    pub rejected_writes: u64,
}

impl MemoryStats {
    /// Total number of accesses that successfully touched the memory array.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes + self.locked_reads
    }
}

/// A word-addressed shared memory module with per-word lock support.
///
/// Words are zero-initialized, matching the paper's proof sketch where the
/// memory initially holds the only correct value of every address.
///
/// Locking models the `read-with-lock` / `write-with-unlock` bus cycle pair
/// used to make Test-and-Set indivisible (Section 3 and Section 6). A word
/// locked by PE *i* rejects writes and locked reads from every other PE
/// until PE *i* performs the unlocking write.
///
/// # Examples
///
/// ```
/// use decache_mem::{Addr, Memory, PeId, Word};
/// let mut mem = Memory::new(16);
/// let a = Addr::new(3);
/// mem.write(a, Word::new(5)).unwrap();
///
/// let p0 = PeId::new(0);
/// let p1 = PeId::new(1);
/// mem.read_with_lock(a, p0).unwrap();
/// // While locked by P0, writes from P1 fail:
/// assert!(mem.write_checked(a, Word::new(9), p1).is_err());
/// mem.write_with_unlock(a, Word::new(6), p0).unwrap();
/// assert_eq!(mem.read(a).unwrap(), Word::new(6));
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<Word>,
    locks: HashMap<u64, PeId>,
    /// Addresses whose stored word no longer matches its parity check —
    /// the word-granularity error-detection model of the Section 8
    /// reliability extension. Any write to a word restores its parity
    /// (the new value is stored with a freshly computed check bit).
    bad_parity: HashSet<u64>,
    stats: MemoryStats,
}

impl Memory {
    /// Creates a zero-filled memory of `size` words.
    pub fn new(size: u64) -> Self {
        Memory {
            words: vec![Word::ZERO; usize::try_from(size).expect("memory size fits in usize")],
            locks: HashMap::new(),
            bad_parity: HashSet::new(),
            stats: MemoryStats::default(),
        }
    }

    /// Returns the size of the memory in words.
    pub fn size(&self) -> u64 {
        self.words.len() as u64
    }

    /// Returns the accumulated access statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets the access statistics to zero without touching the contents.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }

    fn slot(&self, addr: Addr) -> Result<usize, MemError> {
        let i = addr.index();
        if i < self.size() {
            Ok(i as usize)
        } else {
            Err(MemError::OutOfBounds {
                addr,
                size: self.size(),
            })
        }
    }

    /// Reads the word at `addr`.
    ///
    /// Plain reads always succeed even on locked words: the lock only
    /// guards *mutation* between the two halves of a read-modify-write.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory size.
    pub fn read(&mut self, addr: Addr) -> Result<Word, MemError> {
        let slot = self.slot(addr)?;
        self.stats.reads += 1;
        Ok(self.words[slot])
    }

    /// Reads the word at `addr` without recording statistics or requiring
    /// mutable access; intended for oracles and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory size.
    pub fn peek(&self, addr: Addr) -> Result<Word, MemError> {
        let slot = self.slot(addr)?;
        Ok(self.words[slot])
    }

    /// Writes `value` at `addr` unconditionally (no lock check).
    ///
    /// This is the path used by cache write-backs and by the special
    /// "memory as cache 0" transitions in the product-machine model, where
    /// lock semantics are handled at the bus level.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory size.
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let slot = self.slot(addr)?;
        self.stats.writes += 1;
        self.words[slot] = value;
        if !self.bad_parity.is_empty() {
            self.bad_parity.remove(&addr.index());
        }
        Ok(())
    }

    /// Writes `value` at `addr` on behalf of `writer`, failing if the word
    /// is locked by a different processing element.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Locked`] if another PE holds the lock, and
    /// [`MemError::OutOfBounds`] if `addr` exceeds the memory size. On a
    /// lock rejection the word is unchanged and the rejection is counted in
    /// [`MemoryStats::rejected_writes`].
    pub fn write_checked(&mut self, addr: Addr, value: Word, writer: PeId) -> Result<(), MemError> {
        let slot = self.slot(addr)?;
        if !self.locks.is_empty() {
            if let Some(&holder) = self.locks.get(&addr.index()) {
                if holder != writer {
                    self.stats.rejected_writes += 1;
                    return Err(MemError::Locked { addr, holder });
                }
            }
        }
        self.stats.writes += 1;
        self.words[slot] = value;
        if !self.bad_parity.is_empty() {
            self.bad_parity.remove(&addr.index());
        }
        Ok(())
    }

    /// Performs the first half of a read-modify-write: reads the word and
    /// locks it for `locker`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Locked`] if the word is already locked by a
    /// different PE, and [`MemError::OutOfBounds`] for bad addresses.
    pub fn read_with_lock(&mut self, addr: Addr, locker: PeId) -> Result<Word, MemError> {
        let slot = self.slot(addr)?;
        if let Some(&holder) = self.locks.get(&addr.index()) {
            if holder != locker {
                return Err(MemError::Locked { addr, holder });
            }
        }
        self.locks.insert(addr.index(), locker);
        self.stats.locked_reads += 1;
        Ok(self.words[slot])
    }

    /// Performs the second half of a read-modify-write: writes the word and
    /// releases the lock held by `unlocker`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotLockHolder`] if `unlocker` does not hold the
    /// lock, and [`MemError::OutOfBounds`] for bad addresses.
    pub fn write_with_unlock(
        &mut self,
        addr: Addr,
        value: Word,
        unlocker: PeId,
    ) -> Result<(), MemError> {
        let slot = self.slot(addr)?;
        match self.locks.get(&addr.index()) {
            Some(&holder) if holder == unlocker => {
                self.locks.remove(&addr.index());
                self.stats.writes += 1;
                self.words[slot] = value;
                self.bad_parity.remove(&addr.index());
                Ok(())
            }
            _ => Err(MemError::NotLockHolder {
                addr,
                attempted_by: unlocker,
            }),
        }
    }

    /// Releases the lock on `addr` without writing, as a failing
    /// Test-and-Set does after its locked read observed a non-zero value
    /// (the paper treats a failing TS "as a non-cachable read").
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotLockHolder`] if `unlocker` does not hold the
    /// lock, and [`MemError::OutOfBounds`] for bad addresses.
    pub fn release_lock(&mut self, addr: Addr, unlocker: PeId) -> Result<(), MemError> {
        self.slot(addr)?;
        match self.locks.get(&addr.index()) {
            Some(&holder) if holder == unlocker => {
                self.locks.remove(&addr.index());
                Ok(())
            }
            _ => Err(MemError::NotLockHolder {
                addr,
                attempted_by: unlocker,
            }),
        }
    }

    /// Returns the PE currently holding the lock on `addr`, if any.
    pub fn lock_holder(&self, addr: Addr) -> Option<PeId> {
        self.locks.get(&addr.index()).copied()
    }

    /// Forcibly releases every lock held by `holder` and returns the
    /// addresses released, in ascending order.
    ///
    /// Used by PE fail-stop handling: a dead PE mid-Test-and-Set would
    /// otherwise leave its lock word locked forever and deadlock every
    /// surviving contender.
    pub fn release_locks_held_by(&mut self, holder: PeId) -> Vec<Addr> {
        let mut released: Vec<u64> = self
            .locks
            .iter()
            .filter(|&(_, &h)| h == holder)
            .map(|(&addr, _)| addr)
            .collect();
        released.sort_unstable();
        for addr in &released {
            self.locks.remove(addr);
        }
        released.into_iter().map(Addr::new).collect()
    }

    /// Marks the word at `addr` as failing its parity check without
    /// changing the stored value — models detection-only corruption
    /// (e.g. a fault injected *after* the value was stored). Cleared by
    /// any subsequent write to the word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory
    /// size.
    pub fn mark_corrupt(&mut self, addr: Addr) -> Result<(), MemError> {
        self.slot(addr)?;
        self.bad_parity.insert(addr.index());
        Ok(())
    }

    /// Overwrites the word at `addr` with `garbage` and marks its parity
    /// bad, bypassing access statistics — the fault-injection primitive
    /// (a bit flip corrupts the stored word *and* breaks its check bit).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory
    /// size.
    pub fn poke_corrupt(&mut self, addr: Addr, garbage: Word) -> Result<(), MemError> {
        let slot = self.slot(addr)?;
        self.words[slot] = garbage;
        self.bad_parity.insert(addr.index());
        Ok(())
    }

    /// Repairs the word at `addr`: stores `value` and restores its
    /// parity, without counting an access — the memory controller's
    /// internal scrub path, not a simulated bus write.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the memory
    /// size.
    pub fn repair(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let slot = self.slot(addr)?;
        self.words[slot] = value;
        self.bad_parity.remove(&addr.index());
        Ok(())
    }

    /// Clears the parity mark on `addr` without changing the stored
    /// value: the corrupt word is *adopted* as plain data (used after a
    /// failed recovery, so one fault is detected exactly once).
    pub fn clear_corrupt(&mut self, addr: Addr) {
        self.bad_parity.remove(&addr.index());
    }

    /// Returns `true` while the word at `addr` passes its parity check.
    /// Out-of-range addresses report `true` (there is no word to check).
    pub fn parity_ok(&self, addr: Addr) -> bool {
        !self.bad_parity.contains(&addr.index())
    }

    /// The number of words currently failing their parity check.
    pub fn corrupt_words(&self) -> usize {
        self.bad_parity.len()
    }

    /// Exports the complete module state for a checkpoint, bypassing
    /// access statistics: `(words, locks sorted by address, bad-parity
    /// addresses sorted, stats)`. The sorted orders make the export
    /// deterministic regardless of hash-map iteration order.
    #[allow(clippy::type_complexity)]
    pub fn checkpoint_state(&self) -> (Vec<Word>, Vec<(u64, PeId)>, Vec<u64>, MemoryStats) {
        let mut locks: Vec<(u64, PeId)> = self.locks.iter().map(|(&a, &p)| (a, p)).collect();
        locks.sort_unstable_by_key(|&(a, _)| a);
        let mut bad: Vec<u64> = self.bad_parity.iter().copied().collect();
        bad.sort_unstable();
        (self.words.clone(), locks, bad, self.stats)
    }

    /// Overwrites the complete module state from a checkpoint produced
    /// by [`Memory::checkpoint_state`], without counting accesses or
    /// touching parity (the restored `bad_parity` set *is* the parity
    /// state). `words` must match the memory size.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `words` has the wrong
    /// length, or if any lock or parity address exceeds the size.
    pub fn restore_state(
        &mut self,
        words: Vec<Word>,
        locks: Vec<(u64, PeId)>,
        bad_parity: Vec<u64>,
        stats: MemoryStats,
    ) -> Result<(), MemError> {
        let size = self.size();
        if words.len() as u64 != size {
            return Err(MemError::OutOfBounds {
                addr: Addr::new(words.len() as u64),
                size,
            });
        }
        for &(addr, _) in &locks {
            self.slot(Addr::new(addr))?;
        }
        for &addr in &bad_parity {
            self.slot(Addr::new(addr))?;
        }
        self.words = words;
        self.locks = locks.into_iter().collect();
        self.bad_parity = bad_parity.into_iter().collect();
        self.stats = stats;
        Ok(())
    }

    /// Fills the range starting at `start` with the given words; convenient
    /// for initializing workloads.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the slice does not fit.
    pub fn load(&mut self, start: Addr, values: &[Word]) -> Result<(), MemError> {
        for (i, &v) in values.iter().enumerate() {
            self.write(start.offset(i as u64), v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_starts_zeroed() {
        let mut mem = Memory::new(8);
        for i in 0..8 {
            assert_eq!(mem.read(Addr::new(i)).unwrap(), Word::ZERO);
        }
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem = Memory::new(8);
        mem.write(Addr::new(2), Word::new(77)).unwrap();
        assert_eq!(mem.read(Addr::new(2)).unwrap(), Word::new(77));
        assert_eq!(mem.peek(Addr::new(2)).unwrap(), Word::new(77));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut mem = Memory::new(4);
        assert!(matches!(
            mem.read(Addr::new(4)),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.write(Addr::new(9), Word::ONE),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn locked_word_rejects_foreign_writes() {
        let mut mem = Memory::new(4);
        let a = Addr::new(1);
        mem.read_with_lock(a, PeId::new(0)).unwrap();
        let err = mem.write_checked(a, Word::ONE, PeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            MemError::Locked {
                addr: a,
                holder: PeId::new(0)
            }
        );
        assert_eq!(mem.stats().rejected_writes, 1);
        // The holder itself may write (e.g. partial update before unlock).
        mem.write_checked(a, Word::ONE, PeId::new(0)).unwrap();
    }

    #[test]
    fn locked_word_rejects_foreign_locked_reads() {
        let mut mem = Memory::new(4);
        let a = Addr::new(1);
        mem.read_with_lock(a, PeId::new(0)).unwrap();
        assert!(mem.read_with_lock(a, PeId::new(1)).is_err());
        // Re-locking by the holder is idempotent.
        assert!(mem.read_with_lock(a, PeId::new(0)).is_ok());
    }

    #[test]
    fn unlock_requires_holder() {
        let mut mem = Memory::new(4);
        let a = Addr::new(0);
        mem.read_with_lock(a, PeId::new(2)).unwrap();
        assert!(mem.write_with_unlock(a, Word::ONE, PeId::new(3)).is_err());
        mem.write_with_unlock(a, Word::ONE, PeId::new(2)).unwrap();
        assert_eq!(mem.lock_holder(a), None);
        assert_eq!(mem.read(a).unwrap(), Word::ONE);
    }

    #[test]
    fn release_lock_without_write_preserves_value() {
        let mut mem = Memory::new(4);
        let a = Addr::new(2);
        mem.write(a, Word::new(9)).unwrap();
        mem.read_with_lock(a, PeId::new(1)).unwrap();
        assert!(mem.release_lock(a, PeId::new(0)).is_err());
        mem.release_lock(a, PeId::new(1)).unwrap();
        assert_eq!(mem.lock_holder(a), None);
        assert_eq!(mem.peek(a).unwrap(), Word::new(9));
        // Releasing again fails: the lock is gone.
        assert!(mem.release_lock(a, PeId::new(1)).is_err());
    }

    #[test]
    fn unlock_without_lock_fails() {
        let mut mem = Memory::new(4);
        assert!(mem
            .write_with_unlock(Addr::new(0), Word::ONE, PeId::new(0))
            .is_err());
    }

    #[test]
    fn plain_reads_ignore_locks() {
        let mut mem = Memory::new(4);
        let a = Addr::new(3);
        mem.write(a, Word::new(9)).unwrap();
        mem.read_with_lock(a, PeId::new(0)).unwrap();
        assert_eq!(mem.read(a).unwrap(), Word::new(9));
    }

    #[test]
    fn stats_account_all_access_kinds() {
        let mut mem = Memory::new(4);
        let a = Addr::new(0);
        mem.read(a).unwrap();
        mem.write(a, Word::ONE).unwrap();
        mem.read_with_lock(a, PeId::new(0)).unwrap();
        mem.write_with_unlock(a, Word::ZERO, PeId::new(0)).unwrap();
        let s = mem.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.locked_reads, 1);
        assert_eq!(s.total_accesses(), 4);
        mem.reset_stats();
        assert_eq!(mem.stats(), MemoryStats::default());
    }

    #[test]
    fn parity_marks_survive_reads_and_clear_on_any_write() {
        let mut mem = Memory::new(8);
        let a = Addr::new(3);
        assert!(mem.parity_ok(a));
        mem.poke_corrupt(a, Word::new(0xBAD)).unwrap();
        assert!(!mem.parity_ok(a));
        assert_eq!(mem.corrupt_words(), 1);
        // Reads observe the corrupt value but do not heal it.
        assert_eq!(mem.read(a).unwrap(), Word::new(0xBAD));
        assert!(!mem.parity_ok(a));
        // Any write restores parity.
        mem.write(a, Word::new(7)).unwrap();
        assert!(mem.parity_ok(a));
        assert_eq!(mem.corrupt_words(), 0);
        // mark_corrupt flags without changing the value.
        mem.mark_corrupt(a).unwrap();
        assert_eq!(mem.peek(a).unwrap(), Word::new(7));
        assert!(!mem.parity_ok(a));
        mem.write_checked(a, Word::new(8), PeId::new(0)).unwrap();
        assert!(mem.parity_ok(a));
        assert!(mem.mark_corrupt(Addr::new(99)).is_err());
        assert!(mem.poke_corrupt(Addr::new(99), Word::ONE).is_err());
    }

    #[test]
    fn unlocking_write_restores_parity() {
        let mut mem = Memory::new(4);
        let a = Addr::new(1);
        mem.read_with_lock(a, PeId::new(0)).unwrap();
        mem.mark_corrupt(a).unwrap();
        mem.write_with_unlock(a, Word::ONE, PeId::new(0)).unwrap();
        assert!(mem.parity_ok(a));
    }

    #[test]
    fn release_locks_held_by_frees_only_that_pe() {
        let mut mem = Memory::new(8);
        mem.read_with_lock(Addr::new(5), PeId::new(1)).unwrap();
        mem.read_with_lock(Addr::new(2), PeId::new(1)).unwrap();
        mem.read_with_lock(Addr::new(3), PeId::new(0)).unwrap();
        let released = mem.release_locks_held_by(PeId::new(1));
        assert_eq!(released, vec![Addr::new(2), Addr::new(5)]);
        assert_eq!(mem.lock_holder(Addr::new(2)), None);
        assert_eq!(mem.lock_holder(Addr::new(5)), None);
        assert_eq!(mem.lock_holder(Addr::new(3)), Some(PeId::new(0)));
        assert!(mem.release_locks_held_by(PeId::new(1)).is_empty());
    }

    #[test]
    fn checkpoint_state_round_trip() {
        let mut mem = Memory::new(8);
        mem.write(Addr::new(1), Word::new(11)).unwrap();
        mem.read_with_lock(Addr::new(5), PeId::new(2)).unwrap();
        mem.poke_corrupt(Addr::new(3), Word::new(0xBAD)).unwrap();
        let (words, locks, bad, stats) = mem.checkpoint_state();

        let mut copy = Memory::new(8);
        copy.restore_state(words, locks, bad, stats).unwrap();
        assert_eq!(copy.peek(Addr::new(1)).unwrap(), Word::new(11));
        assert_eq!(copy.lock_holder(Addr::new(5)), Some(PeId::new(2)));
        assert!(!copy.parity_ok(Addr::new(3)));
        assert_eq!(copy.stats(), mem.stats());

        // Wrong geometry is rejected without mutating anything.
        let mut small = Memory::new(4);
        let (words, locks, bad, stats) = mem.checkpoint_state();
        assert!(small.restore_state(words, locks, bad, stats).is_err());
        assert_eq!(small.peek(Addr::new(1)).unwrap(), Word::ZERO);
    }

    #[test]
    fn load_fills_consecutive_words() {
        let mut mem = Memory::new(8);
        mem.load(Addr::new(2), &[Word::new(1), Word::new(2), Word::new(3)])
            .unwrap();
        assert_eq!(mem.peek(Addr::new(2)).unwrap(), Word::new(1));
        assert_eq!(mem.peek(Addr::new(4)).unwrap(), Word::new(3));
    }
}
