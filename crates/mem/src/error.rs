//! Error type for memory operations.

use crate::{Addr, PeId};
use std::error::Error;
use std::fmt;

/// An error produced by a simulated memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The address lies outside the configured memory size.
    OutOfBounds {
        /// The offending address.
        addr: Addr,
        /// The memory size in words.
        size: u64,
    },
    /// A write (or a second lock) hit an address currently locked by
    /// another processing element's read-modify-write cycle.
    ///
    /// The paper: "Any bus writes before the unlock will fail" (Section 3).
    Locked {
        /// The locked address.
        addr: Addr,
        /// The processing element holding the lock.
        holder: PeId,
    },
    /// An unlock was attempted by a processing element that does not hold
    /// the lock on the address.
    NotLockHolder {
        /// The address in question.
        addr: Addr,
        /// The processing element that attempted the unlock.
        attempted_by: PeId,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "address {addr} out of bounds for memory of {size} words")
            }
            MemError::Locked { addr, holder } => {
                write!(f, "address {addr} is locked by {holder}")
            }
            MemError::NotLockHolder { addr, attempted_by } => {
                write!(f, "{attempted_by} does not hold the lock on {addr}")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MemError::OutOfBounds {
            addr: Addr::new(10),
            size: 8,
        };
        assert_eq!(
            e.to_string(),
            "address @10 out of bounds for memory of 8 words"
        );

        let e = MemError::Locked {
            addr: Addr::new(1),
            holder: PeId::new(2),
        };
        assert_eq!(e.to_string(), "address @1 is locked by P2");

        let e = MemError::NotLockHolder {
            addr: Addr::new(1),
            attempted_by: PeId::new(3),
        };
        assert_eq!(e.to_string(), "P3 does not hold the lock on @1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
