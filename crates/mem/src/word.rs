//! The one-word unit of data transfer.

use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Sub};

/// A single machine word, the unit of both caching and bus transfer.
///
/// The paper assumes a direct-mapped cache with a **one-word block size**
/// (Section 2, assumption 7), so a `Word` is the only data payload that ever
/// crosses the bus.
///
/// # Examples
///
/// ```
/// use decache_mem::Word;
/// let w = Word::new(0xdead);
/// assert_eq!(w.value(), 0xdead);
/// assert_eq!(format!("{w:x}"), "dead");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Word(u64);

impl Word {
    /// The all-zero word, used as the initial content of memory and as the
    /// "unlocked" value of synchronization variables.
    pub const ZERO: Word = Word(0);

    /// The word holding the value one, the conventional "locked" value.
    pub const ONE: Word = Word(1);

    /// Creates a word from a raw value.
    pub const fn new(value: u64) -> Self {
        Word(value)
    }

    /// Returns the raw value of the word.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns `true` if the word is zero.
    ///
    /// Zero is the conventional "free" value tested by Test-and-Set and
    /// Test-and-Test-and-Set (Section 6): `If V != 0 Then nil Else ...`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the word incremented by one, wrapping on overflow.
    #[must_use]
    pub const fn wrapping_incr(self) -> Word {
        Word(self.0.wrapping_add(1))
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for Word {
    fn from(value: u64) -> Self {
        Word(value)
    }
}

impl From<Word> for u64 {
    fn from(word: Word) -> Self {
        word.0
    }
}

impl Add for Word {
    type Output = Word;
    fn add(self, rhs: Word) -> Word {
        Word(self.0.wrapping_add(rhs.0))
    }
}

impl Sub for Word {
    type Output = Word;
    fn sub(self, rhs: Word) -> Word {
        Word(self.0.wrapping_sub(rhs.0))
    }
}

impl BitAnd for Word {
    type Output = Word;
    fn bitand(self, rhs: Word) -> Word {
        Word(self.0 & rhs.0)
    }
}

impl BitOr for Word {
    type Output = Word;
    fn bitor(self, rhs: Word) -> Word {
        Word(self.0 | rhs.0)
    }
}

impl BitXor for Word {
    type Output = Word;
    fn bitxor(self, rhs: Word) -> Word {
        Word(self.0 ^ rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_constants() {
        assert!(Word::ZERO.is_zero());
        assert!(!Word::ONE.is_zero());
        assert_eq!(Word::ZERO.wrapping_incr(), Word::ONE);
    }

    #[test]
    fn conversion_round_trip() {
        let w = Word::from(99u64);
        assert_eq!(u64::from(w), 99);
    }

    #[test]
    fn arithmetic_wraps() {
        let max = Word::new(u64::MAX);
        assert_eq!(max.wrapping_incr(), Word::ZERO);
        assert_eq!(max + Word::ONE, Word::ZERO);
        assert_eq!(Word::ZERO - Word::ONE, max);
    }

    #[test]
    fn bitwise_operators() {
        let a = Word::new(0b1100);
        let b = Word::new(0b1010);
        assert_eq!(a & b, Word::new(0b1000));
        assert_eq!(a | b, Word::new(0b1110));
        assert_eq!(a ^ b, Word::new(0b0110));
    }

    #[test]
    fn formatting() {
        let w = Word::new(255);
        assert_eq!(format!("{w}"), "255");
        assert_eq!(format!("{w:x}"), "ff");
        assert_eq!(format!("{w:X}"), "FF");
        assert_eq!(format!("{w:o}"), "377");
        assert_eq!(format!("{w:b}"), "11111111");
    }
}
