//! Memory substrate for the `decache` simulator.
//!
//! This crate provides the fundamental value types shared by every other
//! crate in the workspace — [`Addr`], [`Word`], [`PeId`] — together with the
//! simulated shared memory itself: a flat single-module [`Memory`] and a
//! low-order-bit interleaved [`BankedMemory`] used by the multiple-shared-bus
//! configuration of the paper's Section 7 (Figure 7-1).
//!
//! The paper (Rudolph & Segall, 1984) assumes a word-addressed shared memory
//! with one-word cache blocks, and a `read-with-lock` / `write-with-unlock`
//! pair used to implement indivisible read-modify-write operations such as
//! Test-and-Set. [`Memory`] implements exactly that: while an address is
//! locked by one processing element, writes to it by any other element fail
//! (".. any bus writes before the unlock will fail", Section 3).
//!
//! # Examples
//!
//! ```
//! use decache_mem::{Addr, Memory, PeId, Word};
//!
//! let mut mem = Memory::new(1024);
//! mem.write(Addr::new(4), Word::new(7)).unwrap();
//! assert_eq!(mem.read(Addr::new(4)).unwrap(), Word::new(7));
//!
//! // Read-modify-write: lock, then unlock with the new value.
//! let pe = PeId::new(0);
//! let old = mem.read_with_lock(Addr::new(4), pe).unwrap();
//! assert_eq!(old, Word::new(7));
//! mem.write_with_unlock(Addr::new(4), Word::new(1), pe).unwrap();
//! assert_eq!(mem.read(Addr::new(4)).unwrap(), Word::new(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod bank;
mod error;
mod memory;
mod word;

pub use addr::{Addr, AddrRange};
pub use bank::BankedMemory;
pub use error::MemError;
pub use memory::{Memory, MemoryStats};
pub use word::Word;

use std::fmt;

/// Identifier of a processing element (PE).
///
/// The paper numbers caches `1..N` with the shared memory acting as a
/// special "cache 0" in the consistency proof; we use zero-based ids for
/// processing elements throughout and treat memory separately.
///
/// # Examples
///
/// ```
/// use decache_mem::PeId;
/// let pe = PeId::new(3);
/// assert_eq!(pe.index(), 3);
/// assert_eq!(pe.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(u16);

impl PeId {
    /// Creates a processing-element id from a zero-based index.
    pub const fn new(index: u16) -> Self {
        PeId(index)
    }

    /// Returns the zero-based index of this processing element.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for PeId {
    fn from(index: u16) -> Self {
        PeId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_round_trip() {
        let pe = PeId::new(42);
        assert_eq!(pe.index(), 42);
        assert_eq!(PeId::from(42u16), pe);
    }

    #[test]
    fn pe_id_display() {
        assert_eq!(PeId::new(0).to_string(), "P0");
        assert_eq!(PeId::new(127).to_string(), "P127");
    }

    #[test]
    fn pe_id_ordering_follows_index() {
        assert!(PeId::new(1) < PeId::new(2));
    }
}
