//! Interleaved memory banks for the multiple-shared-bus configuration.

use crate::{Addr, MemError, Memory, MemoryStats, PeId, Word};

/// A shared memory split into `2^bank_bits` banks interleaved on the least
/// significant address bits, as in the paper's Figure 7-1.
///
/// Each bank sits on its own shared bus in the multi-bus machine; the bank
/// for an address is selected by [`Addr::bank_of`], and within a bank the
/// remaining bits index the bank-local word array. "Each part of the
/// divided cache will generate, on average, half of the traffic that would
/// otherwise be produced by an undivided cache" (Section 7) — the
/// per-bank statistics exposed here let experiments check exactly that.
///
/// # Examples
///
/// ```
/// use decache_mem::{Addr, BankedMemory, Word};
/// let mut mem = BankedMemory::new(16, 1); // two banks of 8 words
/// assert_eq!(mem.bank_count(), 2);
/// mem.write(Addr::new(5), Word::new(50)).unwrap(); // odd => bank 1
/// assert_eq!(mem.read(Addr::new(5)).unwrap(), Word::new(50));
/// assert_eq!(mem.bank_stats(1).writes, 1);
/// assert_eq!(mem.bank_stats(0).writes, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BankedMemory {
    banks: Vec<Memory>,
    bank_bits: u32,
    total_size: u64,
}

impl BankedMemory {
    /// Creates a banked memory of `size` total words split into
    /// `2^bank_bits` interleaved banks.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not divisible by the number of banks.
    pub fn new(size: u64, bank_bits: u32) -> Self {
        let banks_n = 1u64 << bank_bits;
        assert!(
            size.is_multiple_of(banks_n),
            "memory size {size} must be divisible by the bank count {banks_n}"
        );
        let per_bank = size / banks_n;
        BankedMemory {
            banks: (0..banks_n).map(|_| Memory::new(per_bank)).collect(),
            bank_bits,
            total_size: size,
        }
    }

    /// Returns the number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Returns the number of bank-selection bits.
    pub fn bank_bits(&self) -> u32 {
        self.bank_bits
    }

    /// Returns the total size across all banks, in words.
    pub fn size(&self) -> u64 {
        self.total_size
    }

    /// Returns the bank index serving `addr`.
    pub fn bank_of(&self, addr: Addr) -> usize {
        addr.bank_of(self.bank_bits)
    }

    fn locate(&self, addr: Addr) -> Result<(usize, Addr), MemError> {
        if addr.index() >= self.total_size {
            return Err(MemError::OutOfBounds {
                addr,
                size: self.total_size,
            });
        }
        Ok((self.bank_of(addr), addr.within_bank(self.bank_bits)))
    }

    /// Reads the word at `addr` from its bank.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the total size.
    pub fn read(&mut self, addr: Addr) -> Result<Word, MemError> {
        let (bank, local) = self.locate(addr)?;
        self.banks[bank].read(local)
    }

    /// Reads without recording statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the total size.
    pub fn peek(&self, addr: Addr) -> Result<Word, MemError> {
        let (bank, local) = self.locate(addr)?;
        self.banks[bank].peek(local)
    }

    /// Writes the word at `addr` into its bank.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the total size.
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let (bank, local) = self.locate(addr)?;
        self.banks[bank].write(local, value)
    }

    /// Locked read routed to the owning bank; see [`Memory::read_with_lock`].
    ///
    /// # Errors
    ///
    /// Propagates the bank's [`MemError`].
    pub fn read_with_lock(&mut self, addr: Addr, locker: PeId) -> Result<Word, MemError> {
        let (bank, local) = self.locate(addr)?;
        self.banks[bank].read_with_lock(local, locker)
    }

    /// Unlocking write routed to the owning bank; see
    /// [`Memory::write_with_unlock`].
    ///
    /// # Errors
    ///
    /// Propagates the bank's [`MemError`].
    pub fn write_with_unlock(
        &mut self,
        addr: Addr,
        value: Word,
        unlocker: PeId,
    ) -> Result<(), MemError> {
        let (bank, local) = self.locate(addr)?;
        self.banks[bank].write_with_unlock(local, value, unlocker)
    }

    /// Returns the access statistics of bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= self.bank_count()`.
    pub fn bank_stats(&self, bank: usize) -> MemoryStats {
        self.banks[bank].stats()
    }

    /// Returns the sum of all banks' statistics.
    pub fn total_stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for b in &self.banks {
            let s = b.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.locked_reads += s.locked_reads;
            total.rejected_writes += s.rejected_writes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bank_behaves_like_memory() {
        let mut banked = BankedMemory::new(8, 0);
        assert_eq!(banked.bank_count(), 1);
        banked.write(Addr::new(7), Word::new(3)).unwrap();
        assert_eq!(banked.read(Addr::new(7)).unwrap(), Word::new(3));
    }

    #[test]
    fn addresses_interleave_across_banks() {
        let mut banked = BankedMemory::new(8, 1);
        for i in 0..8 {
            banked.write(Addr::new(i), Word::new(i * 10)).unwrap();
        }
        for i in 0..8 {
            assert_eq!(banked.read(Addr::new(i)).unwrap(), Word::new(i * 10));
        }
        // Four reads and four writes went to each bank.
        assert_eq!(banked.bank_stats(0).reads, 4);
        assert_eq!(banked.bank_stats(0).writes, 4);
        assert_eq!(banked.bank_stats(1).reads, 4);
        assert_eq!(banked.bank_stats(1).writes, 4);
    }

    #[test]
    fn total_stats_sums_banks() {
        let mut banked = BankedMemory::new(16, 2);
        for i in 0..16 {
            banked.write(Addr::new(i), Word::ONE).unwrap();
        }
        assert_eq!(banked.total_stats().writes, 16);
    }

    #[test]
    fn out_of_bounds_uses_total_size() {
        let mut banked = BankedMemory::new(8, 1);
        let err = banked.read(Addr::new(8)).unwrap_err();
        assert_eq!(
            err,
            MemError::OutOfBounds {
                addr: Addr::new(8),
                size: 8
            }
        );
    }

    #[test]
    fn locks_are_per_bank() {
        let mut banked = BankedMemory::new(8, 1);
        // Lock address 0 (bank 0); address 1 (bank 1) remains free.
        banked.read_with_lock(Addr::new(0), PeId::new(0)).unwrap();
        banked.read_with_lock(Addr::new(1), PeId::new(1)).unwrap();
        banked
            .write_with_unlock(Addr::new(0), Word::ONE, PeId::new(0))
            .unwrap();
        banked
            .write_with_unlock(Addr::new(1), Word::ONE, PeId::new(1))
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_size_panics() {
        let _ = BankedMemory::new(9, 1);
    }
}
