//! Seeded randomized tests for the cache substrate, including a
//! model-based check of the tag store against a reference LRU.

use decache_cache::{AccessKind, CmStarCache, Geometry, RefClass, ReplacementPolicy, TagStore};
use decache_mem::{Addr, Word};
use decache_rng::testing::check;
use std::collections::VecDeque;

/// A reference model of one fully-associative LRU set.
#[derive(Debug, Default)]
struct LruModel {
    // Front = most recently used; (addr, state, data).
    entries: VecDeque<(u64, u8, u64)>,
    capacity: usize,
}

impl LruModel {
    fn new(capacity: usize) -> Self {
        LruModel {
            entries: VecDeque::new(),
            capacity,
        }
    }

    fn get_mut(&mut self, addr: u64) -> Option<(u8, u64)> {
        let pos = self.entries.iter().position(|&(a, _, _)| a == addr)?;
        let entry = self.entries.remove(pos).expect("position exists");
        self.entries.push_front(entry);
        Some((entry.1, entry.2))
    }

    fn insert(&mut self, addr: u64, state: u8, data: u64) -> Option<u64> {
        if let Some(pos) = self.entries.iter().position(|&(a, _, _)| a == addr) {
            self.entries.remove(pos);
            self.entries.push_front((addr, state, data));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop_back().map(|(a, _, _)| a)
        } else {
            None
        };
        self.entries.push_front((addr, state, data));
        evicted
    }

    fn contains(&self, addr: u64) -> bool {
        self.entries.iter().any(|&(a, _, _)| a == addr)
    }
}

/// A one-set LRU tag store agrees with the reference model on every
/// lookup, insertion, and eviction.
#[test]
fn tagstore_matches_lru_model() {
    check("tagstore_matches_lru_model", 64, |rng| {
        let ways = rng.gen_range(1usize..9);
        let ops = rng.gen_range(1usize..120);
        let mut store: TagStore<u8> = TagStore::new(Geometry::new(1, ways, 1));
        let mut model = LruModel::new(ways);
        for _ in 0..ops {
            let addr = rng.gen_range(0u64..32);
            if rng.gen_bool(0.5) {
                let state = rng.gen_range(0u8..4);
                let data = rng.next_u64();
                let evicted = store.insert(Addr::new(addr), state, Word::new(data));
                let model_evicted = model.insert(addr, state, data);
                assert_eq!(evicted.map(|e| e.addr.index()), model_evicted);
            } else {
                let got = store
                    .get_mut(Addr::new(addr))
                    .map(|e| (*e.state, e.data.value()));
                let expected = model.get_mut(addr);
                assert_eq!(got, expected);
            }
            assert_eq!(store.len(), model.entries.len());
        }
        // Final contents agree.
        for a in 0..32u64 {
            assert_eq!(store.contains(Addr::new(a)), model.contains(a));
        }
    });
}

/// Multi-set stores behave as independent per-set LRUs: operations on
/// one set never evict another set's lines.
#[test]
fn sets_are_independent() {
    check("sets_are_independent", 64, |rng| {
        let sets = 1usize << rng.gen_range(1u32..4);
        let geometry = Geometry::new(sets, 2, 1);
        let mut store: TagStore<u8> = TagStore::new(geometry);
        for _ in 0..rng.gen_range(1usize..80) {
            let addr = rng.gen_range(0u64..64);
            if let Some(evicted) = store.insert(Addr::new(addr), 0, Word::ZERO) {
                assert_eq!(
                    geometry.set_of(evicted.addr),
                    geometry.set_of(Addr::new(addr)),
                    "eviction crossed sets"
                );
            }
        }
        assert!(store.len() <= sets * 2);
    });
}

/// Every replacement policy preserves the fundamental store invariants:
/// lookups find exactly what was inserted last for each address, and
/// occupancy never exceeds capacity.
#[test]
fn policies_preserve_lookup_correctness() {
    check("policies_preserve_lookup_correctness", 64, |rng| {
        let seed = rng.next_u64();
        let ops: Vec<(u64, u64)> = (0..rng.gen_range(1usize..100))
            .map(|_| (rng.gen_range(0u64..24), rng.next_u64()))
            .collect();
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(seed),
        ] {
            let mut store: TagStore<u8> = TagStore::with_policy(Geometry::new(2, 3, 1), policy);
            let mut last_written = std::collections::HashMap::new();
            for &(addr, data) in &ops {
                store.insert(Addr::new(addr), 0, Word::new(data));
                last_written.insert(addr, data);
            }
            assert!(store.len() <= 6);
            for e in store.iter() {
                assert_eq!(
                    e.data.value(),
                    last_written[&e.addr.index()],
                    "{policy}: stale data survived"
                );
            }
        }
    });
}

/// Geometry round-trip for arbitrary power-of-two shapes.
#[test]
fn geometry_round_trips() {
    check("geometry_round_trips", 64, |rng| {
        let g = Geometry::new(
            1 << rng.gen_range(0u32..10),
            rng.gen_range(1usize..5),
            1 << rng.gen_range(0u32..4),
        );
        let raw = rng.gen_range(0u64..1_000_000);
        let addr = Addr::new(raw);
        let base = g.block_base(addr);
        assert_eq!(g.addr_of(g.tag_of(addr), g.set_of(addr)), base);
        assert!(base.index() <= raw);
        assert!(raw - base.index() < g.block_words());
    });
}

/// The Cm* emulation cache never reports more hits than references, and
/// its report columns always sum to the total.
#[test]
fn cmstar_report_is_internally_consistent() {
    check("cmstar_report_is_internally_consistent", 64, |rng| {
        let mut cache = CmStarCache::new(16);
        for _ in 0..rng.gen_range(1usize..200) {
            let addr = rng.gen_range(0u64..64);
            let (access, class) = match rng.gen_range(0u8..5) {
                0 => (AccessKind::Read, RefClass::Code),
                1 => (AccessKind::Read, RefClass::Local),
                2 => (AccessKind::Write, RefClass::Local),
                3 => (AccessKind::Read, RefClass::Shared),
                _ => (AccessKind::Write, RefClass::Shared),
            };
            cache.access(Addr::new(addr), access, class);
        }
        let stats = cache.stats();
        assert!(stats.total_hits() <= stats.total_references());
        let report = cache.report();
        assert!(
            (report.read_miss_pct + report.local_write_pct + report.shared_pct
                - report.total_miss_pct)
                .abs()
                < 1e-9
        );
        assert!(report.total_miss_pct <= 100.0 + 1e-9);
    });
}
