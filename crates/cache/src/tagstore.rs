//! Generic per-line cache storage with pluggable coherence state.

use crate::Geometry;
use decache_mem::{Addr, Word};
use decache_rng::Rng;
use std::fmt;

/// The victim-selection policy within a set. The paper: "the exact
/// choice of a replacement policy is orthogonal to our scheme"
/// (Section 3) — all three policies preserve every coherence property;
/// they only trade conflict misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently *used* way (the default).
    Lru,
    /// Evict the oldest-inserted way, ignoring use recency.
    Fifo,
    /// Evict a pseudo-random way (deterministic per seed).
    Random(u64),
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Lru => write!(f, "LRU"),
            ReplacementPolicy::Fifo => write!(f, "FIFO"),
            ReplacementPolicy::Random(seed) => write!(f, "random(seed={seed})"),
        }
    }
}

/// One valid cache line: its coherence state, cached word, and the block
/// base address it holds.
///
/// The state type `S` is supplied by the coherence protocol (e.g. the RB
/// scheme's `R`/`I`/`L` states); the tag store itself is protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<S> {
    /// The block base address cached in this line.
    pub addr: Addr,
    /// The protocol-defined per-line state ("each address line in the
    /// cache is tagged", Section 1).
    pub state: S,
    /// The cached word. For multi-word-block geometries the store tracks
    /// presence at block granularity and this holds the block's first
    /// word; the coherence protocols all use one-word blocks.
    pub data: Word,
    /// Parity check bit: `true` while the stored word matches the parity
    /// computed when it was filled. A transient fault (the Section 8
    /// reliability model) clears it; the cache controller detects the
    /// mismatch on the next access to the line. Fresh fills always start
    /// with good parity.
    pub parity_ok: bool,
    lru_stamp: u64,
    insert_stamp: u64,
}

/// A line displaced by [`TagStore::insert`], handed back so the cache
/// controller can decide whether a write-back is required (the paper:
/// "only those overwritten items that are tagged local need to be written
/// back", Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine<S> {
    /// The block base address that was displaced.
    pub addr: Addr,
    /// Its state at eviction time.
    pub state: S,
    /// Its data at eviction time.
    pub data: Word,
    /// Its parity bit at eviction time — a corrupted line written back
    /// propagates its fault into memory.
    pub parity_ok: bool,
}

/// Protocol-agnostic cache line storage: a `sets × ways` array of optional
/// [`Entry`] values with LRU victim selection within a set.
///
/// # Examples
///
/// ```
/// use decache_cache::{Geometry, TagStore};
/// use decache_mem::{Addr, Word};
///
/// let mut store: TagStore<u8> = TagStore::new(Geometry::new(2, 2, 1));
/// store.insert(Addr::new(0), 1, Word::ZERO);
/// store.insert(Addr::new(2), 2, Word::ZERO); // same set, second way
/// store.insert(Addr::new(4), 3, Word::ZERO); // evicts LRU (addr 0)
/// assert!(store.get(Addr::new(0)).is_none());
/// assert!(store.get(Addr::new(2)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TagStore<S> {
    geometry: Geometry,
    lines: Vec<Option<Entry<S>>>,
    clock: u64,
    policy: ReplacementPolicy,
    rng: Rng,
    /// Running count of valid lines, so [`TagStore::len`] is O(1).
    valid: usize,
}

impl<S> TagStore<S> {
    /// Creates an empty store with the given geometry and LRU
    /// replacement.
    pub fn new(geometry: Geometry) -> Self {
        Self::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Creates an empty store with an explicit replacement policy.
    pub fn with_policy(geometry: Geometry, policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random(seed) => Rng::from_seed(seed),
            _ => Rng::from_seed(0),
        };
        TagStore {
            geometry,
            lines: (0..geometry.sets() * geometry.ways())
                .map(|_| None)
                .collect(),
            clock: 0,
            policy,
            rng,
            valid: 0,
        }
    }

    /// Returns the geometry of the store.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Returns the replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = self.geometry.set_of(addr);
        let ways = self.geometry.ways();
        set * ways..(set + 1) * ways
    }

    fn slot_of(&self, addr: Addr) -> Option<usize> {
        let base = self.geometry.block_base(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].as_ref().is_some_and(|e| e.addr == base))
    }

    /// Returns the line holding `addr`, if present, without touching LRU
    /// ordering.
    pub fn get(&self, addr: Addr) -> Option<&Entry<S>> {
        self.slot_of(addr).map(|i| {
            self.lines[i]
                .as_ref()
                .expect("slot_of returns occupied slots")
        })
    }

    /// Returns the line holding `addr` mutably and marks it most recently
    /// used.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut Entry<S>> {
        let slot = self.slot_of(addr)?;
        self.clock += 1;
        let entry = self.lines[slot]
            .as_mut()
            .expect("slot_of returns occupied slots");
        entry.lru_stamp = self.clock;
        Some(entry)
    }

    /// Returns `true` if the block containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.slot_of(addr).is_some()
    }

    /// Inserts (or overwrites) the line for `addr`, returning the line it
    /// displaced if the victim held a *different* block.
    ///
    /// Victim selection within the set: an existing entry for the same
    /// block, else an empty way, else the least recently used way.
    pub fn insert(&mut self, addr: Addr, state: S, data: Word) -> Option<EvictedLine<S>> {
        let base = self.geometry.block_base(addr);
        self.clock += 1;
        let clock = self.clock;

        let slot = if let Some(slot) = self.slot_of(addr) {
            slot
        } else {
            let range = self.set_range(addr);
            let empty = range.clone().find(|&i| self.lines[i].is_none());
            empty.unwrap_or_else(|| match self.policy {
                ReplacementPolicy::Lru => range
                    .min_by_key(|&i| {
                        self.lines[i]
                            .as_ref()
                            .expect("non-empty in else branch")
                            .lru_stamp
                    })
                    .expect("sets have at least one way"),
                ReplacementPolicy::Fifo => range
                    .min_by_key(|&i| {
                        self.lines[i]
                            .as_ref()
                            .expect("non-empty in else branch")
                            .insert_stamp
                    })
                    .expect("sets have at least one way"),
                ReplacementPolicy::Random(_) => {
                    let ways = range.len();
                    let pick = self.rng.gen_range(0..ways);
                    range.start + pick
                }
            })
        };

        let occupied = self.lines[slot].is_some();
        if !occupied {
            self.valid += 1;
        }
        let displaced = self.lines[slot].take().and_then(|old| {
            (old.addr != base).then_some(EvictedLine {
                addr: old.addr,
                state: old.state,
                data: old.data,
                parity_ok: old.parity_ok,
            })
        });
        self.lines[slot] = Some(Entry {
            addr: base,
            state,
            data,
            parity_ok: true,
            lru_stamp: clock,
            insert_stamp: clock,
        });
        displaced
    }

    /// Removes and returns the line holding `addr`, if present.
    pub fn remove(&mut self, addr: Addr) -> Option<EvictedLine<S>> {
        let slot = self.slot_of(addr)?;
        let removed = self.lines[slot].take().map(|e| EvictedLine {
            addr: e.addr,
            state: e.state,
            data: e.data,
            parity_ok: e.parity_ok,
        });
        if removed.is_some() {
            self.valid -= 1;
        }
        removed
    }

    /// Returns the number of valid lines.
    pub fn len(&self) -> usize {
        self.valid
    }

    /// Returns `true` if no lines are valid.
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Iterates over all valid lines in set order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<S>> {
        self.lines.iter().flatten()
    }

    /// Iterates over all valid lines mutably; does not touch LRU order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry<S>> {
        self.lines.iter_mut().flatten()
    }

    /// Drops every line, leaving the store empty.
    pub fn clear(&mut self) {
        for line in &mut self.lines {
            *line = None;
        }
        self.valid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(lines: usize) -> TagStore<char> {
        TagStore::new(Geometry::direct_mapped(lines))
    }

    #[test]
    fn empty_store_misses_everything() {
        let s = store(8);
        assert!(s.get(Addr::new(0)).is_none());
        assert!(!s.contains(Addr::new(5)));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn insert_then_get() {
        let mut s = store(8);
        assert!(s.insert(Addr::new(3), 'R', Word::new(10)).is_none());
        let e = s.get(Addr::new(3)).unwrap();
        assert_eq!(e.state, 'R');
        assert_eq!(e.data, Word::new(10));
        assert_eq!(e.addr, Addr::new(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_block_insert_overwrites_without_eviction() {
        let mut s = store(8);
        s.insert(Addr::new(3), 'R', Word::new(1));
        let evicted = s.insert(Addr::new(3), 'L', Word::new(2));
        assert!(evicted.is_none());
        let e = s.get(Addr::new(3)).unwrap();
        assert_eq!(e.state, 'L');
        assert_eq!(e.data, Word::new(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_block_evicts_and_reports() {
        let mut s = store(8);
        s.insert(Addr::new(3), 'L', Word::new(1));
        let evicted = s.insert(Addr::new(11), 'R', Word::new(2)).unwrap();
        assert_eq!(
            evicted,
            EvictedLine {
                addr: Addr::new(3),
                state: 'L',
                data: Word::new(1),
                parity_ok: true,
            }
        );
        assert!(!s.contains(Addr::new(3)));
        assert!(s.contains(Addr::new(11)));
    }

    #[test]
    fn get_mut_updates_state_in_place() {
        let mut s = store(4);
        s.insert(Addr::new(1), 'I', Word::ZERO);
        s.get_mut(Addr::new(1)).unwrap().state = 'R';
        assert_eq!(s.get(Addr::new(1)).unwrap().state, 'R');
    }

    #[test]
    fn two_way_set_uses_lru_victim() {
        let mut s: TagStore<u8> = TagStore::new(Geometry::new(1, 2, 1));
        s.insert(Addr::new(0), 0, Word::ZERO);
        s.insert(Addr::new(1), 1, Word::ZERO);
        // Touch address 0 so address 1 becomes LRU.
        s.get_mut(Addr::new(0));
        let evicted = s.insert(Addr::new(2), 2, Word::ZERO).unwrap();
        assert_eq!(evicted.addr, Addr::new(1));
        assert!(s.contains(Addr::new(0)));
        assert!(s.contains(Addr::new(2)));
    }

    #[test]
    fn remove_returns_line() {
        let mut s = store(4);
        s.insert(Addr::new(2), 'L', Word::new(5));
        let removed = s.remove(Addr::new(2)).unwrap();
        assert_eq!(removed.data, Word::new(5));
        assert!(s.remove(Addr::new(2)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn iter_covers_all_valid_lines() {
        let mut s = store(8);
        for i in 0..5u64 {
            s.insert(Addr::new(i), 'R', Word::new(i));
        }
        let mut addrs: Vec<u64> = s.iter().map(|e| e.addr.index()).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn iter_mut_allows_bulk_state_change() {
        let mut s = store(8);
        for i in 0..4u64 {
            s.insert(Addr::new(i), 'R', Word::ZERO);
        }
        for e in s.iter_mut() {
            e.state = 'I';
        }
        assert!(s.iter().all(|e| e.state == 'I'));
    }

    #[test]
    fn clear_empties_store() {
        let mut s = store(4);
        s.insert(Addr::new(0), 'R', Word::ZERO);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut s: TagStore<u8> =
            TagStore::with_policy(Geometry::new(1, 2, 1), ReplacementPolicy::Fifo);
        s.insert(Addr::new(0), 0, Word::ZERO);
        s.insert(Addr::new(1), 1, Word::ZERO);
        // Touch address 0: under LRU this would protect it; FIFO evicts
        // it anyway because it was inserted first.
        s.get_mut(Addr::new(0));
        let evicted = s.insert(Addr::new(2), 2, Word::ZERO).unwrap();
        assert_eq!(evicted.addr, Addr::new(0));
        assert_eq!(s.policy(), ReplacementPolicy::Fifo);
        assert_eq!(s.policy().to_string(), "FIFO");
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s: TagStore<u8> =
                TagStore::with_policy(Geometry::new(1, 4, 1), ReplacementPolicy::Random(seed));
            for i in 0..4 {
                s.insert(Addr::new(i), 0, Word::ZERO);
            }
            let mut evictions = Vec::new();
            for i in 4..16 {
                if let Some(e) = s.insert(Addr::new(i), 0, Word::ZERO) {
                    evictions.push(e.addr);
                }
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn direct_mapped_is_policy_insensitive() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(3),
        ] {
            let mut s: TagStore<u8> = TagStore::with_policy(Geometry::direct_mapped(4), policy);
            s.insert(Addr::new(1), 0, Word::ZERO);
            let evicted = s.insert(Addr::new(5), 1, Word::ZERO).unwrap();
            assert_eq!(evicted.addr, Addr::new(1), "{policy}");
        }
    }

    #[test]
    fn fresh_fills_have_good_parity_and_refills_restore_it() {
        let mut s = store(4);
        s.insert(Addr::new(1), 'R', Word::new(5));
        assert!(s.get(Addr::new(1)).unwrap().parity_ok);
        s.get_mut(Addr::new(1)).unwrap().parity_ok = false;
        assert!(!s.get(Addr::new(1)).unwrap().parity_ok);
        // Evicting the corrupt line reports the bad parity...
        let evicted = s.insert(Addr::new(5), 'R', Word::ZERO).unwrap();
        assert!(!evicted.parity_ok);
        // ...and a fresh fill of the same block starts clean again.
        s.insert(Addr::new(1), 'R', Word::new(6));
        assert!(s.get(Addr::new(1)).unwrap().parity_ok);
    }

    #[test]
    fn multi_word_blocks_track_presence_per_block() {
        let mut s: TagStore<u8> = TagStore::new(Geometry::new(4, 1, 4));
        s.insert(Addr::new(5), 0, Word::ZERO);
        // Whole block [4, 8) is now present.
        assert!(s.contains(Addr::new(4)));
        assert!(s.contains(Addr::new(7)));
        assert!(!s.contains(Addr::new(8)));
    }
}
