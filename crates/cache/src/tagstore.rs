//! Generic per-line cache storage with pluggable coherence state.

use crate::Geometry;
use decache_mem::{Addr, Word};
use decache_rng::Rng;
use std::fmt;

/// The victim-selection policy within a set. The paper: "the exact
/// choice of a replacement policy is orthogonal to our scheme"
/// (Section 3) — all three policies preserve every coherence property;
/// they only trade conflict misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently *used* way (the default).
    Lru,
    /// Evict the oldest-inserted way, ignoring use recency.
    Fifo,
    /// Evict a pseudo-random way (deterministic per seed).
    Random(u64),
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Lru => write!(f, "LRU"),
            ReplacementPolicy::Fifo => write!(f, "FIFO"),
            ReplacementPolicy::Random(seed) => write!(f, "random(seed={seed})"),
        }
    }
}

/// A by-value view of one valid cache line: its coherence state, cached
/// word, and the block base address it holds.
///
/// The state type `S` is supplied by the coherence protocol (e.g. the RB
/// scheme's `R`/`I`/`L` states); the tag store itself is protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<S> {
    /// The block base address cached in this line.
    pub addr: Addr,
    /// The protocol-defined per-line state ("each address line in the
    /// cache is tagged", Section 1).
    pub state: S,
    /// The cached word. For multi-word-block geometries the store tracks
    /// presence at block granularity and this holds the block's first
    /// word; the coherence protocols all use one-word blocks.
    pub data: Word,
    /// Parity check bit: `true` while the stored word matches the parity
    /// computed when it was filled. A transient fault (the Section 8
    /// reliability model) clears it; the cache controller detects the
    /// mismatch on the next access to the line. Fresh fills always start
    /// with good parity.
    pub parity_ok: bool,
}

/// A mutable view of one valid cache line, borrowing the state, data, and
/// parity cells out of the store's column arrays.
#[derive(Debug)]
pub struct EntryMut<'a, S> {
    /// The block base address cached in this line (not reassignable; use
    /// [`TagStore::insert`]/[`TagStore::remove`] to change what a line
    /// holds).
    pub addr: Addr,
    /// The protocol-defined per-line state.
    pub state: &'a mut S,
    /// The cached word.
    pub data: &'a mut Word,
    /// Parity check bit (see [`Entry::parity_ok`]).
    pub parity_ok: &'a mut bool,
}

/// A line displaced by [`TagStore::insert`], handed back so the cache
/// controller can decide whether a write-back is required (the paper:
/// "only those overwritten items that are tagged local need to be written
/// back", Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine<S> {
    /// The block base address that was displaced.
    pub addr: Addr,
    /// Its state at eviction time.
    pub state: S,
    /// Its data at eviction time.
    pub data: Word,
    /// Its parity bit at eviction time — a corrupted line written back
    /// propagates its fault into memory.
    pub parity_ok: bool,
}

/// The tag value marking an empty way. Real block bases never collide
/// with it: the address space is bounded by the machine's memory size,
/// far below `u64::MAX`.
const EMPTY_TAG: u64 = u64::MAX;

/// One line slot in a [`TagStoreCheckpoint`], in slot order (set-major,
/// way-minor). Empty slots carry `state: None`; their `tag` and `data`
/// cells are not meaningful and are normalized on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCheckpoint<S> {
    /// The block base address held by the slot (ignored when empty).
    pub addr: Addr,
    /// The data cell.
    pub data: Word,
    /// The coherence state; `None` marks an empty slot.
    pub state: Option<S>,
    /// The parity cell.
    pub parity_ok: bool,
}

/// A full-fidelity export of a [`TagStore`]'s mutable state — every
/// cell that influences future behaviour: line contents, both
/// replacement-stamp columns, the stamp clock, and the random-policy
/// RNG stream. Restoring it into a store of identical geometry and
/// policy reproduces the original bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagStoreCheckpoint<S> {
    /// Every slot in slot order, occupied or not.
    pub lines: Vec<LineCheckpoint<S>>,
    /// Per-slot last-use stamps (victim selection under LRU).
    pub lru_stamps: Vec<u64>,
    /// Per-slot insertion stamps (victim selection under FIFO).
    pub insert_stamps: Vec<u64>,
    /// The stamp clock.
    pub clock: u64,
    /// The replacement RNG's 256-bit stream state.
    pub rng_state: [u64; 4],
}

/// One way's hot cells, packed so every probe is a single host cache
/// line touch (see the [`TagStore`] layout note).
#[derive(Debug, Clone)]
struct Row<S> {
    /// Block base address; [`EMPTY_TAG`] marks an empty way.
    tag: u64,
    data: Word,
    /// Coherence state; `None` exactly where the tag is empty.
    state: Option<S>,
    parity: bool,
}

impl<S> Row<S> {
    fn empty() -> Self {
        Row {
            tag: EMPTY_TAG,
            data: Word::ZERO,
            state: None,
            parity: true,
        }
    }
}

/// Protocol-agnostic cache line storage: a `sets × ways` array of lines
/// with LRU victim selection within a set.
///
/// The hot cells of a line — tag, state, data word, parity bit — are
/// packed into one [`Row`] so a probe, snoop application, or fill
/// touches a single cache line of host memory instead of striding four
/// parallel columns; with hundreds of simulated caches that cut in
/// scattered accesses dominates a machine cycle's cost. Replacement
/// stamps stay in their own columns: they are cold on the
/// direct-mapped fast path (one way per set needs no recency order)
/// and victim selection scans only a stamp column. [`Entry`] is a
/// by-value row view assembled on demand; [`EntryMut`] borrows the
/// mutable cells of one row.
///
/// # Examples
///
/// ```
/// use decache_cache::{Geometry, TagStore};
/// use decache_mem::{Addr, Word};
///
/// let mut store: TagStore<u8> = TagStore::new(Geometry::new(2, 2, 1));
/// store.insert(Addr::new(0), 1, Word::ZERO);
/// store.insert(Addr::new(2), 2, Word::ZERO); // same set, second way
/// store.insert(Addr::new(4), 3, Word::ZERO); // evicts LRU (addr 0)
/// assert!(store.get(Addr::new(0)).is_none());
/// assert!(store.get(Addr::new(2)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TagStore<S> {
    geometry: Geometry,
    rows: Vec<Row<S>>,
    lru_stamps: Vec<u64>,
    insert_stamps: Vec<u64>,
    clock: u64,
    policy: ReplacementPolicy,
    rng: Rng,
    /// Running count of valid lines, so [`TagStore::len`] is O(1).
    valid: usize,
}

impl<S> TagStore<S> {
    /// Creates an empty store with the given geometry and LRU
    /// replacement.
    pub fn new(geometry: Geometry) -> Self {
        Self::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Creates an empty store with an explicit replacement policy.
    pub fn with_policy(geometry: Geometry, policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random(seed) => Rng::from_seed(seed),
            _ => Rng::from_seed(0),
        };
        let lines = geometry.sets() * geometry.ways();
        TagStore {
            geometry,
            rows: (0..lines).map(|_| Row::empty()).collect(),
            lru_stamps: vec![0; lines],
            insert_stamps: vec![0; lines],
            clock: 0,
            policy,
            rng,
            valid: 0,
        }
    }

    /// Returns the geometry of the store.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Returns the replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = self.geometry.set_of(addr);
        let ways = self.geometry.ways();
        set * ways..(set + 1) * ways
    }

    fn slot_of(&self, addr: Addr) -> Option<usize> {
        let base = self.geometry.block_base(addr).index();
        self.set_range(addr).find(|&i| self.rows[i].tag == base)
    }

    fn row(&self, slot: usize) -> Entry<S>
    where
        S: Copy,
    {
        let row = &self.rows[slot];
        Entry {
            addr: Addr::new(row.tag),
            state: row.state.expect("occupied slot has a state"),
            data: row.data,
            parity_ok: row.parity,
        }
    }

    /// Returns the line holding `addr`, if present, without touching LRU
    /// ordering.
    pub fn get(&self, addr: Addr) -> Option<Entry<S>>
    where
        S: Copy,
    {
        self.slot_of(addr).map(|i| self.row(i))
    }

    /// Returns just the coherence state of the line holding `addr`, if
    /// present — the cheap probe for hit/miss decisions, which need no
    /// data or parity.
    pub fn state_of(&self, addr: Addr) -> Option<S>
    where
        S: Copy,
    {
        self.slot_of(addr)
            .map(|i| self.rows[i].state.expect("occupied slot has a state"))
    }

    /// Returns the line holding `addr` mutably and marks it most recently
    /// used.
    #[inline]
    pub fn get_mut(&mut self, addr: Addr) -> Option<EntryMut<'_, S>> {
        let slot = self.slot_of(addr)?;
        // Stamps only order ways within a set for victim selection; a
        // direct-mapped store has one way per set, so recency tracking
        // is skipped entirely on its hot path.
        if self.geometry.ways() > 1 {
            self.clock += 1;
            self.lru_stamps[slot] = self.clock;
        }
        let row = &mut self.rows[slot];
        Some(EntryMut {
            addr: Addr::new(row.tag),
            state: row.state.as_mut().expect("occupied slot has a state"),
            data: &mut row.data,
            parity_ok: &mut row.parity,
        })
    }

    /// Returns `true` if the block containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.slot_of(addr).is_some()
    }

    /// Applies a broadcast snoop to the line holding `addr` without a
    /// tag scan: with one way per set the slot is forced, so a caller
    /// that already proves presence (the machine's sharer index) can
    /// skip `slot_of` entirely. `f` maps the old state to
    /// `(next, capture)`; on capture the broadcast `word` (if any)
    /// overwrites the data column. Never touches the replacement clock,
    /// matching [`TagStore::get_mut`] on a direct-mapped store. Returns
    /// `(old, next)`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty; debug-asserts that the store is
    /// direct-mapped and that the slot holds `addr`'s block.
    #[inline]
    pub fn apply_broadcast(
        &mut self,
        addr: Addr,
        word: Option<Word>,
        f: impl FnOnce(S) -> (S, bool),
    ) -> (S, S)
    where
        S: Copy,
    {
        debug_assert_eq!(
            self.geometry.ways(),
            1,
            "apply_broadcast requires a forced (direct-mapped) slot"
        );
        let slot = self.set_range(addr).start;
        debug_assert_eq!(
            self.rows[slot].tag,
            self.geometry.block_base(addr).index(),
            "apply_broadcast on a slot holding a different block"
        );
        let row = &mut self.rows[slot];
        let old = row.state.expect("broadcast to an empty slot");
        let (next, capture) = f(old);
        row.state = Some(next);
        if capture {
            if let Some(word) = word {
                row.data = word;
            }
        }
        (old, next)
    }

    /// Inserts (or overwrites) the line for `addr`, returning the line it
    /// displaced if the victim held a *different* block.
    ///
    /// Victim selection within the set: an existing entry for the same
    /// block, else an empty way, else the least recently used way.
    pub fn insert(&mut self, addr: Addr, state: S, data: Word) -> Option<EvictedLine<S>> {
        let base = self.geometry.block_base(addr).index();
        debug_assert_ne!(base, EMPTY_TAG, "address collides with the empty tag");
        let direct_mapped = self.geometry.ways() == 1;

        let slot = if direct_mapped {
            // One way per set: the slot is forced, occupied or not, and
            // no stamp or policy draw can change the choice. (With one
            // candidate, even the random policy's pick is always 0.)
            self.set_range(addr).start
        } else if let Some(slot) = self.slot_of(addr) {
            slot
        } else {
            let range = self.set_range(addr);
            let empty = range.clone().find(|&i| self.rows[i].tag == EMPTY_TAG);
            empty.unwrap_or_else(|| match self.policy {
                ReplacementPolicy::Lru => range
                    .min_by_key(|&i| self.lru_stamps[i])
                    .expect("sets have at least one way"),
                ReplacementPolicy::Fifo => range
                    .min_by_key(|&i| self.insert_stamps[i])
                    .expect("sets have at least one way"),
                ReplacementPolicy::Random(_) => {
                    let ways = range.len();
                    let pick = self.rng.gen_range(0..ways);
                    range.start + pick
                }
            })
        };

        let row = &mut self.rows[slot];
        if row.tag == EMPTY_TAG {
            self.valid += 1;
        }
        let displaced = row.state.take().and_then(|old_state| {
            (row.tag != base).then(|| EvictedLine {
                addr: Addr::new(row.tag),
                state: old_state,
                data: row.data,
                parity_ok: row.parity,
            })
        });
        row.tag = base;
        row.state = Some(state);
        row.data = data;
        row.parity = true;
        if !direct_mapped {
            self.clock += 1;
            self.lru_stamps[slot] = self.clock;
            self.insert_stamps[slot] = self.clock;
        }
        displaced
    }

    /// Removes and returns the line holding `addr`, if present.
    pub fn remove(&mut self, addr: Addr) -> Option<EvictedLine<S>> {
        let slot = self.slot_of(addr)?;
        let row = &mut self.rows[slot];
        let removed = row.state.take().map(|state| EvictedLine {
            addr: Addr::new(row.tag),
            state,
            data: row.data,
            parity_ok: row.parity,
        });
        if removed.is_some() {
            row.tag = EMPTY_TAG;
            self.valid -= 1;
        }
        removed
    }

    /// Returns the number of valid lines.
    pub fn len(&self) -> usize {
        self.valid
    }

    /// Returns `true` if no lines are valid.
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Iterates over all valid lines in set order.
    pub fn iter(&self) -> impl Iterator<Item = Entry<S>> + '_
    where
        S: Copy,
    {
        (0..self.rows.len())
            .filter(move |&i| self.rows[i].tag != EMPTY_TAG)
            .map(move |i| self.row(i))
    }

    /// Iterates over all valid lines mutably; does not touch LRU order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = EntryMut<'_, S>> {
        self.rows.iter_mut().filter_map(|row| {
            let tag = row.tag;
            let state = row.state.as_mut()?;
            Some(EntryMut {
                addr: Addr::new(tag),
                state,
                data: &mut row.data,
                parity_ok: &mut row.parity,
            })
        })
    }

    /// Exports the store's complete mutable state for a checkpoint.
    pub fn checkpoint_state(&self) -> TagStoreCheckpoint<S>
    where
        S: Copy,
    {
        TagStoreCheckpoint {
            lines: self
                .rows
                .iter()
                .map(|row| LineCheckpoint {
                    addr: Addr::new(if row.tag == EMPTY_TAG { 0 } else { row.tag }),
                    data: row.data,
                    state: row.state,
                    parity_ok: row.parity,
                })
                .collect(),
            lru_stamps: self.lru_stamps.clone(),
            insert_stamps: self.insert_stamps.clone(),
            clock: self.clock,
            rng_state: self.rng.state(),
        }
    }

    /// Overwrites the store's mutable state from a checkpoint produced
    /// by [`TagStore::checkpoint_state`] on a store of the same
    /// geometry. The geometry and policy themselves are construction
    /// parameters and are not restored — build the store with them
    /// first.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the checkpoint's slot
    /// or stamp-column counts do not match this store's geometry, or if
    /// an occupied slot names a block outside its own set.
    pub fn restore_state(&mut self, ck: TagStoreCheckpoint<S>) -> Result<(), String> {
        let lines = self.rows.len();
        if ck.lines.len() != lines {
            return Err(format!(
                "checkpoint has {} line slots, store has {lines}",
                ck.lines.len()
            ));
        }
        if ck.lru_stamps.len() != lines || ck.insert_stamps.len() != lines {
            return Err(format!(
                "checkpoint stamp columns ({}, {}) do not match {lines} slots",
                ck.lru_stamps.len(),
                ck.insert_stamps.len()
            ));
        }
        let ways = self.geometry.ways();
        for (slot, line) in ck.lines.iter().enumerate() {
            if line.state.is_some() && self.geometry.set_of(line.addr) != slot / ways {
                return Err(format!(
                    "checkpoint slot {slot} holds {}, which maps to a different set",
                    line.addr
                ));
            }
        }
        let mut valid = 0;
        for (row, line) in self.rows.iter_mut().zip(ck.lines) {
            match line.state {
                Some(state) => {
                    row.tag = self.geometry.block_base(line.addr).index();
                    row.data = line.data;
                    row.state = Some(state);
                    row.parity = line.parity_ok;
                    valid += 1;
                }
                None => {
                    *row = Row::empty();
                }
            }
        }
        self.lru_stamps = ck.lru_stamps;
        self.insert_stamps = ck.insert_stamps;
        self.clock = ck.clock;
        self.rng = Rng::from_state(ck.rng_state);
        self.valid = valid;
        Ok(())
    }

    /// Drops every line, leaving the store empty.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.tag = EMPTY_TAG;
            row.state = None;
        }
        self.valid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(lines: usize) -> TagStore<char> {
        TagStore::new(Geometry::direct_mapped(lines))
    }

    #[test]
    fn empty_store_misses_everything() {
        let s = store(8);
        assert!(s.get(Addr::new(0)).is_none());
        assert!(!s.contains(Addr::new(5)));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn insert_then_get() {
        let mut s = store(8);
        assert!(s.insert(Addr::new(3), 'R', Word::new(10)).is_none());
        let e = s.get(Addr::new(3)).unwrap();
        assert_eq!(e.state, 'R');
        assert_eq!(e.data, Word::new(10));
        assert_eq!(e.addr, Addr::new(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_block_insert_overwrites_without_eviction() {
        let mut s = store(8);
        s.insert(Addr::new(3), 'R', Word::new(1));
        let evicted = s.insert(Addr::new(3), 'L', Word::new(2));
        assert!(evicted.is_none());
        let e = s.get(Addr::new(3)).unwrap();
        assert_eq!(e.state, 'L');
        assert_eq!(e.data, Word::new(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_block_evicts_and_reports() {
        let mut s = store(8);
        s.insert(Addr::new(3), 'L', Word::new(1));
        let evicted = s.insert(Addr::new(11), 'R', Word::new(2)).unwrap();
        assert_eq!(
            evicted,
            EvictedLine {
                addr: Addr::new(3),
                state: 'L',
                data: Word::new(1),
                parity_ok: true,
            }
        );
        assert!(!s.contains(Addr::new(3)));
        assert!(s.contains(Addr::new(11)));
    }

    #[test]
    fn get_mut_updates_state_in_place() {
        let mut s = store(4);
        s.insert(Addr::new(1), 'I', Word::ZERO);
        *s.get_mut(Addr::new(1)).unwrap().state = 'R';
        assert_eq!(s.get(Addr::new(1)).unwrap().state, 'R');
    }

    #[test]
    fn two_way_set_uses_lru_victim() {
        let mut s: TagStore<u8> = TagStore::new(Geometry::new(1, 2, 1));
        s.insert(Addr::new(0), 0, Word::ZERO);
        s.insert(Addr::new(1), 1, Word::ZERO);
        // Touch address 0 so address 1 becomes LRU.
        s.get_mut(Addr::new(0));
        let evicted = s.insert(Addr::new(2), 2, Word::ZERO).unwrap();
        assert_eq!(evicted.addr, Addr::new(1));
        assert!(s.contains(Addr::new(0)));
        assert!(s.contains(Addr::new(2)));
    }

    #[test]
    fn remove_returns_line() {
        let mut s = store(4);
        s.insert(Addr::new(2), 'L', Word::new(5));
        let removed = s.remove(Addr::new(2)).unwrap();
        assert_eq!(removed.data, Word::new(5));
        assert!(s.remove(Addr::new(2)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn iter_covers_all_valid_lines() {
        let mut s = store(8);
        for i in 0..5u64 {
            s.insert(Addr::new(i), 'R', Word::new(i));
        }
        let mut addrs: Vec<u64> = s.iter().map(|e| e.addr.index()).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn iter_mut_allows_bulk_state_change() {
        let mut s = store(8);
        for i in 0..4u64 {
            s.insert(Addr::new(i), 'R', Word::ZERO);
        }
        for e in s.iter_mut() {
            *e.state = 'I';
        }
        assert!(s.iter().all(|e| e.state == 'I'));
    }

    #[test]
    fn clear_empties_store() {
        let mut s = store(4);
        s.insert(Addr::new(0), 'R', Word::ZERO);
        s.clear();
        assert!(s.is_empty());
        assert!(s.get(Addr::new(0)).is_none());
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut s: TagStore<u8> =
            TagStore::with_policy(Geometry::new(1, 2, 1), ReplacementPolicy::Fifo);
        s.insert(Addr::new(0), 0, Word::ZERO);
        s.insert(Addr::new(1), 1, Word::ZERO);
        // Touch address 0: under LRU this would protect it; FIFO evicts
        // it anyway because it was inserted first.
        s.get_mut(Addr::new(0));
        let evicted = s.insert(Addr::new(2), 2, Word::ZERO).unwrap();
        assert_eq!(evicted.addr, Addr::new(0));
        assert_eq!(s.policy(), ReplacementPolicy::Fifo);
        assert_eq!(s.policy().to_string(), "FIFO");
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s: TagStore<u8> =
                TagStore::with_policy(Geometry::new(1, 4, 1), ReplacementPolicy::Random(seed));
            for i in 0..4 {
                s.insert(Addr::new(i), 0, Word::ZERO);
            }
            let mut evictions = Vec::new();
            for i in 4..16 {
                if let Some(e) = s.insert(Addr::new(i), 0, Word::ZERO) {
                    evictions.push(e.addr);
                }
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn direct_mapped_is_policy_insensitive() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(3),
        ] {
            let mut s: TagStore<u8> = TagStore::with_policy(Geometry::direct_mapped(4), policy);
            s.insert(Addr::new(1), 0, Word::ZERO);
            let evicted = s.insert(Addr::new(5), 1, Word::ZERO).unwrap();
            assert_eq!(evicted.addr, Addr::new(1), "{policy}");
        }
    }

    #[test]
    fn fresh_fills_have_good_parity_and_refills_restore_it() {
        let mut s = store(4);
        s.insert(Addr::new(1), 'R', Word::new(5));
        assert!(s.get(Addr::new(1)).unwrap().parity_ok);
        *s.get_mut(Addr::new(1)).unwrap().parity_ok = false;
        assert!(!s.get(Addr::new(1)).unwrap().parity_ok);
        // Evicting the corrupt line reports the bad parity...
        let evicted = s.insert(Addr::new(5), 'R', Word::ZERO).unwrap();
        assert!(!evicted.parity_ok);
        // ...and a fresh fill of the same block starts clean again.
        s.insert(Addr::new(1), 'R', Word::new(6));
        assert!(s.get(Addr::new(1)).unwrap().parity_ok);
    }

    #[test]
    fn multi_word_blocks_track_presence_per_block() {
        let mut s: TagStore<u8> = TagStore::new(Geometry::new(4, 1, 4));
        s.insert(Addr::new(5), 0, Word::ZERO);
        // Whole block [4, 8) is now present.
        assert!(s.contains(Addr::new(4)));
        assert!(s.contains(Addr::new(7)));
        assert!(!s.contains(Addr::new(8)));
    }

    #[test]
    fn checkpoint_round_trip_reproduces_future_behaviour() {
        // A 2-way random-policy store mid-run: the checkpoint must carry
        // stamps and the RNG stream so the *next* evictions agree.
        let mk = || {
            let mut s: TagStore<u8> =
                TagStore::with_policy(Geometry::new(2, 2, 1), ReplacementPolicy::Random(9));
            for i in 0..6 {
                s.insert(Addr::new(i), i as u8, Word::new(i));
            }
            *s.get_mut(Addr::new(4)).unwrap().parity_ok = false;
            s
        };
        let mut original = mk();
        let ck = original.checkpoint_state();

        let mut restored: TagStore<u8> =
            TagStore::with_policy(Geometry::new(2, 2, 1), ReplacementPolicy::Random(9));
        restored.restore_state(ck).unwrap();
        assert_eq!(restored.len(), original.len());
        let dump = |s: &TagStore<u8>| {
            s.iter()
                .map(|e| (e.addr, e.state, e.data, e.parity_ok))
                .collect::<Vec<_>>()
        };
        assert_eq!(dump(&restored), dump(&original));
        for i in 6..20 {
            assert_eq!(
                original.insert(Addr::new(i), 0, Word::ZERO),
                restored.insert(Addr::new(i), 0, Word::ZERO),
                "divergence at insert {i}"
            );
        }
    }

    #[test]
    fn checkpoint_restore_rejects_wrong_shape() {
        let small: TagStore<u8> = TagStore::new(Geometry::direct_mapped(2));
        let ck = small.checkpoint_state();
        let mut big: TagStore<u8> = TagStore::new(Geometry::direct_mapped(4));
        assert!(big.restore_state(ck).is_err());

        // An occupied slot must name a block of its own set.
        let mut ck = small.checkpoint_state();
        ck.lines[0] = LineCheckpoint {
            addr: Addr::new(1), // maps to set 1, claimed for slot 0
            data: Word::ZERO,
            state: Some(7),
            parity_ok: true,
        };
        let mut target: TagStore<u8> = TagStore::new(Geometry::direct_mapped(2));
        assert!(target.restore_state(ck).is_err());
    }

    #[test]
    fn entry_mut_edits_all_columns() {
        let mut s = store(4);
        s.insert(Addr::new(2), 'R', Word::new(1));
        {
            let e = s.get_mut(Addr::new(2)).unwrap();
            assert_eq!(e.addr, Addr::new(2));
            *e.state = 'L';
            *e.data = Word::new(9);
            *e.parity_ok = false;
        }
        let e = s.get(Addr::new(2)).unwrap();
        assert_eq!((e.state, e.data, e.parity_ok), ('L', Word::new(9), false));
    }
}
