//! Cache geometry: how addresses map onto lines.

use decache_mem::Addr;
use std::fmt;

/// The shape of a cache: `sets × ways` lines of `block_words` words each.
///
/// The paper's schemes assume a **direct-mapped** cache (one way) with a
/// **one-word block** (Section 2, assumption 7), arguing that shared data
/// has no spatial locality and that a large block size makes misses
/// expensive. [`Geometry::direct_mapped`] builds that shape; the general
/// constructor supports the associativity/block-size ablations.
///
/// # Examples
///
/// ```
/// use decache_cache::Geometry;
/// use decache_mem::Addr;
///
/// let g = Geometry::direct_mapped(256);
/// assert_eq!(g.total_words(), 256);
/// assert_eq!(g.set_of(Addr::new(300)), 300 % 256);
/// // Two addresses with the same set but different tags conflict:
/// assert_eq!(g.set_of(Addr::new(44)), g.set_of(Addr::new(44 + 256)));
/// assert_ne!(g.tag_of(Addr::new(44)), g.tag_of(Addr::new(44 + 256)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    sets: usize,
    ways: usize,
    block_words: u64,
    // Both `sets` and `block_words` are powers of two (asserted in
    // `new`), so the address split is shift/mask — these are derived
    // from the fields above and keep `set_of`/`tag_of` division-free
    // on the per-access hot path.
    block_shift: u32,
    set_shift: u32,
    set_mask: u64,
}

impl Geometry {
    /// Creates a geometry with `sets` sets, `ways` ways, and blocks of
    /// `block_words` words.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, or if `sets` or `block_words` is
    /// not a power of two (address splitting requires power-of-two sizes).
    pub fn new(sets: usize, ways: usize, block_words: u64) -> Self {
        assert!(
            sets > 0 && ways > 0 && block_words > 0,
            "geometry parameters must be nonzero"
        );
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        assert!(
            block_words.is_power_of_two(),
            "block size {block_words} must be a power of two"
        );
        Geometry {
            sets,
            ways,
            block_words,
            block_shift: block_words.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// The paper's canonical geometry: direct-mapped, one-word blocks,
    /// `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or not a power of two.
    pub fn direct_mapped(lines: usize) -> Self {
        Geometry::new(lines, 1, 1)
    }

    /// Returns the number of sets.
    pub const fn sets(&self) -> usize {
        self.sets
    }

    /// Returns the associativity (ways per set).
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Returns the block size in words.
    pub const fn block_words(&self) -> u64 {
        self.block_words
    }

    /// Returns the total capacity in words.
    pub const fn total_words(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.block_words
    }

    /// Returns the block-aligned base address of the block containing
    /// `addr`.
    pub const fn block_base(&self, addr: Addr) -> Addr {
        Addr::new(addr.index() & !(self.block_words - 1))
    }

    /// Returns the set index for `addr`.
    pub const fn set_of(&self, addr: Addr) -> usize {
        ((addr.index() >> self.block_shift) & self.set_mask) as usize
    }

    /// Returns the tag for `addr` (the address bits above the set index).
    pub const fn tag_of(&self, addr: Addr) -> u64 {
        (addr.index() >> self.block_shift) >> self.set_shift
    }

    /// Reconstructs the block base address from a `(tag, set)` pair: the
    /// inverse of [`Geometry::tag_of`] / [`Geometry::set_of`].
    pub const fn addr_of(&self, tag: u64, set: usize) -> Addr {
        Addr::new(((tag << self.set_shift) | set as u64) << self.block_shift)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} words ({} sets x {} ways x {} words/block)",
            self.total_words(),
            self.sets,
            self.ways,
            self.block_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_is_one_way_one_word() {
        let g = Geometry::direct_mapped(1024);
        assert_eq!(g.ways(), 1);
        assert_eq!(g.block_words(), 1);
        assert_eq!(g.total_words(), 1024);
    }

    #[test]
    fn tag_set_round_trip() {
        let g = Geometry::new(64, 2, 4);
        for raw in [0u64, 3, 64, 255, 256, 1_000_000] {
            let addr = Addr::new(raw);
            let base = g.block_base(addr);
            assert_eq!(g.addr_of(g.tag_of(addr), g.set_of(addr)), base);
        }
    }

    #[test]
    fn same_set_different_tag_conflicts() {
        let g = Geometry::direct_mapped(16);
        let a = Addr::new(5);
        let b = Addr::new(5 + 16);
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of(a), g.tag_of(b));
    }

    #[test]
    fn block_base_aligns_down() {
        let g = Geometry::new(8, 1, 4);
        assert_eq!(g.block_base(Addr::new(7)), Addr::new(4));
        assert_eq!(g.block_base(Addr::new(8)), Addr::new(8));
    }

    #[test]
    fn display_mentions_shape() {
        let g = Geometry::new(8, 2, 1);
        assert_eq!(g.to_string(), "16 words (8 sets x 2 ways x 1 words/block)");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = Geometry::new(3, 1, 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ways_panics() {
        let _ = Geometry::new(4, 0, 1);
    }
}
