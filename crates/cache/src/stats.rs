//! Per-class cache hit/miss accounting.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Whether a processor reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A CPU read reference.
    Read,
    /// A CPU write reference.
    Write,
}

/// The dynamic class of the referenced datum, following the paper's
/// taxonomy (Section 1): code is read-only shared, data is either local
/// (private to one process) or shared read/write.
///
/// For the RB/RWB schemes the class is *discovered dynamically* by the
/// protocol; workload generators still know the ground-truth class of each
/// reference, which is what these statistics are keyed on (exactly like
/// the columns of Table 1-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefClass {
    /// Instruction fetch / read-only code.
    Code,
    /// Data local (private) to the referencing process.
    Local,
    /// Read/write data shared between processes.
    Shared,
}

impl RefClass {
    /// All classes, in reporting order.
    pub const ALL: [RefClass; 3] = [RefClass::Code, RefClass::Local, RefClass::Shared];
}

impl fmt::Display for RefClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefClass::Code => write!(f, "code"),
            RefClass::Local => write!(f, "local"),
            RefClass::Shared => write!(f, "shared"),
        }
    }
}

/// Hit/miss counters broken down by access kind and reference class.
///
/// # Examples
///
/// ```
/// use decache_cache::{AccessKind, CacheStats, RefClass};
///
/// let mut s = CacheStats::default();
/// s.record(AccessKind::Read, RefClass::Code, true);
/// s.record(AccessKind::Read, RefClass::Code, false);
/// assert_eq!(s.total_references(), 2);
/// assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
/// assert_eq!(s.misses(AccessKind::Read, RefClass::Code), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    // Indexed [kind][class]: kind 0 = read, 1 = write; class 0 = code,
    // 1 = local, 2 = shared.
    hits: [[u64; 3]; 2],
    misses: [[u64; 3]; 2],
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    fn kind_slot(kind: AccessKind) -> usize {
        match kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }
    }

    fn class_slot(class: RefClass) -> usize {
        match class {
            RefClass::Code => 0,
            RefClass::Local => 1,
            RefClass::Shared => 2,
        }
    }

    /// Records one reference.
    pub fn record(&mut self, kind: AccessKind, class: RefClass, hit: bool) {
        let table = if hit {
            &mut self.hits
        } else {
            &mut self.misses
        };
        table[Self::kind_slot(kind)][Self::class_slot(class)] += 1;
    }

    /// Returns the hit count for a kind/class pair.
    pub fn hits(&self, kind: AccessKind, class: RefClass) -> u64 {
        self.hits[Self::kind_slot(kind)][Self::class_slot(class)]
    }

    /// Returns the miss count for a kind/class pair.
    pub fn misses(&self, kind: AccessKind, class: RefClass) -> u64 {
        self.misses[Self::kind_slot(kind)][Self::class_slot(class)]
    }

    /// Returns total references of all kinds and classes.
    pub fn total_references(&self) -> u64 {
        let sum = |t: &[[u64; 3]; 2]| t.iter().flatten().sum::<u64>();
        sum(&self.hits) + sum(&self.misses)
    }

    /// Returns total hits.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().flatten().sum()
    }

    /// Returns total misses.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().flatten().sum()
    }

    /// Returns total misses of one access kind across all classes.
    pub fn misses_by_kind(&self, kind: AccessKind) -> u64 {
        self.misses[Self::kind_slot(kind)].iter().sum()
    }

    /// The overall hit ratio `h` in `[0, 1]`; 0 for no references.
    ///
    /// The paper: "caches have routinely achieved hit ratios ... of about
    /// 95 percent" in uniprocessors (Section 1); `1/h` appears in the
    /// SBB bandwidth bound of Section 7 as the miss ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_references();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// The overall miss ratio (`1 - hit_ratio` when references exist).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.total_references();
        if total == 0 {
            0.0
        } else {
            self.total_misses() as f64 / total as f64
        }
    }

    /// Exports the raw counter tables `(hits, misses)`, indexed
    /// `[kind][class]` in [`RefClass::ALL`] order — the checkpoint
    /// form.
    pub fn checkpoint_state(&self) -> ([[u64; 3]; 2], [[u64; 3]; 2]) {
        (self.hits, self.misses)
    }

    /// Reconstructs counters from tables exported by
    /// [`CacheStats::checkpoint_state`].
    pub fn from_checkpoint(hits: [[u64; 3]; 2], misses: [[u64; 3]; 2]) -> Self {
        CacheStats { hits, misses }
    }

    /// The fraction of *all* references that are misses of the given
    /// kind/class — the unit in which Table 1-1 reports its columns.
    pub fn miss_fraction(&self, kind: AccessKind, class: RefClass) -> f64 {
        let total = self.total_references();
        if total == 0 {
            0.0
        } else {
            self.misses(kind, class) as f64 / total as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;
    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        for k in 0..2 {
            for c in 0..3 {
                self.hits[k][c] += rhs.hits[k][c];
                self.misses[k][c] += rhs.misses[k][c];
            }
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} hit_ratio={:.1}% (read misses={}, write misses={})",
            self.total_references(),
            self.hit_ratio() * 100.0,
            self.misses_by_kind(AccessKind::Read),
            self.misses_by_kind(AccessKind::Write),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_have_no_ratio() {
        let s = CacheStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.total_references(), 0);
    }

    #[test]
    fn record_and_query_each_cell() {
        let mut s = CacheStats::new();
        for kind in [AccessKind::Read, AccessKind::Write] {
            for class in RefClass::ALL {
                s.record(kind, class, true);
                s.record(kind, class, false);
                s.record(kind, class, false);
            }
        }
        for kind in [AccessKind::Read, AccessKind::Write] {
            for class in RefClass::ALL {
                assert_eq!(s.hits(kind, class), 1);
                assert_eq!(s.misses(kind, class), 2);
            }
        }
        assert_eq!(s.total_references(), 18);
        assert_eq!(s.total_hits(), 6);
        assert_eq!(s.total_misses(), 12);
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_fraction_is_over_total_references() {
        let mut s = CacheStats::new();
        // 3 code read hits + 1 shared read miss = 25% shared miss fraction.
        s.record(AccessKind::Read, RefClass::Code, true);
        s.record(AccessKind::Read, RefClass::Code, true);
        s.record(AccessKind::Read, RefClass::Code, true);
        s.record(AccessKind::Read, RefClass::Shared, false);
        assert!((s.miss_fraction(AccessKind::Read, RefClass::Shared) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn addition_merges_counters() {
        let mut a = CacheStats::new();
        a.record(AccessKind::Read, RefClass::Code, true);
        let mut b = CacheStats::new();
        b.record(AccessKind::Write, RefClass::Local, false);
        let c = a + b;
        assert_eq!(c.total_references(), 2);
        assert_eq!(c.hits(AccessKind::Read, RefClass::Code), 1);
        assert_eq!(c.misses(AccessKind::Write, RefClass::Local), 1);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CacheStats::new();
        s.record(AccessKind::Read, RefClass::Code, true);
        let text = s.to_string();
        assert!(text.contains("refs=1"));
        assert!(text.contains("hit_ratio=100.0%"));
    }

    #[test]
    fn class_display_names() {
        assert_eq!(RefClass::Code.to_string(), "code");
        assert_eq!(RefClass::Local.to_string(), "local");
        assert_eq!(RefClass::Shared.to_string(), "shared");
    }
}
