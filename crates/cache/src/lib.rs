//! Cache substrate for the `decache` simulator.
//!
//! Provides the storage half of a private per-processor cache: the address
//! [`Geometry`] (sets × ways × block words), a generic [`TagStore`]
//! parameterized by the per-line coherence state (so the same storage
//! serves RB, RWB, write-once, and every other protocol in
//! `decache-core`), per-class [`CacheStats`], and the [`CmStarCache`] —
//! the Cm*-style "code and local data only, write-through" emulation cache
//! behind the paper's motivating Table 1-1.
//!
//! The paper's schemes assume "a direct-mapping cache with a one word
//! blocksize" (Section 2, assumption 7); [`Geometry::direct_mapped`]
//! constructs exactly that, while the general form supports the
//! set-associative sweeps used in ablations.
//!
//! # Examples
//!
//! ```
//! use decache_cache::{Geometry, TagStore};
//! use decache_mem::{Addr, Word};
//!
//! // The paper's cache: direct-mapped, one-word blocks, 16 lines.
//! let mut store: TagStore<char> = TagStore::new(Geometry::direct_mapped(16));
//! store.insert(Addr::new(3), 'R', Word::new(7));
//! assert_eq!(store.get(Addr::new(3)).map(|e| e.data), Some(Word::new(7)));
//! // Address 19 maps to the same line and evicts address 3.
//! let evicted = store.insert(Addr::new(19), 'L', Word::new(9));
//! assert_eq!(evicted.map(|e| e.addr), Some(Addr::new(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emulation;
mod geometry;
mod stats;
mod tagstore;

pub use emulation::{CmStarCache, CmStarReport};
pub use geometry::Geometry;
pub use stats::{AccessKind, CacheStats, RefClass};
pub use tagstore::{
    Entry, EntryMut, EvictedLine, LineCheckpoint, ReplacementPolicy, TagStore, TagStoreCheckpoint,
};
