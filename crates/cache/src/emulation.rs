//! The Cm*-style emulation cache behind Table 1-1.
//!
//! Raskin's Cm* cache emulation experiments [RAS78], which the paper uses
//! as motivation, cached **only code and local data**, adopted a
//! **write-through policy for local data** ("writes to local data were
//! counted as cache misses since they caused communication external to the
//! processor/cache"), and treated **all references to shared data as cache
//! misses**. [`CmStarCache`] reproduces those rules exactly, and
//! [`CmStarReport`] renders the four columns of Table 1-1.

use crate::{AccessKind, CacheStats, Geometry, RefClass, TagStore};
use decache_mem::{Addr, Word};
use std::fmt;

/// The Cm* emulation cache: direct-mapped with one-word blocks, caching
/// code and local data reads only.
///
/// Classification is supplied by the caller (the Cm* experiments knew
/// statically which segment each reference touched), in contrast to the
/// RB/RWB schemes where classification is dynamic.
///
/// # Examples
///
/// ```
/// use decache_cache::{AccessKind, CmStarCache, RefClass};
/// use decache_mem::Addr;
///
/// let mut cache = CmStarCache::new(256);
/// // First touch misses, second hits:
/// assert!(!cache.access(Addr::new(7), AccessKind::Read, RefClass::Code));
/// assert!(cache.access(Addr::new(7), AccessKind::Read, RefClass::Code));
/// // Shared references never hit:
/// assert!(!cache.access(Addr::new(7), AccessKind::Read, RefClass::Shared));
/// ```
#[derive(Debug, Clone)]
pub struct CmStarCache {
    store: TagStore<()>,
    stats: CacheStats,
}

impl CmStarCache {
    /// Creates a direct-mapped emulation cache of `lines` one-word lines
    /// (Table 1-1 uses 256, 512, 1024, and 2048).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or not a power of two.
    pub fn new(lines: usize) -> Self {
        CmStarCache {
            store: TagStore::new(Geometry::direct_mapped(lines)),
            stats: CacheStats::new(),
        }
    }

    /// Creates a fully-associative (true-LRU) emulation cache of `words`
    /// one-word lines.
    ///
    /// The Table 1-1 regeneration uses this variant: the synthetic
    /// streams are calibrated by LRU stack distance, which corresponds
    /// exactly to a fully-associative LRU cache; a direct-mapped array
    /// adds conflict misses on top (measurable with [`CmStarCache::new`],
    /// and reported as an ablation).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn fully_associative(words: usize) -> Self {
        CmStarCache {
            store: TagStore::new(Geometry::new(1, words, 1)),
            stats: CacheStats::new(),
        }
    }

    /// Returns the cache size in words.
    pub fn size(&self) -> u64 {
        self.store.geometry().total_words()
    }

    /// Processes one reference and returns `true` on a cache hit (i.e. no
    /// external communication was required).
    ///
    /// The Cm* rules, per the paper's introduction:
    ///
    /// * **shared** references (any kind) always miss;
    /// * **local writes** always miss (write-through), but update/allocate
    ///   the line so subsequent local reads hit;
    /// * **code and local reads** hit if present, else allocate and miss;
    /// * **code writes** do not occur (code is read-only) — treated as
    ///   misses without allocation if a workload emits one anyway.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, class: RefClass) -> bool {
        let hit = match (class, kind) {
            (RefClass::Shared, _) => false,
            (RefClass::Local, AccessKind::Write) => {
                // Write-through: counts as a miss (external traffic), but
                // the cached copy is kept current.
                self.store.insert(addr, (), Word::ZERO);
                false
            }
            (RefClass::Code | RefClass::Local, AccessKind::Read) => {
                // `get_mut` (not `contains`) so the hit refreshes the
                // line's recency — the store must behave as true LRU.
                if self.store.get_mut(addr).is_some() {
                    true
                } else {
                    self.store.insert(addr, (), Word::ZERO);
                    false
                }
            }
            (RefClass::Code, AccessKind::Write) => false,
        };
        self.stats.record(kind, class, hit);
        hit
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Produces the Table 1-1 row for this cache's run so far.
    pub fn report(&self) -> CmStarReport {
        CmStarReport::from_stats(self.size(), self.stats)
    }

    /// Clears the cache contents and statistics.
    pub fn reset(&mut self) {
        self.store.clear();
        self.stats = CacheStats::new();
    }

    /// Clears the statistics while keeping the cache contents — used to
    /// discard warm-up transients before measuring.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }
}

/// One row of Table 1-1: the fractions of all references that caused
/// misses, classified by operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmStarReport {
    /// Cache size in words ("Cache Size (set size 1 word)").
    pub cache_size: u64,
    /// Fraction of all references that were read misses, in percent
    /// ("Read Miss Ratio").
    pub read_miss_pct: f64,
    /// Fraction of all references that were local writes, in percent
    /// ("Local Writes" — all local writes miss under write-through).
    pub local_write_pct: f64,
    /// Fraction of all references to shared read/write data, in percent
    /// ("Shared Read/Write" — all shared references miss).
    pub shared_pct: f64,
    /// Sum of the above ("Total Miss Ratio").
    pub total_miss_pct: f64,
}

impl CmStarReport {
    /// Builds a report from raw statistics.
    pub fn from_stats(cache_size: u64, stats: CacheStats) -> Self {
        let pct = |x: f64| x * 100.0;
        // "Read Miss Ratio" in the table covers the cachable classes
        // (code + local reads); shared misses are reported in their own
        // column regardless of operation.
        let read_miss = stats.miss_fraction(AccessKind::Read, RefClass::Code)
            + stats.miss_fraction(AccessKind::Read, RefClass::Local);
        let local_writes = stats.miss_fraction(AccessKind::Write, RefClass::Local);
        let shared = stats.miss_fraction(AccessKind::Read, RefClass::Shared)
            + stats.miss_fraction(AccessKind::Write, RefClass::Shared);
        CmStarReport {
            cache_size,
            read_miss_pct: pct(read_miss),
            local_write_pct: pct(local_writes),
            shared_pct: pct(shared),
            total_miss_pct: pct(read_miss + local_writes + shared),
        }
    }
}

impl fmt::Display for CmStarReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}",
            self.cache_size,
            self.read_miss_pct,
            self.local_write_pct,
            self.shared_pct,
            self.total_miss_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_references_always_miss() {
        let mut c = CmStarCache::new(16);
        for _ in 0..3 {
            assert!(!c.access(Addr::new(1), AccessKind::Read, RefClass::Shared));
            assert!(!c.access(Addr::new(1), AccessKind::Write, RefClass::Shared));
        }
    }

    #[test]
    fn local_writes_miss_but_warm_the_line() {
        let mut c = CmStarCache::new(16);
        assert!(!c.access(Addr::new(2), AccessKind::Write, RefClass::Local));
        // The write-through allocated the line, so the read hits.
        assert!(c.access(Addr::new(2), AccessKind::Read, RefClass::Local));
        // Another write still misses (write-through).
        assert!(!c.access(Addr::new(2), AccessKind::Write, RefClass::Local));
    }

    #[test]
    fn code_reads_hit_after_first_touch() {
        let mut c = CmStarCache::new(16);
        assert!(!c.access(Addr::new(5), AccessKind::Read, RefClass::Code));
        assert!(c.access(Addr::new(5), AccessKind::Read, RefClass::Code));
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        let mut c = CmStarCache::new(16);
        c.access(Addr::new(3), AccessKind::Read, RefClass::Code);
        c.access(Addr::new(19), AccessKind::Read, RefClass::Code); // same line
        assert!(!c.access(Addr::new(3), AccessKind::Read, RefClass::Code));
    }

    #[test]
    fn report_columns_sum_to_total() {
        let mut c = CmStarCache::new(16);
        // 6 code reads (1 miss after warmup), 2 local writes, 2 shared.
        for _ in 0..6 {
            c.access(Addr::new(0), AccessKind::Read, RefClass::Code);
        }
        c.access(Addr::new(1), AccessKind::Write, RefClass::Local);
        c.access(Addr::new(1), AccessKind::Write, RefClass::Local);
        c.access(Addr::new(2), AccessKind::Read, RefClass::Shared);
        c.access(Addr::new(2), AccessKind::Write, RefClass::Shared);
        let r = c.report();
        assert!(
            (r.read_miss_pct + r.local_write_pct + r.shared_pct - r.total_miss_pct).abs() < 1e-9
        );
        assert_eq!(r.cache_size, 16);
        // 1 read miss + 2 local writes + 2 shared = 5 misses of 10 refs.
        assert!((r.total_miss_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = CmStarCache::new(16);
        c.access(Addr::new(0), AccessKind::Read, RefClass::Code);
        c.reset();
        assert_eq!(c.stats().total_references(), 0);
        assert!(!c.access(Addr::new(0), AccessKind::Read, RefClass::Code));
    }

    #[test]
    fn report_display_has_five_columns() {
        let c = CmStarCache::new(256);
        let row = c.report().to_string();
        assert_eq!(row.split_whitespace().count(), 5);
        assert!(row.trim_start().starts_with("256"));
    }
}
