//! Exhaustive IR-vs-implementation round-trips: the compiled rule
//! tables must agree with the hand-written declarative tables rule for
//! rule, and every rule's rendered effect must agree byte-for-byte with
//! the introspection probe of the executing implementation, over the
//! full transition domain of every protocol.

use decache_core::introspect::{probe_outcome, transition_domain};
use decache_core::ProtocolKind;
use decache_protocol_ir::{compile, hand_table, table_for};

/// The paper's seven hand-coded schemes (MESI has no hand-coded
/// implementation to compile — it *is* its table).
const HAND_CODED: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// The compiler (probing the Rust state machines) and the hand-written
/// declarative tables are two independent transcriptions of the same
/// protocols; a slip in either direction fails here.
#[test]
fn compiled_tables_equal_the_hand_written_tables() {
    for kind in HAND_CODED {
        let compiled = compile(kind.build().as_ref());
        let hand = hand_table(kind).unwrap_or_else(|| panic!("{kind}: no hand-written table"));
        assert_eq!(
            compiled, hand,
            "{kind}: compiled table differs from the hand-written one"
        );
    }
}

/// Every cell of every protocol's full transition domain: the rule
/// table's effect renders byte-for-byte as the implementation probe.
/// This is the guarantee that the IR is a faithful *encoding*, not a
/// paraphrase — `figure_3_1`-style renderings from either source are
/// interchangeable.
#[test]
fn every_rule_effect_renders_as_the_implementation_probe() {
    let all: Vec<ProtocolKind> = HAND_CODED.into_iter().chain([ProtocolKind::Mesi]).collect();
    for kind in all {
        let protocol = kind.build();
        let table = table_for(kind);
        let mut cells = 0usize;
        for key in transition_domain(protocol.as_ref()) {
            // Guarded cells collapse to their shared branch under the
            // context-free probe; `matching` with `other_readable =
            // true` selects exactly that branch.
            let rule = table
                .matching(key.state, key.input, true)
                .unwrap_or_else(|| panic!("{kind}: no rule for {key}"));
            assert_eq!(
                Some(rule.effect.render()),
                probe_outcome(protocol.as_ref(), key),
                "{kind}: {key} renders differently from the probe"
            );
            cells += 1;
        }
        assert!(cells > 20, "{kind}: suspiciously small domain ({cells})");
    }
}

/// MESI is executed by the generic interpreter from pure data: the
/// built protocol's own introspection domain must round-trip through
/// the same table it was built from.
#[test]
fn mesi_probe_domain_is_total_and_consistent() {
    let protocol = ProtocolKind::Mesi.build();
    assert_eq!(protocol.name(), "MESI");
    for key in transition_domain(protocol.as_ref()) {
        assert!(
            probe_outcome(protocol.as_ref(), key).is_some(),
            "MESI: probe panicked on {key}"
        );
    }
}

/// The table-driven kinds agree with the compiler on vocabulary-level
/// metadata too, not just rules.
#[test]
fn table_metadata_round_trips() {
    for kind in HAND_CODED {
        let protocol = kind.build();
        let table = table_for(kind);
        assert_eq!(table.name, protocol.name());
        assert_eq!(table.states, protocol.states());
        assert_eq!(table.uses_bus_invalidate, protocol.uses_bus_invalidate());
        assert_eq!(
            table.broadcasts_write_data,
            protocol.broadcasts_write_data()
        );
    }
}
