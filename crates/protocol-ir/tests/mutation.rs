//! Mutation tests: the static analyzer must catch deliberately seeded
//! bad rules — with diagnostics that *name the offending rule*, not
//! just a failed verdict. Each mutant seeds one of the classic protocol
//! transcription errors.

use decache_core::introspect::{SnoopKind, TableInput};
use decache_core::ir::{Effect, Guard, Rule, RuleTable};
use decache_core::{ir, LineState, ProtocolKind};
use decache_protocol_ir::{analyze, table_for, CheckKind};

fn rule_position(
    table: &RuleTable,
    from: Option<LineState>,
    input: TableInput,
    guard: Guard,
) -> usize {
    table
        .rules
        .iter()
        .position(|r| r.from == from && r.input == input && r.guard == guard)
        .unwrap_or_else(|| panic!("no rule for {from:?} {input:?} [{guard}]"))
}

/// Mutant 1 — **missing invalidation**: RWB's `R --snoop:BI` is changed
/// to keep the line readable instead of invalidating it. After the
/// invalidating writer claims the line Local and writes locally, the
/// surviving `R` copy is stale — the analyzer must refute invariant
/// preservation and name the bad rule in the fired-rule trail.
#[test]
fn a_missing_bus_invalidate_is_caught_by_name() {
    let mut table = table_for(ProtocolKind::Rwb);
    let position = rule_position(
        &table,
        Some(LineState::Readable),
        TableInput::Snoop(SnoopKind::Invalidate),
        Guard::Always,
    );
    table.rules[position].effect = Effect::Next {
        next: LineState::Readable,
        capture: false,
    };

    let analysis = analyze(&table, true);
    assert!(!analysis.proved(), "mutant passed the analyzer");
    let named: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| {
            d.check == CheckKind::InvariantPreservation
                && (d.rule.as_deref() == Some("R --snoop:BI") || d.message.contains("R --snoop:BI"))
        })
        .collect();
    assert!(
        !named.is_empty(),
        "no diagnostic names R --snoop:BI: {:?}",
        analysis.diagnostics
    );
}

/// Mutant 2 — **stale supply**: RB's interrupt-and-supply row is
/// deleted, so an owning `L` cache lets bus reads complete from stale
/// memory. No syntactic check can see this (the supply row is
/// optional); only the reachability argument catches the stale serve,
/// attributing it to the read rules that fired.
#[test]
fn a_dropped_supply_rule_is_caught_as_a_stale_serve() {
    let mut table = table_for(ProtocolKind::Rb);
    let position = rule_position(
        &table,
        Some(LineState::Local),
        TableInput::Supply,
        Guard::Always,
    );
    table.rules.remove(position);

    let analysis = analyze(&table, false);
    assert!(!analysis.proved(), "mutant passed the analyzer");
    let stale_serves: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| {
            d.check == CheckKind::InvariantPreservation
                && d.message.contains("stale")
                && d.rule.is_some()
        })
        .collect();
    assert!(
        !stale_serves.is_empty(),
        "no rule-attributed staleness diagnostic: {:?}",
        analysis.diagnostics
    );
}

/// Mutant 3 — **non-total guard**: MESI's `NP --own:BR` fill loses its
/// `[other-readable]` branch, leaving the guarded pair half-covered.
/// The analyzer must refuse the table *syntactically* (before any
/// exploration could panic), naming the cell and the missing branch.
#[test]
fn a_half_covered_guard_pair_is_caught_by_name() {
    let mut table = ir::mesi();
    let position = rule_position(
        &table,
        None,
        TableInput::OwnComplete(decache_core::BusIntent::Read),
        Guard::OtherReadableHolder,
    );
    table.rules.remove(position);

    let analysis = analyze(&table, true);
    assert!(!analysis.proved(), "mutant passed the analyzer");
    assert_eq!(
        analysis.abstract_states, 0,
        "syntactically broken table must not be explored"
    );
    let totality: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.check == CheckKind::Totality)
        .collect();
    assert!(
        totality.iter().any(|d| {
            d.rule.as_deref() == Some("NP --own:BR") && d.message.contains("other-readable")
        }),
        "no totality diagnostic names NP --own:BR's missing branch: {totality:?}"
    );
}

/// Mutant 4 — **duplicate rule**: two unconditional rules on one cell
/// is ambiguity the interpreter would resolve arbitrarily; the analyzer
/// must flag determinism, again without exploring.
#[test]
fn a_duplicate_rule_is_caught_as_nondeterminism() {
    let mut table = table_for(ProtocolKind::WriteThrough);
    table.rules.push(Rule {
        from: Some(LineState::Valid),
        input: TableInput::CpuRead,
        guard: Guard::Always,
        effect: Effect::Hit {
            next: LineState::Valid,
        },
    });
    table.normalize();

    let analysis = analyze(&table, true);
    assert!(!analysis.proved());
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.check == CheckKind::Determinism && d.rule.as_deref() == Some("V --CR")),
        "no determinism diagnostic names V --CR: {:?}",
        analysis.diagnostics
    );
}

/// Mutant 5 — **asymmetric guard**: a configuration guard on a snoop
/// row cannot be evaluated PE-symmetrically (the controller samples
/// sharers only on its own fill); the symmetry check must name it.
#[test]
fn a_guard_outside_the_fill_is_caught_as_asymmetric() {
    let mut table = table_for(ProtocolKind::Rb);
    let position = rule_position(
        &table,
        Some(LineState::Readable),
        TableInput::Snoop(SnoopKind::Write),
        Guard::Always,
    );
    table.rules[position].guard = Guard::NoOtherReadableHolder;
    table.rules.push(Rule {
        guard: Guard::OtherReadableHolder,
        ..table.rules[position]
    });
    table.normalize();

    let analysis = analyze(&table, false);
    assert!(!analysis.proved());
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.check == CheckKind::Symmetry && d.message.contains("own-completion")),
        "no symmetry diagnostic: {:?}",
        analysis.diagnostics
    );
}
