//! # decache-protocol-ir
//!
//! Protocols as provable data: the guarded-action rule compiler, the
//! hand-written declarative tables, and the **per-rule static analyzer**.
//!
//! The IR itself ([`decache_core::ir`]) lives in the core crate so the
//! machine can execute table-defined protocols; this crate holds
//! everything that reasons *about* tables:
//!
//! * [`compile`] — derives a [`RuleTable`] for any [`Protocol`]
//!   implementation by probing its `transition_domain`, turning the
//!   hand-coded Rust state machines into data;
//! * [`hand_table`] — independent, hand-written declarative tables for
//!   the paper's seven schemes, cross-checked against [`compile`] so a
//!   transcription slip in either direction fails a test;
//! * [`analyze`] — the static analyzer: totality, determinism,
//!   PE-symmetry, and coherence-invariant preservation proven over a
//!   **counting abstraction** whose `Many` element covers every cache
//!   count `n` at once (the small-model argument), plus dead-rule and
//!   unreachable-state detection that subsumes the old coverage lint.
//!
//! `decache_verify::static_check` orchestrates these into the CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod compile;
mod tables;

pub use analyze::{analyze, Analysis, CheckKind, Diagnostic};
pub use compile::compile;
pub use tables::hand_table;

use decache_core::ir::RuleTable;
use decache_core::ProtocolKind;

/// The rule table for a protocol kind: MESI's native IR table, or the
/// compiled form of a hand-coded protocol.
pub fn table_for(kind: ProtocolKind) -> RuleTable {
    match kind {
        ProtocolKind::Mesi => decache_core::ir::mesi(),
        _ => compile(kind.build().as_ref()),
    }
}

/// Whether the analyzer (like the product checker) should accept the
/// *intermediate* configuration class for this protocol. RB proves the
/// stronger shared-or-local lemma; everything with a first-write-style
/// state (RWB's `F`, write-once's and MESI's exclusive-clean) needs
/// intermediate.
pub fn allow_intermediate(kind: ProtocolKind) -> bool {
    !matches!(kind, ProtocolKind::Rb | ProtocolKind::RbNoBroadcast)
}

/// Analyzer defaults for [`table_for`]: [`analyze`] at the kind's
/// legality class.
pub fn analyze_kind(kind: ProtocolKind) -> Analysis {
    analyze(&table_for(kind), allow_intermediate(kind))
}
