//! Deriving a rule table from any [`Protocol`] implementation.

use decache_core::introspect::{transition_domain, TableInput, TransitionKey};
use decache_core::ir::{Effect, Guard, Rule, RuleTable};
use decache_core::{CpuOutcome, Protocol};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compiles a [`Protocol`] implementation to its guarded-action rule
/// table by probing every cell of its transition domain.
///
/// The probe is context-free, so every compiled rule carries
/// [`Guard::Always`] — correct for the paper's seven schemes, whose
/// decisions never depend on other caches' states. (Compiling a
/// sharer-dependent protocol like MESI through this path would collapse
/// its guarded fill to the shared branch, which is why MESI's table is
/// authored directly in [`decache_core::ir::mesi`] instead.)
///
/// Cells on which the implementation panics produce no rule; the
/// analyzer then reports them as totality holes.
pub fn compile(protocol: &dyn Protocol) -> RuleTable {
    let rules = transition_domain(protocol)
        .into_iter()
        .filter_map(|key| {
            probe_effect(protocol, key).map(|effect| Rule {
                from: key.state,
                input: key.input,
                guard: Guard::Always,
                effect,
            })
        })
        .collect();
    let mut table = RuleTable {
        name: protocol.name(),
        states: protocol.states(),
        uses_bus_invalidate: protocol.uses_bus_invalidate(),
        broadcasts_write_data: protocol.broadcasts_write_data(),
        rules,
    };
    table.normalize();
    table
}

/// Probes one cell, mapping the trait outcome to its [`Effect`];
/// `None` when the implementation panics (non-total handling).
fn probe_effect(protocol: &dyn Protocol, key: TransitionKey) -> Option<Effect> {
    let cpu = |out: CpuOutcome| match out {
        CpuOutcome::Hit { next } => Effect::Hit { next },
        CpuOutcome::Miss { intent } => Effect::Issue { intent },
    };
    catch_unwind(AssertUnwindSafe(|| match key.input {
        TableInput::CpuRead => cpu(protocol.cpu_read(key.state)),
        TableInput::CpuWrite => cpu(protocol.cpu_write(key.state)),
        TableInput::OwnComplete(intent) => Effect::Next {
            next: protocol.own_complete(key.state, intent),
            capture: false,
        },
        TableInput::OwnLockedRead => Effect::Next {
            next: protocol.own_locked_read_complete(key.state),
            capture: false,
        },
        TableInput::OwnUnlockWrite => Effect::Next {
            next: protocol.own_unlock_write_complete(key.state),
            capture: false,
        },
        TableInput::Snoop(kind) => {
            let state = key.state.expect("snoop rows exist only for held states");
            let out = protocol.snoop(state, kind.event());
            Effect::Next {
                next: out.next,
                capture: out.capture,
            }
        }
        TableInput::Supply => {
            let state = key.state.expect("supply rows exist only for held states");
            Effect::Supply {
                next: protocol.after_supply(state),
            }
        }
        TableInput::Evict => {
            let state = key.state.expect("evict rows exist only for held states");
            Effect::Evict {
                writeback: protocol.writeback_on_evict(state),
            }
        }
    }))
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::introspect::probe_outcome;
    use decache_core::ProtocolKind;

    /// The compiled effect of every domain cell renders byte-for-byte as
    /// the probe of the original implementation.
    #[test]
    fn compiled_effects_render_as_probe_outcomes() {
        let p = ProtocolKind::Rwb.build();
        let table = compile(p.as_ref());
        for key in transition_domain(p.as_ref()) {
            let rule = table
                .matching(key.state, key.input, true)
                .unwrap_or_else(|| panic!("no compiled rule for {key}"));
            assert_eq!(Some(rule.effect.render()), probe_outcome(p.as_ref(), key));
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let p = ProtocolKind::WriteOnce.build();
        assert_eq!(compile(p.as_ref()), compile(p.as_ref()));
    }
}
