//! The per-rule static analyzer: totality, determinism, PE-symmetry,
//! and coherence-invariant preservation over **all** cache counts.
//!
//! # The small-model argument
//!
//! The dynamic product checker in `decache-verify` explores the exact
//! product machine for a fixed `n` (2, 3, 4 caches). This analyzer
//! instead explores a **counting abstraction**: an abstract state maps
//! each `(line state, holds-latest)` cell kind to a count drawn from
//! `{One, Many}`, where `Many` stands for *two or more*, plus an
//! unbounded pool of not-present caches and a distinguished slot for a
//! Test-and-Set lock holder. Every event of the product machine — CPU
//! reads and writes, the supplier-interrupt bus read, broadcast snoops,
//! Test-and-Set cycles, evictions — is replayed on the counts, with the
//! pointwise snoop maps and nondeterministic `Many` decrements
//! over-approximating every concrete interleaving at every `n ≥ 1`:
//! any concrete product state of any size maps to a reachable abstract
//! state. The coherence invariants (legal configuration classes,
//! owner-holds-latest, no-owner ⇒ memory latest and every readable
//! copy latest, read hits serve the latest value) are checked on every
//! reachable abstract state by materializing counts (`One` → 1 copy,
//! `Many` → 2 — enough, since the invariants only distinguish zero, one,
//! and at-least-two holders). A violation therefore refutes the
//! protocol for *some* n; a clean fixpoint proves it for *all* n. That
//! is strictly stronger than the explored-n guarantee — at the price of
//! abstraction: a reported violation names the rules that fired but
//! only an abstract configuration, not a concrete trace (the dynamic
//! checker's witness machinery still provides those for small n).
//!
//! The same fixpoint yields **dead rules** (never fired on any abstract
//! path) and unreachable states. Because the abstraction
//! over-approximates reachability, its dead set is a *subset* of any
//! coverage-based dead set: statically-dead rules are dead at every n.

use decache_core::introspect::{SnoopKind, TableInput, TransitionKey};
use decache_core::ir::{Effect, Guard, Rule, RuleTable};
use decache_core::{BusIntent, Configuration, LineState};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt;

/// Which property a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// A `(state, input)` cell of the domain matched by no rule, or a
    /// guarded cell missing one branch of the complementary pair.
    Totality,
    /// A cell matched by more than one rule in some configuration.
    Determinism,
    /// A rule outside the domain or with the wrong effect shape for its
    /// input class.
    WellFormed,
    /// A guard placed where the execution model cannot evaluate it
    /// PE-symmetrically.
    Symmetry,
    /// A reachable abstract state or transition violating the
    /// single-writer / valid-readers coherence invariant.
    InvariantPreservation,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Totality => write!(f, "totality"),
            CheckKind::Determinism => write!(f, "determinism"),
            CheckKind::WellFormed => write!(f, "well-formed"),
            CheckKind::Symmetry => write!(f, "symmetry"),
            CheckKind::InvariantPreservation => write!(f, "invariant"),
        }
    }
}

/// One analyzer finding, attributed to a rule (or cell) by name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// The property violated.
    pub check: CheckKind,
    /// The rule or cell the finding names (`"R --snoop:BI"`,
    /// `"NP --own:BR [other-readable]"`), when attributable.
    pub rule: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule {
            Some(rule) => write!(f, "[{}] {rule}: {}", self.check, self.message),
            None => write!(f, "[{}] {}", self.check, self.message),
        }
    }
}

/// The analyzer's verdict on one rule table.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The protocol's display name.
    pub protocol: String,
    /// All findings, ordered by check kind then rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Rules that can never fire at any cache count, by rule id.
    pub dead_rules: Vec<String>,
    /// Declared states never reached at any cache count.
    pub unreachable_states: Vec<LineState>,
    /// Size of the explored abstract state space (0 when syntactic
    /// checks already failed and exploration was skipped).
    pub abstract_states: usize,
}

impl Analysis {
    /// Whether totality, determinism, symmetry, and invariant
    /// preservation all hold (dead rules are reported, not failures).
    pub fn proved(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The diagnostics of one check kind.
    pub fn of_kind(&self, kind: CheckKind) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.check == kind)
            .collect()
    }
}

/// Bound on the abstract fixpoint, far above any real protocol's
/// reachable set (tens to hundreds of states).
const MAX_ABSTRACT_STATES: usize = 200_000;
/// Stop accumulating invariant findings after this many distinct ones.
const MAX_VIOLATIONS: usize = 16;

/// Statically analyzes a rule table. `allow_intermediate` selects the
/// legality class exactly as the dynamic product checker does: RB
/// proves shared-or-local, RWB/write-once/MESI admit intermediate.
pub fn analyze(table: &RuleTable, allow_intermediate: bool) -> Analysis {
    let mut diagnostics = syntactic_checks(table);
    diagnostics.sort();
    diagnostics.dedup();
    if !diagnostics.is_empty() {
        // A non-total or ambiguous table cannot be executed (the
        // interpreter would panic mid-exploration); report the
        // syntactic findings and skip reachability.
        return Analysis {
            protocol: table.name.clone(),
            diagnostics,
            dead_rules: Vec::new(),
            unreachable_states: Vec::new(),
            abstract_states: 0,
        };
    }

    let mut explorer = Explorer::new(table, allow_intermediate);
    let states_explored = explorer.run();
    let mut diagnostics: Vec<Diagnostic> = explorer.violations.into_iter().collect();
    diagnostics.sort();

    let fired = explorer.fired;
    let mut dead_rules: Vec<String> = table
        .rules
        .iter()
        .map(|r| r.id())
        .filter(|id| !fired.contains(id))
        .collect();
    dead_rules.sort();
    let unreachable_states: Vec<LineState> = table
        .states
        .iter()
        .copied()
        .filter(|s| !explorer.seen_states.contains(s))
        .collect();

    Analysis {
        protocol: table.name.clone(),
        diagnostics,
        dead_rules,
        unreachable_states,
        abstract_states: states_explored,
    }
}

// ---------------------------------------------------------------------
// Syntactic pass: totality, determinism, shape, symmetry.
// ---------------------------------------------------------------------

/// The input classes of the domain for one from-state, mirroring
/// `decache_core::introspect::transition_domain` (BI rows gated, supply
/// optional).
fn domain_inputs(table: &RuleTable, held: bool) -> Vec<(TableInput, bool)> {
    let bi = table.uses_bus_invalidate;
    let mut inputs = vec![
        (TableInput::CpuRead, true),
        (TableInput::CpuWrite, true),
        (TableInput::OwnComplete(BusIntent::Read), true),
        (TableInput::OwnComplete(BusIntent::Write), true),
    ];
    if bi {
        inputs.push((TableInput::OwnComplete(BusIntent::Invalidate), true));
    }
    inputs.push((TableInput::OwnLockedRead, true));
    inputs.push((TableInput::OwnUnlockWrite, true));
    if held {
        for kind in SnoopKind::ALL {
            if kind == SnoopKind::Invalidate && !bi {
                continue;
            }
            inputs.push((TableInput::Snoop(kind), true));
        }
        inputs.push((TableInput::Supply, false)); // optional: presence defines supplying states
        inputs.push((TableInput::Evict, true));
    }
    inputs
}

fn shape_ok(input: TableInput, effect: Effect) -> bool {
    match input {
        TableInput::CpuRead | TableInput::CpuWrite => {
            matches!(effect, Effect::Hit { .. } | Effect::Issue { .. })
        }
        TableInput::OwnComplete(_)
        | TableInput::OwnLockedRead
        | TableInput::OwnUnlockWrite
        | TableInput::Snoop(_) => matches!(effect, Effect::Next { .. }),
        TableInput::Supply => matches!(effect, Effect::Supply { .. }),
        TableInput::Evict => matches!(effect, Effect::Evict { .. }),
    }
}

fn syntactic_checks(table: &RuleTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |check, rule: Option<String>, message: String| Diagnostic {
        check,
        rule,
        message,
    };

    let state_set: BTreeSet<LineState> = table.states.iter().copied().collect();
    let mut domain: BTreeSet<(Option<LineState>, TableInput)> = BTreeSet::new();
    let mut required: Vec<(Option<LineState>, TableInput)> = Vec::new();
    for state in std::iter::once(None).chain(table.states.iter().copied().map(Some)) {
        for (input, req) in domain_inputs(table, state.is_some()) {
            domain.insert((state, input));
            if req {
                required.push((state, input));
            }
        }
    }

    // Every rule must sit on a domain cell with the right effect shape.
    for rule in &table.rules {
        if let Some(s) = rule.from {
            if !state_set.contains(&s) {
                out.push(diag(
                    CheckKind::WellFormed,
                    Some(rule.id()),
                    format!("from-state {s} is not in the declared state vocabulary"),
                ));
                continue;
            }
        }
        if !domain.contains(&(rule.from, rule.input)) {
            out.push(diag(
                CheckKind::WellFormed,
                Some(rule.id()),
                "rule sits outside the transition domain".to_owned(),
            ));
        }
        if !shape_ok(rule.input, rule.effect) {
            out.push(diag(
                CheckKind::WellFormed,
                Some(rule.id()),
                format!(
                    "effect {} has the wrong shape for this input class",
                    rule.effect
                ),
            ));
        }
        // PE-symmetry: the guard vocabulary is PE-anonymous by
        // construction, and the execution model samples it at exactly
        // one point — the read-miss fill. A guard anywhere else cannot
        // be evaluated symmetrically by the controller.
        if rule.guard != Guard::Always && !matches!(rule.input, TableInput::OwnComplete(_)) {
            out.push(diag(
                CheckKind::Symmetry,
                Some(rule.id()),
                "configuration guards are only evaluable on own-completion fills".to_owned(),
            ));
        }
    }

    // Per-cell totality and determinism over the guard space.
    for (state, input) in domain {
        let cell = TransitionKey { state, input };
        let rules = table.rules_for(state, input);
        let guards: Vec<Guard> = rules.iter().map(|r| r.guard).collect();
        let count = |g: Guard| guards.iter().filter(|&&x| x == g).count();
        let (always, no_other, other) = (
            count(Guard::Always),
            count(Guard::NoOtherReadableHolder),
            count(Guard::OtherReadableHolder),
        );
        if always > 1 || no_other > 1 || other > 1 {
            out.push(diag(
                CheckKind::Determinism,
                Some(cell.to_string()),
                "duplicate rules on the same cell and guard".to_owned(),
            ));
        }
        if always >= 1 && (no_other + other) >= 1 {
            out.push(diag(
                CheckKind::Determinism,
                Some(cell.to_string()),
                "an unconditional rule overlaps a guarded rule".to_owned(),
            ));
        }
        let covered = always >= 1 || (no_other >= 1 && other >= 1);
        let requires_rule = required.contains(&(state, input));
        if requires_rule && !covered {
            let message = if no_other + other >= 1 {
                let missing = if no_other == 0 {
                    Guard::NoOtherReadableHolder
                } else {
                    Guard::OtherReadableHolder
                };
                format!("guarded cell is non-total: missing the [{missing}] branch")
            } else {
                "no rule matches this cell".to_owned()
            };
            out.push(diag(CheckKind::Totality, Some(cell.to_string()), message));
        }
        if !requires_rule && (no_other + other) >= 1 {
            // Supply rows must be unconditional: the supplier is chosen
            // before the configuration bit is sampled.
            out.push(diag(
                CheckKind::Determinism,
                Some(cell.to_string()),
                "optional rows cannot carry configuration guards".to_owned(),
            ));
        }
    }

    out
}

// ---------------------------------------------------------------------
// Abstract reachability: the counting model.
// ---------------------------------------------------------------------

/// `Many` saturates at "two or more" — the invariants never distinguish
/// beyond that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Count {
    One,
    Many,
}

/// One tracked cache line: its state and whether it holds the latest
/// value written to the (single, abstract) address.
type Cell = (LineState, bool);

/// An abstract configuration: counts per cell kind, the memory's
/// latest bit, and the Test-and-Set lock holder's cell (held out of the
/// counts while the lock is held). The pool of not-present caches is
/// unbounded and implicit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Abs {
    cells: BTreeMap<Cell, Count>,
    mem_latest: bool,
    locked: Option<Cell>,
}

impl Abs {
    fn initial() -> Self {
        Abs {
            cells: BTreeMap::new(),
            mem_latest: true,
            locked: None,
        }
    }

    /// Adds one line of kind `cell`, saturating the count.
    fn add(&mut self, cell: Cell) {
        self.cells
            .entry(cell)
            .and_modify(|c| *c = Count::Many)
            .or_insert(Count::One);
    }

    /// Worlds after removing one line of kind `cell` (the `Many`
    /// decrement is nondeterministic: the remainder may be one or many).
    fn take_one(&self, cell: Cell) -> Vec<Abs> {
        match self.cells.get(&cell) {
            Some(Count::One) => {
                let mut rest = self.clone();
                rest.cells.remove(&cell);
                vec![rest]
            }
            Some(Count::Many) => {
                let mut one = self.clone();
                one.cells.insert(cell, Count::One);
                vec![one, self.clone()]
            }
            None => Vec::new(),
        }
    }

    /// Does any tracked line (including the lock holder) hold the
    /// address in a locally-readable state?
    fn any_readable(&self) -> bool {
        self.cells.keys().any(|(s, _)| s.is_readable_locally())
            || self.locked.is_some_and(|(s, _)| s.is_readable_locally())
    }
}

/// How a snoop updates the latest bit of a snooped line.
#[derive(Clone, Copy)]
enum LatestRule {
    /// Supply-substituted write: whatever was cached is superseded; a
    /// capture copies the supplier's data (`capture && supplier.latest`).
    CaptureAnd(bool),
    /// Ordinary bus write: a capture takes the just-written (latest)
    /// value (`capture`).
    Capture,
    /// Bus invalidate: the line never holds the latest value after.
    Stale,
    /// Read broadcast: a capture takes whatever memory served
    /// (`capture ? mem_latest : old`).
    CaptureMem(bool),
}

struct Explorer<'a> {
    table: &'a RuleTable,
    allow_intermediate: bool,
    fired: BTreeSet<String>,
    seen_states: BTreeSet<LineState>,
    violations: BTreeSet<Diagnostic>,
}

impl<'a> Explorer<'a> {
    fn new(table: &'a RuleTable, allow_intermediate: bool) -> Self {
        Explorer {
            table,
            allow_intermediate,
            fired: BTreeSet::new(),
            seen_states: BTreeSet::new(),
            violations: BTreeSet::new(),
        }
    }

    /// Looks up and records the unique rule for a cell under the
    /// sampled configuration bit. Totality was proven syntactically, so
    /// the lookup cannot fail.
    fn fire(&mut self, from: Option<LineState>, input: TableInput, bit: bool) -> Effect {
        let rule = self
            .table
            .matching(from, input, bit)
            .expect("totality proven before exploration");
        self.fired.insert(rule.id());
        rule.effect
    }

    fn supplies(&self, state: LineState) -> bool {
        self.table
            .matching(Some(state), TableInput::Supply, true)
            .is_some()
    }

    fn violation(&mut self, rules: &[String], message: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.insert(Diagnostic {
                check: CheckKind::InvariantPreservation,
                rule: rules.first().cloned(),
                message: format!("{message} (rules fired: {})", rules.join(", ")),
            });
        }
    }

    /// The product checker's per-state invariant, on the materialized
    /// configuration.
    fn check_state(&mut self, a: &Abs, step: &[String]) {
        let mut lines: Vec<Cell> = Vec::new();
        for (&cell, &count) in &a.cells {
            lines.push(cell);
            if count == Count::Many {
                lines.push(cell);
            }
        }
        if let Some(cell) = a.locked {
            lines.push(cell);
        }
        for &(s, _) in &lines {
            self.seen_states.insert(s);
        }

        let states: Vec<LineState> = lines.iter().map(|&(s, _)| s).collect();
        let cfg = Configuration::classify(&states);
        let legal = if self.allow_intermediate {
            cfg != Configuration::Illegal
        } else {
            matches!(cfg, Configuration::Shared | Configuration::Local)
        };
        if !legal {
            let rendered: Vec<String> = states.iter().map(ToString::to_string).collect();
            self.violation(
                step,
                format!("illegal configuration [{}] reachable", rendered.join(" ")),
            );
        }

        let owners: Vec<Cell> = lines
            .iter()
            .copied()
            .filter(|(s, _)| s.owns_latest())
            .collect();
        if owners.is_empty() {
            if !a.mem_latest {
                self.violation(step, "no owner but memory is stale".to_owned());
            }
            for &(s, latest) in &lines {
                if s.is_readable_locally() && !latest {
                    self.violation(step, format!("readable copy in {s} is stale with no owner"));
                }
            }
        } else {
            for &(s, latest) in &owners {
                if !latest {
                    self.violation(step, format!("owner in {s} does not hold the latest value"));
                }
            }
        }
    }

    /// Pointwise snoop over every tracked cell (and the lock-holder
    /// slot) of `a`, recording each fired snoop rule.
    fn snoop_all(
        &mut self,
        a: &Abs,
        kind: SnoopKind,
        latest: LatestRule,
        step: &mut Vec<String>,
    ) -> Abs {
        let mut out = Abs {
            cells: BTreeMap::new(),
            mem_latest: a.mem_latest,
            locked: None,
        };
        let map_cell = |this: &mut Self, (s, old): Cell, step: &mut Vec<String>| -> Cell {
            let effect = this.fire(Some(s), TableInput::Snoop(kind), true);
            step.push(
                Rule {
                    from: Some(s),
                    input: TableInput::Snoop(kind),
                    guard: Guard::Always,
                    effect,
                }
                .id(),
            );
            let Effect::Next { next, capture } = effect else {
                unreachable!("shape proven before exploration");
            };
            let new_latest = match latest {
                LatestRule::CaptureAnd(supplier_latest) => capture && supplier_latest,
                LatestRule::Capture => capture,
                LatestRule::Stale => false,
                LatestRule::CaptureMem(mem) => {
                    if capture {
                        mem
                    } else {
                        old
                    }
                }
            };
            (next, new_latest)
        };
        for (&cell, &count) in &a.cells {
            let new_cell = map_cell(self, cell, step);
            out.cells
                .entry(new_cell)
                .and_modify(|c| *c = Count::Many)
                .or_insert(count);
        }
        if let Some(cell) = a.locked {
            out.locked = Some(map_cell(self, cell, step));
        }
        out
    }

    /// A bus read transaction (plain or locked) by an actor whose line
    /// is already removed from `rest` (passed as `actor` so it can still
    /// interrupt-and-supply, as the product checker's initiator does —
    /// its post-supply cell is then discarded because the fill
    /// overwrites it). Returns the post-broadcast worlds, each with the
    /// shared-fill bit sampled between supply and broadcast exactly as
    /// the machine and product checker do, plus the rules fired on that
    /// branch.
    fn bus_read(
        &mut self,
        rest: &Abs,
        actor: Option<Cell>,
        locked: bool,
        prefix: &[String],
    ) -> Vec<(Abs, bool, Vec<String>)> {
        let broadcast = if locked {
            SnoopKind::LockedRead
        } else {
            SnoopKind::Read
        };
        /// Where the supplier's post-supply cell goes.
        #[derive(Clone, Copy)]
        enum Slot {
            /// The actor itself supplied; the own-completion fill
            /// overwrites its cell, so the supply result is dropped.
            Discard,
            /// An ordinary holder from the counted pool.
            Pool,
            /// The Test-and-Set lock holder's slot.
            Lock,
        }
        // Supplier candidates: the actor, every supplying tracked kind,
        // and the lock holder. The product picks the first supplying
        // cache in index order; branching over every candidate covers
        // all orderings.
        let mut candidates: Vec<(Cell, Slot)> = Vec::new();
        if let Some(cell) = actor {
            if self.supplies(cell.0) {
                candidates.push((cell, Slot::Discard));
            }
        }
        candidates.extend(
            rest.cells
                .keys()
                .copied()
                .filter(|&(s, _)| self.supplies(s))
                .map(|c| (c, Slot::Pool)),
        );
        if let Some(cell) = rest.locked {
            if self.supplies(cell.0) {
                candidates.push((cell, Slot::Lock));
            }
        }

        let mut results = Vec::new();
        if candidates.is_empty() {
            let mut step = prefix.to_vec();
            let shared = rest.any_readable();
            let after = self.snoop_all(
                rest,
                broadcast,
                LatestRule::CaptureMem(rest.mem_latest),
                &mut step,
            );
            results.push((after, shared, step));
            return results;
        }

        for ((s, latest), slot) in candidates {
            let worlds = match slot {
                Slot::Discard => vec![rest.clone()],
                Slot::Pool => rest.take_one((s, latest)),
                Slot::Lock => {
                    let mut w = rest.clone();
                    w.locked = None;
                    vec![w]
                }
            };
            let supply_effect = self.fire(Some(s), TableInput::Supply, true);
            let supply_id = Rule {
                from: Some(s),
                input: TableInput::Supply,
                guard: Guard::Always,
                effect: supply_effect,
            }
            .id();
            let Effect::Supply { next } = supply_effect else {
                unreachable!("shape proven before exploration");
            };
            for world in worlds {
                let mut step = prefix.to_vec();
                step.push(supply_id.clone());
                // The supplier's substituted bus write: memory takes the
                // supplied value, everyone else snoops it as a write.
                let mut after = self.snoop_all(
                    &world,
                    SnoopKind::Write,
                    LatestRule::CaptureAnd(latest),
                    &mut step,
                );
                after.mem_latest = latest;
                let supplier_new = (next, latest);
                match slot {
                    Slot::Discard => {}
                    Slot::Pool => after.add(supplier_new),
                    Slot::Lock => after.locked = Some(supplier_new),
                }
                // The guarded-fill bit: sampled after supply, before
                // the read broadcast, over everyone but the actor.
                let shared = after.any_readable();
                // The retried read completes: everyone (supplier
                // included, actor excluded) snoops the returned value.
                let after = self.snoop_all(
                    &after,
                    broadcast,
                    LatestRule::CaptureMem(after.mem_latest),
                    &mut step,
                );
                results.push((after, shared, step));
            }
        }
        results
    }

    /// A bus write (plain, unlocking, or invalidate) by an actor whose
    /// line is already removed from `rest`.
    fn bus_write(
        &mut self,
        rest: &Abs,
        intent: BusIntent,
        unlock: bool,
        step: &mut Vec<String>,
    ) -> Abs {
        match intent {
            BusIntent::Write => {
                let kind = if unlock {
                    SnoopKind::UnlockWrite
                } else {
                    SnoopKind::Write
                };
                let mut after = self.snoop_all(rest, kind, LatestRule::Capture, step);
                after.mem_latest = true;
                after
            }
            BusIntent::Invalidate => {
                let mut after =
                    self.snoop_all(rest, SnoopKind::Invalidate, LatestRule::Stale, step);
                after.mem_latest = false;
                after
            }
            BusIntent::Read => unreachable!("read intents use bus_read"),
        }
    }

    /// Completes an issued transaction for the actor: bus effects, the
    /// staleness checks, and the own-completion fill. Returns the
    /// successor worlds with the actor's new cell installed.
    fn complete_issue(
        &mut self,
        rest: &Abs,
        actor: Option<Cell>,
        intent: BusIntent,
        is_read_ref: bool,
        step_prefix: &[String],
    ) -> Vec<Abs> {
        let actor_state = actor.map(|(s, _)| s);
        let mut out = Vec::new();
        match intent {
            BusIntent::Read => {
                for (mut after, shared, mut step) in self.bus_read(rest, actor, false, step_prefix)
                {
                    if is_read_ref && !after.mem_latest {
                        self.violation(&step, "read miss served a stale value".to_owned());
                    }
                    let effect = self.fire(
                        actor_state,
                        TableInput::OwnComplete(BusIntent::Read),
                        shared,
                    );
                    let guard = match self.table.matching(
                        actor_state,
                        TableInput::OwnComplete(BusIntent::Read),
                        shared,
                    ) {
                        Some(rule) => rule.guard,
                        None => Guard::Always,
                    };
                    step.push(
                        Rule {
                            from: actor_state,
                            input: TableInput::OwnComplete(BusIntent::Read),
                            guard,
                            effect,
                        }
                        .id(),
                    );
                    let Effect::Next { next, .. } = effect else {
                        unreachable!("shape proven before exploration");
                    };
                    after.add((next, after.mem_latest));
                    self.check_state(&after, &step);
                    out.push(after);
                }
            }
            BusIntent::Write | BusIntent::Invalidate => {
                let mut step = step_prefix.to_vec();
                let mut after = self.bus_write(rest, intent, false, &mut step);
                let effect = self.fire(actor_state, TableInput::OwnComplete(intent), true);
                step.push(
                    Rule {
                        from: actor_state,
                        input: TableInput::OwnComplete(intent),
                        guard: Guard::Always,
                        effect,
                    }
                    .id(),
                );
                let Effect::Next { next, .. } = effect else {
                    unreachable!("shape proven before exploration");
                };
                after.add((next, true));
                self.check_state(&after, &step);
                out.push(after);
            }
        }
        out
    }

    /// All successor states of one abstract state, mirroring the
    /// product checker's enabled events.
    fn successors(&mut self, a: &Abs) -> Vec<Abs> {
        let mut out = Vec::new();
        // Actor choices: one cache of each tracked kind, or a
        // not-present cache from the unbounded pool.
        let mut actors: Vec<(Option<Cell>, Vec<Abs>)> = vec![(None, vec![a.clone()])];
        for &cell in a.cells.keys() {
            actors.push((Some(cell), a.take_one(cell)));
        }

        if a.locked.is_some() {
            // While a Test-and-Set is in flight only non-holder reads
            // and the holder's commit or abort are enabled.
            for (actor, worlds) in &actors {
                for rest in worlds {
                    out.extend(self.cpu_read(rest, *actor));
                }
            }
            out.extend(self.ts_commit(a));
            out.extend(self.ts_abort(a));
        } else {
            for (actor, worlds) in &actors {
                for rest in worlds {
                    out.extend(self.cpu_read(rest, *actor));
                    out.extend(self.cpu_write(rest, *actor));
                    out.extend(self.ts_lock(rest, *actor));
                }
            }
            for &cell in a.cells.keys() {
                for rest in a.take_one(cell) {
                    out.extend(self.evict(&rest, cell));
                }
            }
        }
        out
    }

    fn cpu_read(&mut self, rest: &Abs, actor: Option<Cell>) -> Vec<Abs> {
        let state = actor.map(|(s, _)| s);
        let effect = self.fire(state, TableInput::CpuRead, true);
        let id = Rule {
            from: state,
            input: TableInput::CpuRead,
            guard: Guard::Always,
            effect,
        }
        .id();
        match effect {
            Effect::Hit { next } => {
                let step = vec![id.clone()];
                if let Some((_, latest)) = actor {
                    if !latest {
                        self.violation(&step, "read hit served a stale value".to_owned());
                    }
                }
                let mut after = rest.clone();
                let latest = actor.map_or(after.mem_latest, |(_, l)| l);
                after.add((next, latest));
                self.check_state(&after, &step);
                vec![after]
            }
            Effect::Issue { intent } => self.complete_issue(rest, actor, intent, true, &[id]),
            _ => unreachable!("shape proven before exploration"),
        }
    }

    fn cpu_write(&mut self, rest: &Abs, actor: Option<Cell>) -> Vec<Abs> {
        let state = actor.map(|(s, _)| s);
        let effect = self.fire(state, TableInput::CpuWrite, true);
        let id = Rule {
            from: state,
            input: TableInput::CpuWrite,
            guard: Guard::Always,
            effect,
        }
        .id();
        match effect {
            Effect::Hit { next } => {
                // A silent local write: every other copy and memory go
                // stale; the writer holds the latest value.
                let step = vec![id.clone()];
                let mut after = rest.clone();
                after.mem_latest = false;
                after.cells = after
                    .cells
                    .iter()
                    .map(|(&(s, _), &c)| ((s, false), c))
                    .fold(BTreeMap::new(), |mut m, (cell, c)| {
                        m.entry(cell).and_modify(|x| *x = Count::Many).or_insert(c);
                        m
                    });
                after.add((next, true));
                self.check_state(&after, &step);
                vec![after]
            }
            Effect::Issue { intent } => self.complete_issue(rest, actor, intent, false, &[id]),
            _ => unreachable!("shape proven before exploration"),
        }
    }

    fn ts_lock(&mut self, rest: &Abs, actor: Option<Cell>) -> Vec<Abs> {
        let state = actor.map(|(s, _)| s);
        let mut out = Vec::new();
        for (mut after, _shared, mut step) in self.bus_read(rest, actor, true, &[]) {
            if !after.mem_latest {
                self.violation(&step, "locked read served a stale value".to_owned());
            }
            let effect = self.fire(state, TableInput::OwnLockedRead, true);
            step.push(
                Rule {
                    from: state,
                    input: TableInput::OwnLockedRead,
                    guard: Guard::Always,
                    effect,
                }
                .id(),
            );
            let Effect::Next { next, .. } = effect else {
                unreachable!("shape proven before exploration");
            };
            after.locked = Some((next, after.mem_latest));
            self.check_state(&after, &step);
            out.push(after);
        }
        out
    }

    fn ts_commit(&mut self, a: &Abs) -> Vec<Abs> {
        let Some((state, _)) = a.locked else {
            return Vec::new();
        };
        let mut rest = a.clone();
        rest.locked = None;
        let mut step = Vec::new();
        let mut after = self.bus_write(&rest, BusIntent::Write, true, &mut step);
        let effect = self.fire(Some(state), TableInput::OwnUnlockWrite, true);
        step.push(
            Rule {
                from: Some(state),
                input: TableInput::OwnUnlockWrite,
                guard: Guard::Always,
                effect,
            }
            .id(),
        );
        let Effect::Next { next, .. } = effect else {
            unreachable!("shape proven before exploration");
        };
        after.add((next, true));
        self.check_state(&after, &step);
        vec![after]
    }

    fn ts_abort(&mut self, a: &Abs) -> Vec<Abs> {
        let Some(cell) = a.locked else {
            return Vec::new();
        };
        let mut after = a.clone();
        after.locked = None;
        after.add(cell);
        self.check_state(&after, &[]);
        vec![after]
    }

    fn evict(&mut self, rest: &Abs, (state, latest): Cell) -> Vec<Abs> {
        let effect = self.fire(Some(state), TableInput::Evict, true);
        let step = vec![Rule {
            from: Some(state),
            input: TableInput::Evict,
            guard: Guard::Always,
            effect,
        }
        .id()];
        let Effect::Evict { writeback } = effect else {
            unreachable!("shape proven before exploration");
        };
        let mut after = rest.clone();
        if writeback {
            after.mem_latest = latest;
        }
        self.check_state(&after, &step);
        vec![after]
    }

    /// BFS to fixpoint. Returns the number of abstract states explored.
    fn run(&mut self) -> usize {
        let initial = Abs::initial();
        self.check_state(&initial, &[]);
        let mut seen: HashSet<Abs> = HashSet::new();
        let mut queue: VecDeque<Abs> = VecDeque::new();
        seen.insert(initial.clone());
        queue.push_back(initial);
        while let Some(state) = queue.pop_front() {
            if self.violations.len() >= MAX_VIOLATIONS {
                break;
            }
            for succ in self.successors(&state) {
                if seen.len() >= MAX_ABSTRACT_STATES {
                    self.violations.insert(Diagnostic {
                        check: CheckKind::InvariantPreservation,
                        rule: None,
                        message: format!(
                            "abstract state space exceeded {MAX_ABSTRACT_STATES} states"
                        ),
                    });
                    return seen.len();
                }
                if seen.insert(succ.clone()) {
                    queue.push_back(succ);
                }
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_for;
    use decache_core::ProtocolKind;

    #[test]
    fn rb_is_proved_and_explores_a_small_space() {
        let analysis = analyze(&table_for(ProtocolKind::Rb), false);
        assert!(
            analysis.proved(),
            "RB diagnostics: {:?}",
            analysis.diagnostics
        );
        assert!(analysis.abstract_states > 1);
        assert!(analysis.abstract_states < 10_000);
        assert!(analysis.unreachable_states.is_empty());
    }

    #[test]
    fn mesi_is_proved_with_its_guarded_fill() {
        let analysis = analyze(&decache_core::ir::mesi(), true);
        assert!(
            analysis.proved(),
            "MESI diagnostics: {:?}",
            analysis.diagnostics
        );
        // Both guard branches of the NP fill fire.
        assert!(!analysis
            .dead_rules
            .iter()
            .any(|d| d.starts_with("NP --own:BR")));
    }

    #[test]
    fn rb_without_intermediate_class_rejects_rwb() {
        // RWB's F states classify as intermediate; under RB's stricter
        // shared-or-local lemma the analyzer must refute them.
        let analysis = analyze(&table_for(ProtocolKind::Rwb), false);
        assert!(!analysis.proved());
        assert!(analysis
            .diagnostics
            .iter()
            .all(|d| d.check == CheckKind::InvariantPreservation));
    }
}
