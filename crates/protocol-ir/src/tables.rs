//! Hand-written declarative tables for the paper's seven schemes.
//!
//! These are transcribed independently from the paper's Figures 3-1 and
//! 5-1 (and the baselines' published descriptions), *not* from the Rust
//! implementations — the cross-check test `compile(kind) == hand_table(kind)`
//! is only meaningful because the two sides were written separately. A
//! transcription slip on either side fails that test with the offending
//! rule named.

use decache_core::introspect::{SnoopKind, TableInput};
use decache_core::ir::{Effect, Guard, Rule, RuleTable};
use decache_core::{BusIntent, LineState, ProtocolKind};
use LineState::{Dirty, FirstWrite, Invalid, Local, Readable, Reserved, Valid};

/// Accumulates rules with [`Guard::Always`] (the paper's schemes are
/// guard-free).
struct Builder {
    rules: Vec<Rule>,
}

impl Builder {
    fn new() -> Self {
        Builder { rules: Vec::new() }
    }

    fn rule(&mut self, from: Option<LineState>, input: TableInput, effect: Effect) {
        self.rules.push(Rule {
            from,
            input,
            guard: Guard::Always,
            effect,
        });
    }

    /// The same own-completion outcome from every from-state (the paper
    /// protocols' completions are state-independent except RWB's `BW`).
    fn own_all(&mut self, states: &[Option<LineState>], input: TableInput, next: LineState) {
        for &from in states {
            self.rule(
                from,
                input,
                Effect::Next {
                    next,
                    capture: false,
                },
            );
        }
    }

    fn snoop(&mut self, from: LineState, kinds: &[SnoopKind], next: LineState, capture: bool) {
        for &kind in kinds {
            self.rule(
                Some(from),
                TableInput::Snoop(kind),
                Effect::Next { next, capture },
            );
        }
    }

    fn finish(
        self,
        name: &str,
        states: Vec<LineState>,
        uses_bus_invalidate: bool,
        broadcasts_write_data: bool,
    ) -> RuleTable {
        let mut table = RuleTable {
            name: name.to_owned(),
            states,
            uses_bus_invalidate,
            broadcasts_write_data,
            rules: self.rules,
        };
        table.normalize();
        table
    }
}

const READS: [SnoopKind; 2] = [SnoopKind::Read, SnoopKind::LockedRead];
const WRITES: [SnoopKind; 2] = [SnoopKind::Write, SnoopKind::UnlockWrite];

/// The hand-written table for a paper scheme; `None` for
/// [`ProtocolKind::Mesi`], whose table is authored directly in
/// [`decache_core::ir::mesi`] (there is nothing to cross-check it
/// against).
pub fn hand_table(kind: ProtocolKind) -> Option<RuleTable> {
    match kind {
        ProtocolKind::Rb => Some(rb(true)),
        ProtocolKind::RbNoBroadcast => Some(rb(false)),
        ProtocolKind::Rwb => Some(rwb(2)),
        ProtocolKind::RwbThreshold(k) => Some(rwb(k)),
        ProtocolKind::WriteOnce => Some(write_once()),
        ProtocolKind::WriteThrough => Some(write_through()),
        ProtocolKind::Mesi => None,
    }
}

/// Figure 3-1: R/I/L with read broadcasting (or the A3 ablation without).
fn rb(read_broadcast: bool) -> RuleTable {
    let mut t = Builder::new();
    let all = [None, Some(Invalid), Some(Readable), Some(Local)];

    // CPU references: reads hit outside I/NP; writes write through
    // except from L.
    for from in [None, Some(Invalid)] {
        t.rule(
            from,
            TableInput::CpuRead,
            Effect::Issue {
                intent: BusIntent::Read,
            },
        );
    }
    for s in [Readable, Local] {
        t.rule(Some(s), TableInput::CpuRead, Effect::Hit { next: s });
    }
    for from in [None, Some(Invalid), Some(Readable)] {
        t.rule(
            from,
            TableInput::CpuWrite,
            Effect::Issue {
                intent: BusIntent::Write,
            },
        );
    }
    t.rule(
        Some(Local),
        TableInput::CpuWrite,
        Effect::Hit { next: Local },
    );

    // Completions: a read yields a readable copy, a write claims
    // locality; the Test-and-Set halves mirror them.
    t.own_all(&all, TableInput::OwnComplete(BusIntent::Read), Readable);
    t.own_all(&all, TableInput::OwnComplete(BusIntent::Write), Local);
    t.own_all(&all, TableInput::OwnLockedRead, Readable);
    t.own_all(&all, TableInput::OwnUnlockWrite, Local);

    // Snoops: foreign reads broadcast into invalid holders (the
    // defining RB move); foreign writes invalidate readable copies.
    t.snoop(Readable, &READS, Readable, false);
    t.snoop(Readable, &WRITES, Invalid, false);
    if read_broadcast {
        t.snoop(Invalid, &READS, Readable, true);
    } else {
        t.snoop(Invalid, &READS, Invalid, false);
    }
    t.snoop(Invalid, &WRITES, Invalid, false);
    // L sees a completed foreign read only if the supply path was
    // bypassed; fold to the post-supply state (totality arm).
    t.snoop(Local, &READS, Readable, true);
    t.snoop(Local, &WRITES, Invalid, false);

    // Only L is dirty: it supplies foreign reads and writes back.
    t.rule(
        Some(Local),
        TableInput::Supply,
        Effect::Supply { next: Readable },
    );
    for s in [Invalid, Readable] {
        t.rule(
            Some(s),
            TableInput::Evict,
            Effect::Evict { writeback: false },
        );
    }
    t.rule(
        Some(Local),
        TableInput::Evict,
        Effect::Evict { writeback: true },
    );

    t.finish(
        if read_broadcast {
            "RB"
        } else {
            "RB-no-broadcast"
        },
        vec![Invalid, Readable, Local],
        false,
        false,
    )
}

/// Figure 5-1 with footnote 6's threshold `k`: R/I/F(1..k-1)/L, write
/// broadcasting, and the bus invalidate.
fn rwb(k: u8) -> RuleTable {
    assert!((1..=8).contains(&k), "threshold out of range");
    let mut t = Builder::new();
    let states: Vec<LineState> = std::iter::once(Invalid)
        .chain(std::iter::once(Readable))
        .chain((1..k).map(FirstWrite))
        .chain(std::iter::once(Local))
        .collect();
    let all: Vec<Option<LineState>> = std::iter::once(None)
        .chain(states.iter().copied().map(Some))
        .collect();
    // The k-th uninterrupted write is the invalidating one.
    let intent_after = |done: u8| {
        if done + 1 >= k {
            BusIntent::Invalidate
        } else {
            BusIntent::Write
        }
    };

    for from in [None, Some(Invalid)] {
        t.rule(
            from,
            TableInput::CpuRead,
            Effect::Issue {
                intent: BusIntent::Read,
            },
        );
        t.rule(
            from,
            TableInput::CpuWrite,
            Effect::Issue {
                intent: intent_after(0),
            },
        );
    }
    for s in states.iter().copied().filter(|s| *s != Invalid) {
        t.rule(Some(s), TableInput::CpuRead, Effect::Hit { next: s });
    }
    t.rule(
        Some(Readable),
        TableInput::CpuWrite,
        Effect::Issue {
            intent: intent_after(0),
        },
    );
    for c in 1..k {
        t.rule(
            Some(FirstWrite(c)),
            TableInput::CpuWrite,
            Effect::Issue {
                intent: intent_after(c),
            },
        );
    }
    t.rule(
        Some(Local),
        TableInput::CpuWrite,
        Effect::Hit { next: Local },
    );

    t.own_all(&all, TableInput::OwnComplete(BusIntent::Read), Readable);
    // A completed broadcast write advances the uninterrupted-write
    // streak; BI confirms locality.
    for &from in &all {
        let next = match from {
            Some(FirstWrite(c)) => FirstWrite((c + 1).min(k - 1)),
            _ => FirstWrite(1),
        };
        t.rule(
            from,
            TableInput::OwnComplete(BusIntent::Write),
            Effect::Next {
                next,
                capture: false,
            },
        );
    }
    t.own_all(&all, TableInput::OwnComplete(BusIntent::Invalidate), Local);
    t.own_all(&all, TableInput::OwnLockedRead, Readable);
    // A successful Test-and-Set leaves the issuer holding the first
    // write (Figure 6-3), except k = 1 where locality is immediate.
    t.own_all(
        &all,
        TableInput::OwnUnlockWrite,
        if k == 1 { Local } else { FirstWrite(1) },
    );

    for &s in &states {
        // Foreign reads: broadcast fills invalid holders, every other
        // configuration unchanged (L's arm is the totality fold).
        match s {
            Invalid | Local => t.snoop(s, &READS, Readable, true),
            other => t.snoop(other, &READS, other, false),
        }
        // Foreign writes are captured by everyone ("the caches also
        // note the data part of the bus writes") — except k = 1, where
        // the only bus-visible data writes are unlocking writes and the
        // writer claims immediate locality.
        if k == 1 {
            t.snoop(s, &WRITES, Invalid, false);
        } else {
            t.snoop(s, &WRITES, Readable, true);
        }
        t.snoop(s, &[SnoopKind::Invalidate], Invalid, false);
    }

    t.rule(
        Some(Local),
        TableInput::Supply,
        Effect::Supply { next: Readable },
    );
    for &s in &states {
        t.rule(
            Some(s),
            TableInput::Evict,
            Effect::Evict {
                writeback: s == Local,
            },
        );
    }

    let name = if k == 2 {
        "RWB".to_owned()
    } else {
        format!("RWB(k={k})")
    };
    t.finish(&name, states, true, k >= 2)
}

/// Goodman's write-once: event broadcasting only, no data capture.
fn write_once() -> RuleTable {
    let mut t = Builder::new();
    let states = [Invalid, Valid, Reserved, Dirty];
    let all = [
        None,
        Some(Invalid),
        Some(Valid),
        Some(Reserved),
        Some(Dirty),
    ];

    for from in [None, Some(Invalid)] {
        t.rule(
            from,
            TableInput::CpuRead,
            Effect::Issue {
                intent: BusIntent::Read,
            },
        );
    }
    for s in [Valid, Reserved, Dirty] {
        t.rule(Some(s), TableInput::CpuRead, Effect::Hit { next: s });
    }
    // The first write goes through (the "write once"); later writes
    // stay in the cache.
    for from in [None, Some(Invalid), Some(Valid)] {
        t.rule(
            from,
            TableInput::CpuWrite,
            Effect::Issue {
                intent: BusIntent::Write,
            },
        );
    }
    for s in [Reserved, Dirty] {
        t.rule(Some(s), TableInput::CpuWrite, Effect::Hit { next: Dirty });
    }

    t.own_all(&all, TableInput::OwnComplete(BusIntent::Read), Valid);
    t.own_all(&all, TableInput::OwnComplete(BusIntent::Write), Reserved);
    t.own_all(&all, TableInput::OwnLockedRead, Valid);
    t.own_all(&all, TableInput::OwnUnlockWrite, Reserved);

    // No capture anywhere; a foreign read demotes the written states to
    // Valid (Dirty via the supply path; the snoop arm is the totality
    // fold).
    t.snoop(Invalid, &READS, Invalid, false);
    t.snoop(Valid, &READS, Valid, false);
    t.snoop(Reserved, &READS, Valid, false);
    t.snoop(Dirty, &READS, Valid, false);
    for s in states {
        t.snoop(s, &WRITES, Invalid, false);
    }

    t.rule(
        Some(Dirty),
        TableInput::Supply,
        Effect::Supply { next: Valid },
    );
    for s in states {
        t.rule(
            Some(s),
            TableInput::Evict,
            Effect::Evict {
                writeback: s == Dirty,
            },
        );
    }

    t.finish("write-once", states.to_vec(), false, false)
}

/// Write-through-with-invalidation: two states, every write on the bus.
fn write_through() -> RuleTable {
    let mut t = Builder::new();
    let all = [None, Some(Invalid), Some(Valid)];

    for from in [None, Some(Invalid)] {
        t.rule(
            from,
            TableInput::CpuRead,
            Effect::Issue {
                intent: BusIntent::Read,
            },
        );
    }
    t.rule(
        Some(Valid),
        TableInput::CpuRead,
        Effect::Hit { next: Valid },
    );
    for &from in &all {
        t.rule(
            from,
            TableInput::CpuWrite,
            Effect::Issue {
                intent: BusIntent::Write,
            },
        );
    }

    t.own_all(&all, TableInput::OwnComplete(BusIntent::Read), Valid);
    t.own_all(&all, TableInput::OwnComplete(BusIntent::Write), Valid);
    t.own_all(&all, TableInput::OwnLockedRead, Valid);
    t.own_all(&all, TableInput::OwnUnlockWrite, Valid);

    for s in [Invalid, Valid] {
        t.snoop(s, &READS, s, false);
        t.snoop(s, &WRITES, Invalid, false);
        // Memory is always current: no supply row, nothing to write back.
        t.rule(
            Some(s),
            TableInput::Evict,
            Effect::Evict { writeback: false },
        );
    }

    t.finish("write-through", vec![Invalid, Valid], false, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_tables_exist_for_exactly_the_hand_coded_protocols() {
        assert!(hand_table(ProtocolKind::Rb).is_some());
        assert!(hand_table(ProtocolKind::RwbThreshold(5)).is_some());
        assert!(hand_table(ProtocolKind::Mesi).is_none());
    }

    #[test]
    fn rwb_k1_degenerates_to_write_back_invalidate() {
        let table = hand_table(ProtocolKind::RwbThreshold(1)).unwrap();
        assert_eq!(table.states, vec![Invalid, Readable, Local]);
        assert!(!table.broadcasts_write_data);
        let cw = table
            .matching(Some(Readable), TableInput::CpuWrite, true)
            .unwrap();
        assert_eq!(
            cw.effect,
            Effect::Issue {
                intent: BusIntent::Invalidate
            }
        );
    }
}
