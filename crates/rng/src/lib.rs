//! Dependency-free deterministic randomness for the decache workspace.
//!
//! The whole repository builds and tests offline, so every source of
//! pseudo-randomness — workload generators, random arbiters, random
//! replacement, randomized tests — runs on this crate instead of
//! external crates. Two generators cover all needs:
//!
//! * [`SplitMix64`] — the stateless-feeling 64-bit seed expander from
//!   Steele, Lea & Flood (OOPSLA 2014), used to turn one `u64` seed
//!   into many well-mixed streams (per-PE seeding, test-case corpora).
//! * [`Rng`] — xoshiro256\*\* (Blackman & Vigna, 2018), the general
//!   workhorse stream with the small API surface the workspace uses:
//!   [`Rng::from_seed`], [`Rng::next_u64`], [`Rng::next_f64`],
//!   [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::shuffle`],
//!   [`Rng::choose`].
//!
//! Both implementations are pinned by golden-value tests against the
//! published reference outputs, so a stream produced from a seed today
//! is byte-for-byte the stream produced from that seed forever — the
//! property that makes cross-protocol comparisons on "the same"
//! workload meaningful.
//!
//! The [`testing`] module adds a tiny seeded-harness replacement for
//! `proptest`: a fixed per-test seed corpus, an environment-variable
//! case-count override, and failure messages that name the seed to
//! replay.
//!
//! # Examples
//!
//! ```
//! use decache_rng::Rng;
//!
//! let mut rng = Rng::from_seed(7);
//! let die = rng.gen_range(1u64..=6);
//! assert!((1..=6).contains(&die));
//!
//! // Identical seeds give identical streams.
//! let (mut a, mut b) = (Rng::from_seed(9), Rng::from_seed(9));
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// The SplitMix64 generator: a 64-bit state advanced by the golden
/// ratio, output through a mixing function.
///
/// Primarily a **seed expander**: feeding one user seed through
/// SplitMix64 yields arbitrarily many decorrelated 64-bit values (the
/// recommended way to seed xoshiro state, and how the workspace derives
/// per-PE and per-test-case seeds from one root seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given seed. Every seed, including
    /// zero, yields a full-quality stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A xoshiro256\*\* pseudo-random generator seeded via [`SplitMix64`].
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; more than
/// adequate for workload synthesis and randomized testing, and fully
/// deterministic per seed on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// by four successive [`SplitMix64`] outputs (the seeding procedure
    /// recommended by the xoshiro authors).
    pub fn from_seed(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Rng {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Creates a generator directly from a 256-bit state. The state
    /// must not be all zeros (the one fixed point of the generator).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256** state must be nonzero"
        );
        Rng { s: state }
    }

    /// Returns the current 256-bit state, suitable for exact stream
    /// resumption via [`Rng::from_state`] — the checkpoint/restore
    /// primitive: `from_state(rng.state())` continues the stream
    /// bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Produces a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Produces a uniform value in `[0, n)` by rejection sampling
    /// (modulo bias removed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        // Power-of-two bound: the rejection threshold is zero and the
        // modulo is a mask, so this draws the same single sample as the
        // general path without its two divisions.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject the low `2^64 mod n` values so every residue class is
        // equally likely.
        let threshold = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % n;
            }
        }
    }

    /// Produces a uniform value in the given integer range, half-open
    /// (`lo..hi`) or inclusive (`lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut rng = decache_rng::Rng::from_seed(3);
    /// let x = rng.gen_range(10u64..20);
    /// assert!((10..20).contains(&x));
    /// let y = rng.gen_range(0usize..=4);
    /// assert!(y <= 4);
    /// ```
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.bounded(items.len() as u64) as usize]
    }

    /// Derives an independent child generator; the parent advances by
    /// one output. Useful for giving each component of a larger system
    /// its own decorrelated stream from one root seed.
    pub fn split(&mut self) -> Rng {
        Rng::from_seed(self.next_u64())
    }
}

/// Integer ranges [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled integer type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize);

pub mod testing {
    //! A seeded randomized-test harness: the workspace's offline
    //! replacement for `proptest`.
    //!
    //! [`check`] runs a closure over a fixed corpus of seeds derived
    //! from the test's name, so every CI run explores the same cases;
    //! set `DECACHE_TEST_CASES` to raise (or lower) the corpus size
    //! when hunting for rare interleavings. On failure the panic
    //! message names the test, case index, and seed, and the failing
    //! case can be replayed alone via `DECACHE_TEST_SEED=<seed>`.

    use super::{Rng, SplitMix64};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// The default number of cases per [`check`] call.
    pub const DEFAULT_CASES: u32 = 64;

    /// The number of cases to run: `DECACHE_TEST_CASES` if set,
    /// otherwise `default`.
    pub fn cases(default: u32) -> u32 {
        match std::env::var("DECACHE_TEST_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("DECACHE_TEST_CASES={v} is not a number")),
            Err(_) => default,
        }
    }

    /// FNV-1a, used to give every named test its own seed corpus.
    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `body` over `n` seeded cases (see [`cases`] for `n`). The
    /// corpus is fixed per `name`, so failures reproduce across runs;
    /// a failing case panics with its seed, and
    /// `DECACHE_TEST_SEED=<seed>` replays exactly that case.
    ///
    /// # Examples
    ///
    /// ```
    /// decache_rng::testing::check("doc_example", 8, |rng| {
    ///     let x = rng.gen_range(0u64..100);
    ///     assert!(x < 100);
    /// });
    /// ```
    pub fn check(name: &str, default_cases: u32, mut body: impl FnMut(&mut Rng)) {
        if let Ok(seed) = std::env::var("DECACHE_TEST_SEED") {
            let seed: u64 = seed
                .parse()
                .unwrap_or_else(|_| panic!("DECACHE_TEST_SEED must be a u64"));
            body(&mut Rng::from_seed(seed));
            return;
        }
        let mut corpus = SplitMix64::new(fnv1a(name));
        for case in 0..cases(default_cases) {
            let seed = corpus.next_u64();
            let result = catch_unwind(AssertUnwindSafe(|| body(&mut Rng::from_seed(seed))));
            if let Err(cause) = result {
                eprintln!(
                    "randomized test '{name}' failed at case {case} \
                     (replay with DECACHE_TEST_SEED={seed})"
                );
                resume_unwind(cause);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_streams_are_decorrelated() {
        let mut root = Rng::from_seed(1);
        let mut a = root.split();
        let mut b = root.split();
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::from_seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes everything"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::from_seed(11);
        let items = [1u8, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(*rng.choose(&items) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::from_seed(0).gen_range(5u64..5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_panics() {
        Rng::from_seed(0).gen_bool(1.5);
    }

    #[test]
    fn state_round_trip_resumes_stream_exactly() {
        let mut rng = Rng::from_seed(17);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut resumed = Rng::from_state(rng.state());
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = Rng::from_seed(2);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = Rng::from_seed(3);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
