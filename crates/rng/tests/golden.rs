//! Golden-value tests pinning the generators to the published
//! reference outputs, plus uniformity smoke tests for the sampling
//! helpers. If any of these fail, every seeded stream in the workspace
//! has silently changed.

use decache_rng::{Rng, SplitMix64};

/// SplitMix64 reference outputs (Steele, Lea & Flood; Vigna's
/// `splitmix64.c`): the first five outputs for seed 0.
#[test]
fn splitmix64_seed_zero_matches_reference() {
    let mut mix = SplitMix64::new(0);
    let got: Vec<u64> = (0..5).map(|_| mix.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xe220_a839_7b1d_cdaf,
            0x6e78_9e6a_a1b9_65f4,
            0x06c4_5d18_8009_454f,
            0xf88b_b8a8_724c_81ec,
            0x1b39_896a_51a8_749b,
        ]
    );
}

/// The widely circulated seed-1234567 vector for `splitmix64.c`.
#[test]
fn splitmix64_seed_1234567_matches_reference() {
    let mut mix = SplitMix64::new(1234567);
    let got: Vec<u64> = (0..5).map(|_| mix.next_u64()).collect();
    assert_eq!(
        got,
        [
            0x599e_d017_fb08_fc85,
            0x2c73_f084_5854_0fa5,
            0x883e_bce5_a3f2_7c77,
            0x3fbe_f740_e917_7b3f,
            0xe3b8_3467_08cb_5ecd,
        ]
    );
}

/// Advancing the seed by the golden ratio shifts the stream by one —
/// the structural property SplitMix64 is named for.
#[test]
fn splitmix64_seed_advance_shifts_stream() {
    let mut a = SplitMix64::new(0);
    a.next_u64();
    let mut b = SplitMix64::new(0x9e37_79b9_7f4a_7c15);
    for _ in 0..3 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

/// xoshiro256** reference outputs for the state `[1, 2, 3, 4]` (the
/// canonical test vector from Blackman & Vigna's reference code).
#[test]
fn xoshiro256ss_state_1234_matches_reference() {
    let mut rng = Rng::from_state([1, 2, 3, 4]);
    let got: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
            10595114339597558777,
            2904607092377533576,
        ]
    );
}

/// `from_seed` composes SplitMix64 expansion with xoshiro256**: the
/// state for seed 42 must be the first four SplitMix64(42) outputs and
/// the stream must match the composition of the two references.
#[test]
fn from_seed_is_splitmix_expansion() {
    let mut mix = SplitMix64::new(42);
    let state = [
        mix.next_u64(),
        mix.next_u64(),
        mix.next_u64(),
        mix.next_u64(),
    ];
    assert_eq!(
        state,
        [
            0xbdd7_3226_2feb_6e95,
            0x28ef_e333_b266_f103,
            0x4752_6757_130f_9f52,
            0x581c_e1ff_0e4a_e394,
        ]
    );
    let mut a = Rng::from_seed(42);
    let mut b = Rng::from_state(state);
    for _ in 0..16 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // Pin the composed stream directly as well.
    let mut c = Rng::from_seed(42);
    assert_eq!(c.next_u64(), 0x1578_0b2e_0c2e_c716);
    assert_eq!(c.next_u64(), 0x6104_d986_6d11_3a7e);
    assert_eq!(c.next_u64(), 0xae17_5332_39e4_99a1);
}

#[test]
fn streams_are_deterministic_per_seed() {
    for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
        let mut a = Rng::from_seed(seed);
        let mut b = Rng::from_seed(seed);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn next_f64_is_in_unit_interval() {
    let mut rng = Rng::from_seed(17);
    for _ in 0..10_000 {
        let x = rng.next_f64();
        assert!((0.0..1.0).contains(&x));
    }
}

/// Uniformity smoke test: a chi-squared statistic over 16 buckets of
/// `gen_range` stays far below the catastrophic-failure threshold
/// (df = 15; anything remotely uniform sits near 15, a broken sampler
/// lands in the thousands).
#[test]
fn gen_range_is_uniform_enough() {
    const BUCKETS: usize = 16;
    const DRAWS: usize = 64_000;
    let mut rng = Rng::from_seed(99);
    let mut counts = [0u32; BUCKETS];
    for _ in 0..DRAWS {
        counts[rng.gen_range(0usize..BUCKETS)] += 1;
    }
    let expected = (DRAWS / BUCKETS) as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (f64::from(c) - expected).powi(2) / expected)
        .sum();
    assert!(
        chi2 < 60.0,
        "chi-squared {chi2:.1} over {BUCKETS} buckets: {counts:?}"
    );
    // Every bucket is populated.
    assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
}

/// The rejection sampler removes modulo bias even for ranges just
/// above a power of two (the worst case for naive `% n`).
#[test]
fn gen_range_covers_boundaries_inclusive_and_exclusive() {
    let mut rng = Rng::from_seed(123);
    let mut saw_lo = false;
    let mut saw_hi = false;
    for _ in 0..2_000 {
        match rng.gen_range(3u8..=9) {
            3 => saw_lo = true,
            9 => saw_hi = true,
            v => assert!((3..=9).contains(&v)),
        }
    }
    assert!(saw_lo && saw_hi);
    for _ in 0..2_000 {
        assert!(rng.gen_range(0u64..5) < 5);
    }
}

#[test]
fn gen_bool_tracks_probability() {
    let mut rng = Rng::from_seed(7);
    let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
    let rate = hits as f64 / 100_000.0;
    assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
}

#[test]
fn harness_corpus_is_stable_across_runs() {
    let mut first = Vec::new();
    decache_rng::testing::check("corpus_stability", 8, |rng| first.push(rng.next_u64()));
    let mut second = Vec::new();
    decache_rng::testing::check("corpus_stability", 8, |rng| second.push(rng.next_u64()));
    assert_eq!(first, second);
    // A different test name yields a different corpus.
    let mut other = Vec::new();
    decache_rng::testing::check("corpus_stability2", 8, |rng| other.push(rng.next_u64()));
    assert_ne!(first, other);
}
