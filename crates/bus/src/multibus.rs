//! Multiple shared-bus routing (Figure 7-1).

use crate::TrafficStats;
use decache_mem::Addr;
use std::fmt;

/// The bus topology of the machine: `2^bank_bits` logically independent
/// shared buses, each serving the memory bank selected by the least
/// significant address bits.
///
/// "The private caches and the shared memory are divided into two memory
/// banks using the least significant address bit. ... the required
/// bandwidth for each shared bus will be about half" (Section 7). A
/// `bank_bits` of 0 is the single-bus machine of Sections 3–6.
///
/// # Examples
///
/// ```
/// use decache_bus::Topology;
/// use decache_mem::Addr;
///
/// let dual = Topology::new(1);
/// assert_eq!(dual.bus_count(), 2);
/// assert_eq!(dual.bus_of(Addr::new(6)), 0);
/// assert_eq!(dual.bus_of(Addr::new(7)), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    bank_bits: u32,
}

impl Topology {
    /// Creates a topology with `2^bank_bits` buses.
    ///
    /// # Panics
    ///
    /// Panics if `bank_bits > 8` (256 buses), far beyond the "small number
    /// of multiple shared buses" the paper considers.
    pub fn new(bank_bits: u32) -> Self {
        assert!(
            bank_bits <= 8,
            "bank_bits {bank_bits} exceeds the supported maximum of 8"
        );
        Topology { bank_bits }
    }

    /// The single-bus topology.
    pub fn single() -> Self {
        Topology::new(0)
    }

    /// Returns the number of buses.
    pub fn bus_count(&self) -> usize {
        1 << self.bank_bits
    }

    /// Returns the number of bank-selection bits.
    pub fn bank_bits(&self) -> u32 {
        self.bank_bits
    }

    /// Returns the bus (equivalently, memory bank) serving `addr`.
    pub fn bus_of(&self, addr: Addr) -> usize {
        addr.bank_of(self.bank_bits)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shared bus(es)", self.bus_count())
    }
}

/// Traffic statistics for a multi-bus machine: one [`TrafficStats`] per
/// bus, plus aggregation helpers used by the Figure 7-1 experiment.
#[derive(Debug, Clone, Default)]
pub struct MultiBusStats {
    per_bus: Vec<TrafficStats>,
}

impl MultiBusStats {
    /// Creates zeroed statistics for `bus_count` buses.
    pub fn new(bus_count: usize) -> Self {
        MultiBusStats {
            per_bus: vec![TrafficStats::default(); bus_count],
        }
    }

    /// Returns the number of buses tracked.
    pub fn bus_count(&self) -> usize {
        self.per_bus.len()
    }

    /// Returns the statistics of bus `bus`.
    ///
    /// # Panics
    ///
    /// Panics if `bus >= self.bus_count()`.
    pub fn bus(&self, bus: usize) -> &TrafficStats {
        &self.per_bus[bus]
    }

    /// Returns a mutable reference to the statistics of bus `bus`.
    ///
    /// # Panics
    ///
    /// Panics if `bus >= self.bus_count()`.
    pub fn bus_mut(&mut self, bus: usize) -> &mut TrafficStats {
        &mut self.per_bus[bus]
    }

    /// Returns the sum of all buses' statistics.
    pub fn total(&self) -> TrafficStats {
        self.per_bus
            .iter()
            .copied()
            .fold(TrafficStats::default(), |acc, s| acc + s)
    }

    /// Returns the largest per-bus transaction count: the metric that
    /// determines whether any single bus saturates.
    pub fn max_bus_transactions(&self) -> u64 {
        self.per_bus
            .iter()
            .map(TrafficStats::total_transactions)
            .max()
            .unwrap_or(0)
    }

    /// Returns each bus's share of total transactions; empty if no traffic.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total().total_transactions();
        if total == 0 {
            return vec![0.0; self.per_bus.len()];
        }
        self.per_bus
            .iter()
            .map(|s| s.total_transactions() as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusOpKind;

    #[test]
    fn single_topology_routes_everything_to_bus_zero() {
        let t = Topology::single();
        assert_eq!(t.bus_count(), 1);
        for i in 0..64 {
            assert_eq!(t.bus_of(Addr::new(i)), 0);
        }
    }

    #[test]
    fn dual_topology_splits_on_lsb() {
        let t = Topology::new(1);
        assert_eq!(t.bus_of(Addr::new(0)), 0);
        assert_eq!(t.bus_of(Addr::new(1)), 1);
        assert_eq!(t.bus_of(Addr::new(2)), 0);
        assert_eq!(t.to_string(), "2 shared bus(es)");
    }

    #[test]
    fn quad_topology_uses_two_bits() {
        let t = Topology::new(2);
        assert_eq!(t.bus_count(), 4);
        assert_eq!(t.bus_of(Addr::new(7)), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn oversized_topology_panics() {
        let _ = Topology::new(9);
    }

    #[test]
    fn multibus_stats_aggregate() {
        let mut m = MultiBusStats::new(2);
        m.bus_mut(0).record(BusOpKind::Read);
        m.bus_mut(0).record(BusOpKind::Read);
        m.bus_mut(1).record(BusOpKind::Write);
        assert_eq!(m.total().total_transactions(), 3);
        assert_eq!(m.max_bus_transactions(), 2);
        let shares = m.shares();
        assert!((shares[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((shares[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shares_of_silent_buses_are_zero() {
        let m = MultiBusStats::new(3);
        assert_eq!(m.shares(), vec![0.0, 0.0, 0.0]);
        assert_eq!(m.max_bus_transactions(), 0);
    }
}
