//! Address-to-bus routing, including the hierarchical extension.

use crate::Topology;
use decache_mem::Addr;
use std::fmt;

/// How addresses map onto the machine's buses.
///
/// * [`Routing::Interleaved`] — the paper's Figure 7-1: `2^k` peer buses
///   interleaved on the least significant address bits; every cache is
///   attached to (a slice of) every bus.
/// * [`Routing::Clustered`] — the Section 8 future-work hierarchy: "how
///   to extend our scheme to hierarchical structures more amiable to
///   large scale parallel processing". Bus 0 is the **global** shared
///   bus serving the shared region `[0, global_words)`; each of
///   `clusters` **cluster buses** serves that cluster's private region,
///   and only the cluster's own processors are attached to it. Traffic
///   to cluster-private data never loads the global bus, so the global
///   bus only carries genuinely shared references.
///
/// # Examples
///
/// ```
/// use decache_bus::Routing;
/// use decache_mem::Addr;
///
/// let r = Routing::clustered(4, 256, 256);
/// assert_eq!(r.bus_count(), 5);
/// assert_eq!(r.bus_of(Addr::new(10)), 0);        // shared -> global bus
/// assert_eq!(r.bus_of(Addr::new(256)), 1);       // cluster 0's region
/// assert_eq!(r.bus_of(Addr::new(256 + 300)), 2); // cluster 1's region
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Peer buses interleaved on low address bits.
    Interleaved(Topology),
    /// A two-level hierarchy: one global bus plus per-cluster buses.
    Clustered {
        /// Number of clusters (each with its own bus).
        clusters: usize,
        /// Size of the global shared region `[0, global_words)`.
        global_words: u64,
        /// Size of each cluster's private region, laid out consecutively
        /// after the global region.
        cluster_words: u64,
    },
}

impl Routing {
    /// Single-bus routing (the paper's Sections 3–6 machine).
    pub fn single() -> Self {
        Routing::Interleaved(Topology::single())
    }

    /// Interleaved routing over `2^bank_bits` buses.
    pub fn interleaved(bank_bits: u32) -> Self {
        Routing::Interleaved(Topology::new(bank_bits))
    }

    /// Clustered routing: `clusters` cluster buses behind one global bus.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `cluster_words` is zero.
    pub fn clustered(clusters: usize, global_words: u64, cluster_words: u64) -> Self {
        assert!(clusters > 0, "a hierarchy needs at least one cluster");
        assert!(cluster_words > 0, "cluster regions must be non-empty");
        Routing::Clustered {
            clusters,
            global_words,
            cluster_words,
        }
    }

    /// The number of buses.
    pub fn bus_count(&self) -> usize {
        match *self {
            Routing::Interleaved(t) => t.bus_count(),
            Routing::Clustered { clusters, .. } => 1 + clusters,
        }
    }

    /// The bus serving `addr`.
    ///
    /// # Panics
    ///
    /// Panics (clustered only) if `addr` lies beyond the last cluster's
    /// region.
    pub fn bus_of(&self, addr: Addr) -> usize {
        match *self {
            Routing::Interleaved(t) => t.bus_of(addr),
            Routing::Clustered {
                clusters,
                global_words,
                cluster_words,
            } => {
                if addr.index() < global_words {
                    0
                } else {
                    let cluster = ((addr.index() - global_words) / cluster_words) as usize;
                    assert!(
                        cluster < clusters,
                        "address {addr} beyond the last cluster's region"
                    );
                    1 + cluster
                }
            }
        }
    }

    /// Whether PE `pe` (of `pe_count` total) snoops bus `bus`.
    ///
    /// Interleaved buses are snooped by everyone; a cluster bus only by
    /// that cluster's processors (consecutive, evenly divided).
    ///
    /// # Panics
    ///
    /// Panics (clustered only) if `pe_count` is not divisible by the
    /// cluster count.
    pub fn is_attached(&self, pe: usize, bus: usize, pe_count: usize) -> bool {
        match *self {
            Routing::Interleaved(_) => true,
            Routing::Clustered { clusters, .. } => {
                if bus == 0 {
                    return true;
                }
                assert!(
                    pe_count.is_multiple_of(clusters),
                    "{pe_count} PEs do not divide into {clusters} clusters"
                );
                let per_cluster = pe_count / clusters;
                pe / per_cluster == bus - 1
            }
        }
    }

    /// The cluster PE `pe` belongs to (clustered routing only; all PEs
    /// share "cluster 0" under interleaved routing).
    pub fn cluster_of(&self, pe: usize, pe_count: usize) -> usize {
        match *self {
            Routing::Interleaved(_) => 0,
            Routing::Clustered { clusters, .. } => {
                let per_cluster = pe_count / clusters;
                pe / per_cluster
            }
        }
    }

    /// The private region of cluster `cluster` under clustered routing.
    ///
    /// # Panics
    ///
    /// Panics for interleaved routing or an out-of-range cluster.
    pub fn cluster_region(&self, cluster: usize) -> (Addr, u64) {
        match *self {
            Routing::Clustered {
                clusters,
                global_words,
                cluster_words,
            } => {
                assert!(cluster < clusters, "cluster {cluster} out of range");
                (
                    Addr::new(global_words + cluster as u64 * cluster_words),
                    cluster_words,
                )
            }
            Routing::Interleaved(_) => {
                panic!("interleaved routing has no cluster regions")
            }
        }
    }
}

impl Default for Routing {
    fn default() -> Self {
        Routing::single()
    }
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Routing::Interleaved(t) => write!(f, "{t}"),
            Routing::Clustered {
                clusters,
                global_words,
                cluster_words,
            } => write!(
                f,
                "hierarchical: global bus ({global_words} words) + {clusters} cluster bus(es) \
                 ({cluster_words} words each)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_routing_is_one_bus_everyone_attached() {
        let r = Routing::single();
        assert_eq!(r.bus_count(), 1);
        assert_eq!(r.bus_of(Addr::new(12345)), 0);
        assert!(r.is_attached(7, 0, 16));
        assert_eq!(r.cluster_of(7, 16), 0);
    }

    #[test]
    fn interleaved_matches_topology() {
        let r = Routing::interleaved(1);
        assert_eq!(r.bus_count(), 2);
        assert_eq!(r.bus_of(Addr::new(3)), 1);
        assert!(r.is_attached(0, 1, 4));
    }

    #[test]
    fn clustered_routes_shared_to_global_bus() {
        let r = Routing::clustered(2, 128, 64);
        assert_eq!(r.bus_count(), 3);
        for a in [0u64, 64, 127] {
            assert_eq!(r.bus_of(Addr::new(a)), 0);
        }
        assert_eq!(r.bus_of(Addr::new(128)), 1);
        assert_eq!(r.bus_of(Addr::new(191)), 1);
        assert_eq!(r.bus_of(Addr::new(192)), 2);
        assert_eq!(r.bus_of(Addr::new(255)), 2);
    }

    #[test]
    #[should_panic(expected = "beyond the last cluster")]
    fn clustered_out_of_range_panics() {
        let _ = Routing::clustered(2, 128, 64).bus_of(Addr::new(256));
    }

    #[test]
    fn clustered_attachment_partitions_pes() {
        let r = Routing::clustered(2, 128, 64);
        // 4 PEs, 2 clusters: PEs 0-1 on cluster bus 1, PEs 2-3 on bus 2.
        for pe in 0..4 {
            assert!(r.is_attached(pe, 0, 4), "everyone on the global bus");
        }
        assert!(r.is_attached(0, 1, 4));
        assert!(r.is_attached(1, 1, 4));
        assert!(!r.is_attached(2, 1, 4));
        assert!(!r.is_attached(0, 2, 4));
        assert!(r.is_attached(3, 2, 4));
        assert_eq!(r.cluster_of(0, 4), 0);
        assert_eq!(r.cluster_of(3, 4), 1);
    }

    #[test]
    fn cluster_regions_are_consecutive() {
        let r = Routing::clustered(3, 100, 50);
        assert_eq!(r.cluster_region(0), (Addr::new(100), 50));
        assert_eq!(r.cluster_region(1), (Addr::new(150), 50));
        assert_eq!(r.cluster_region(2), (Addr::new(200), 50));
    }

    #[test]
    #[should_panic(expected = "no cluster regions")]
    fn interleaved_has_no_cluster_regions() {
        let _ = Routing::single().cluster_region(0);
    }

    #[test]
    fn display_names_the_shape() {
        assert!(Routing::single().to_string().contains("1 shared bus"));
        assert!(Routing::clustered(2, 64, 32)
            .to_string()
            .contains("hierarchical"));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = Routing::clustered(0, 64, 32);
    }
}
