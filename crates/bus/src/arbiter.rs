//! Bus arbitration policies.
//!
//! The paper assumes "a bus arbitrator that allocates access to the bus"
//! (Section 2, assumption 2) without fixing a policy; the choice is
//! orthogonal to the cache schemes, which is exactly why it is pluggable
//! here (and why ablation A2 in DESIGN.md sweeps it).

use crate::RequesterSet;
use decache_mem::PeId;
use decache_rng::Rng;
use std::fmt;

/// The serializable fairness state of a built-in [`Arbiter`], as
/// captured by [`Arbiter::checkpoint_state`] and reinstated by
/// [`Arbiter::restore_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterCheckpoint {
    /// The arbiter carries no mutable state ([`FixedPriority`]).
    Stateless,
    /// [`RoundRobin`]: the PE granted most recently, if any.
    RoundRobin {
        /// The previously granted PE.
        last: Option<PeId>,
    },
    /// [`RandomArbiter`]: the 256-bit RNG stream state.
    Random {
        /// The xoshiro256\*\* state words.
        rng_state: [u64; 4],
    },
}

/// A bus arbitration policy: given the set of requesting processing
/// elements (in ascending id order, never empty), choose the one to grant
/// this cycle.
///
/// Implementations must return an element of `requesters`.
pub trait Arbiter: fmt::Debug {
    /// Chooses the requester to grant the bus to this cycle.
    ///
    /// `requesters` is sorted ascending and non-empty.
    fn grant(&mut self, requesters: &[PeId]) -> PeId;

    /// Chooses the requester to grant from a [`RequesterSet`] view, the
    /// form [`BusQueue::grant`] uses on the hot path. Must pick the same
    /// PE that [`Arbiter::grant`] would pick from the set's members in
    /// ascending order; the default materializes that slice and
    /// delegates, so external arbiters only implementing `grant` keep
    /// their exact behavior. The built-in policies override it with
    /// allocation-free bit scans.
    ///
    /// [`BusQueue::grant`]: crate::BusQueue::grant
    fn pick(&mut self, requesters: &RequesterSet) -> PeId {
        let members: Vec<PeId> = requesters.iter().collect();
        self.grant(&members)
    }

    /// Resets any internal fairness state.
    fn reset(&mut self) {}

    /// Exports the arbiter's fairness state for a checkpoint, or `None`
    /// if this arbiter does not support checkpointing (the default for
    /// external implementations — a machine holding one cannot be
    /// checkpointed and reports it as a structured error).
    fn checkpoint_state(&self) -> Option<ArbiterCheckpoint> {
        None
    }

    /// Reinstates fairness state captured by
    /// [`Arbiter::checkpoint_state`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `state` belongs to a
    /// different arbiter kind (or the arbiter does not support
    /// checkpointing, the default).
    fn restore_state(&mut self, state: &ArbiterCheckpoint) -> Result<(), String> {
        let _ = state;
        Err(format!("{self:?} does not support checkpoint restore"))
    }
}

/// Round-robin arbitration: the grant rotates, starting from the id just
/// above the previously granted PE. This is the fair default used by all
/// experiments unless stated otherwise.
///
/// # Examples
///
/// ```
/// use decache_bus::{Arbiter, RoundRobin};
/// use decache_mem::PeId;
///
/// let mut arb = RoundRobin::new();
/// let reqs = [PeId::new(0), PeId::new(1), PeId::new(2)];
/// assert_eq!(arb.grant(&reqs), PeId::new(0));
/// assert_eq!(arb.grant(&reqs), PeId::new(1));
/// assert_eq!(arb.grant(&reqs), PeId::new(2));
/// assert_eq!(arb.grant(&reqs), PeId::new(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last: Option<PeId>,
}

impl RoundRobin {
    /// Creates a round-robin arbiter with no grant history.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Arbiter for RoundRobin {
    fn grant(&mut self, requesters: &[PeId]) -> PeId {
        assert!(!requesters.is_empty(), "arbiter invoked with no requesters");
        let chosen = match self.last {
            None => requesters[0],
            Some(last) => *requesters
                .iter()
                .find(|&&pe| pe > last)
                .unwrap_or(&requesters[0]),
        };
        self.last = Some(chosen);
        chosen
    }

    fn pick(&mut self, requesters: &RequesterSet) -> PeId {
        assert!(!requesters.is_empty(), "arbiter invoked with no requesters");
        let first = requesters.first().expect("non-empty set has a first");
        let chosen = match self.last {
            None => first,
            Some(last) => requesters.next_above(last).unwrap_or(first),
        };
        self.last = Some(chosen);
        chosen
    }

    fn reset(&mut self) {
        self.last = None;
    }

    fn checkpoint_state(&self) -> Option<ArbiterCheckpoint> {
        Some(ArbiterCheckpoint::RoundRobin { last: self.last })
    }

    fn restore_state(&mut self, state: &ArbiterCheckpoint) -> Result<(), String> {
        match *state {
            ArbiterCheckpoint::RoundRobin { last } => {
                self.last = last;
                Ok(())
            }
            other => Err(format!("round-robin arbiter cannot restore {other:?}")),
        }
    }
}

/// Fixed-priority arbitration: the lowest-numbered requester always wins.
/// Deliberately unfair; used to demonstrate starvation in ablation A2.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPriority;

impl FixedPriority {
    /// Creates a fixed-priority arbiter.
    pub fn new() -> Self {
        FixedPriority
    }
}

impl Arbiter for FixedPriority {
    fn grant(&mut self, requesters: &[PeId]) -> PeId {
        assert!(!requesters.is_empty(), "arbiter invoked with no requesters");
        requesters[0]
    }

    fn pick(&mut self, requesters: &RequesterSet) -> PeId {
        requesters
            .first()
            .expect("arbiter invoked with no requesters")
    }

    fn checkpoint_state(&self) -> Option<ArbiterCheckpoint> {
        Some(ArbiterCheckpoint::Stateless)
    }

    fn restore_state(&mut self, state: &ArbiterCheckpoint) -> Result<(), String> {
        match state {
            ArbiterCheckpoint::Stateless => Ok(()),
            other => Err(format!("fixed-priority arbiter cannot restore {other:?}")),
        }
    }
}

/// Random arbitration on a seeded [`decache_rng::Rng`] stream, so that
/// simulations remain reproducible from a seed.
#[derive(Debug, Clone)]
pub struct RandomArbiter {
    rng: Rng,
}

impl RandomArbiter {
    /// Creates a random arbiter from a seed (any seed, including zero).
    pub fn new(seed: u64) -> Self {
        RandomArbiter {
            rng: Rng::from_seed(seed),
        }
    }
}

impl Arbiter for RandomArbiter {
    fn grant(&mut self, requesters: &[PeId]) -> PeId {
        assert!(!requesters.is_empty(), "arbiter invoked with no requesters");
        *self.rng.choose(requesters)
    }

    fn pick(&mut self, requesters: &RequesterSet) -> PeId {
        assert!(!requesters.is_empty(), "arbiter invoked with no requesters");
        // gen_range(0..n) draws the same bounded sample `choose` does on a
        // slice of the same length, so seeded streams are unchanged.
        requesters.nth(self.rng.gen_range(0..requesters.len()))
    }

    fn checkpoint_state(&self) -> Option<ArbiterCheckpoint> {
        Some(ArbiterCheckpoint::Random {
            rng_state: self.rng.state(),
        })
    }

    fn restore_state(&mut self, state: &ArbiterCheckpoint) -> Result<(), String> {
        match *state {
            ArbiterCheckpoint::Random { rng_state } => {
                self.rng = Rng::from_state(rng_state);
                Ok(())
            }
            other => Err(format!("random arbiter cannot restore {other:?}")),
        }
    }
}

/// A value-level selector for the built-in arbiters, convenient for
/// experiment configuration sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`FixedPriority`].
    FixedPriority,
    /// [`RandomArbiter`] with the given seed.
    Random(u64),
}

impl ArbiterKind {
    /// Instantiates the arbiter this kind names.
    pub fn build(self) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobin::new()),
            ArbiterKind::FixedPriority => Box::new(FixedPriority::new()),
            ArbiterKind::Random(seed) => Box::new(RandomArbiter::new(seed)),
        }
    }
}

impl fmt::Display for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterKind::RoundRobin => write!(f, "round-robin"),
            ArbiterKind::FixedPriority => write!(f, "fixed-priority"),
            ArbiterKind::Random(seed) => write!(f, "random(seed={seed})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pes(ids: &[u16]) -> Vec<PeId> {
        ids.iter().map(|&i| PeId::new(i)).collect()
    }

    #[test]
    fn round_robin_rotates_and_wraps() {
        let mut arb = RoundRobin::new();
        let reqs = pes(&[1, 3, 5]);
        assert_eq!(arb.grant(&reqs), PeId::new(1));
        assert_eq!(arb.grant(&reqs), PeId::new(3));
        assert_eq!(arb.grant(&reqs), PeId::new(5));
        assert_eq!(arb.grant(&reqs), PeId::new(1));
    }

    #[test]
    fn round_robin_skips_absent_requesters() {
        let mut arb = RoundRobin::new();
        assert_eq!(arb.grant(&pes(&[0, 1, 2])), PeId::new(0));
        // PE 1 dropped out; next grant should go to 2, not 1.
        assert_eq!(arb.grant(&pes(&[0, 2])), PeId::new(2));
        assert_eq!(arb.grant(&pes(&[0, 2])), PeId::new(0));
    }

    #[test]
    fn round_robin_reset_restores_initial_behaviour() {
        let mut arb = RoundRobin::new();
        let reqs = pes(&[0, 1]);
        arb.grant(&reqs);
        arb.reset();
        assert_eq!(arb.grant(&reqs), PeId::new(0));
    }

    #[test]
    fn round_robin_is_starvation_free() {
        // With a persistent full request set, every PE is granted within
        // one full rotation.
        let mut arb = RoundRobin::new();
        let reqs = pes(&[0, 1, 2, 3, 4]);
        let mut counts = [0u32; 5];
        for _ in 0..100 {
            counts[arb.grant(&reqs).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "uneven grants: {counts:?}");
    }

    #[test]
    fn fixed_priority_always_picks_lowest() {
        let mut arb = FixedPriority::new();
        for _ in 0..10 {
            assert_eq!(arb.grant(&pes(&[2, 4, 7])), PeId::new(2));
        }
    }

    #[test]
    fn random_arbiter_is_deterministic_per_seed() {
        let reqs = pes(&[0, 1, 2, 3]);
        let run = |seed: u64| {
            let mut arb = RandomArbiter::new(seed);
            (0..32).map(|_| arb.grant(&reqs)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_arbiter_covers_all_requesters() {
        let reqs = pes(&[0, 1, 2]);
        let mut arb = RandomArbiter::new(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[arb.grant(&reqs).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut arb = RandomArbiter::new(0);
        let _ = arb.grant(&pes(&[0, 1]));
    }

    #[test]
    fn kind_builds_matching_arbiter() {
        let mut a = ArbiterKind::FixedPriority.build();
        assert_eq!(a.grant(&pes(&[3, 5])), PeId::new(3));
        assert_eq!(ArbiterKind::RoundRobin.to_string(), "round-robin");
        assert_eq!(ArbiterKind::Random(9).to_string(), "random(seed=9)");
    }

    #[test]
    #[should_panic(expected = "no requesters")]
    fn empty_request_set_panics() {
        RoundRobin::new().grant(&[]);
    }

    #[test]
    fn checkpoint_round_trip_preserves_fairness_state() {
        // Round robin: the rotation pointer survives.
        let reqs = pes(&[0, 1, 2]);
        let mut arb = RoundRobin::new();
        arb.grant(&reqs);
        let ck = arb.checkpoint_state().unwrap();
        let mut fresh = RoundRobin::new();
        fresh.restore_state(&ck).unwrap();
        assert_eq!(fresh.grant(&reqs), arb.grant(&reqs));

        // Random: the stream resumes exactly.
        let mut arb = RandomArbiter::new(11);
        for _ in 0..5 {
            arb.grant(&reqs);
        }
        let ck = arb.checkpoint_state().unwrap();
        let mut fresh = RandomArbiter::new(0);
        fresh.restore_state(&ck).unwrap();
        for _ in 0..32 {
            assert_eq!(fresh.grant(&reqs), arb.grant(&reqs));
        }

        // Kind mismatches are structured errors, not panics.
        assert!(RoundRobin::new()
            .restore_state(&ArbiterCheckpoint::Stateless)
            .is_err());
        assert!(FixedPriority::new().restore_state(&ck).is_err());
        assert!(FixedPriority::new()
            .restore_state(&ArbiterCheckpoint::Stateless)
            .is_ok());
    }
}
