//! The bus transaction vocabulary.

use decache_mem::{Addr, PeId, Word};
use std::fmt;

/// A bus operation, the "activity" part of what every cache snoops.
///
/// The paper's RB scheme uses bus reads and bus writes; RWB adds the **bus
/// invalidate** signal (Section 5); read-modify-write support adds the
/// locked read / unlocking write pair (Sections 3 and 6). The paper notes
/// the invalidate signal "can be implemented by reserving one value from
/// the range of values assumed by any data word" — a distinct operation is
/// behaviourally identical and type-safe, so that is what we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// A bus read: fetches a word from memory (or from an interrupting
    /// cache in the `L` state). The returned value is broadcast: every
    /// snooping cache may capture it.
    Read,
    /// A bus write carrying its data. Updates memory; under RB snoopers
    /// observe only the event, under RWB they also capture the data.
    Write(Word),
    /// The RWB bus-invalidate signal: an event-only broadcast that moves
    /// every other cache to the invalid state.
    Invalidate,
    /// The first half of a read-modify-write cycle: reads the word and
    /// locks it in memory.
    ReadWithLock,
    /// The second half of a read-modify-write cycle: writes the word and
    /// releases the lock.
    WriteWithUnlock(Word),
}

impl BusOp {
    /// Returns the data payload carried by the operation, if any.
    pub fn data(self) -> Option<Word> {
        match self {
            BusOp::Write(w) | BusOp::WriteWithUnlock(w) => Some(w),
            BusOp::Read | BusOp::Invalidate | BusOp::ReadWithLock => None,
        }
    }

    /// Returns the payload-free classification of the operation.
    pub fn kind(self) -> BusOpKind {
        match self {
            BusOp::Read => BusOpKind::Read,
            BusOp::Write(_) => BusOpKind::Write,
            BusOp::Invalidate => BusOpKind::Invalidate,
            BusOp::ReadWithLock => BusOpKind::ReadWithLock,
            BusOp::WriteWithUnlock(_) => BusOpKind::WriteWithUnlock,
        }
    }

    /// Returns `true` for the operations that fetch data (plain and locked
    /// reads).
    pub fn is_read(self) -> bool {
        matches!(self, BusOp::Read | BusOp::ReadWithLock)
    }

    /// Returns `true` for the operations that carry data toward memory.
    pub fn is_write(self) -> bool {
        matches!(self, BusOp::Write(_) | BusOp::WriteWithUnlock(_))
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusOp::Read => write!(f, "BR"),
            BusOp::Write(w) => write!(f, "BW({w})"),
            BusOp::Invalidate => write!(f, "BI"),
            BusOp::ReadWithLock => write!(f, "BRL"),
            BusOp::WriteWithUnlock(w) => write!(f, "BWU({w})"),
        }
    }
}

/// The classification of a [`BusOp`] without its payload, used as an index
/// for traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BusOpKind {
    /// Plain bus read.
    Read,
    /// Plain bus write.
    Write,
    /// RWB bus invalidate.
    Invalidate,
    /// Locked read (read-modify-write first half).
    ReadWithLock,
    /// Unlocking write (read-modify-write second half).
    WriteWithUnlock,
}

impl BusOpKind {
    /// All kinds, in accounting order.
    pub const ALL: [BusOpKind; 5] = [
        BusOpKind::Read,
        BusOpKind::Write,
        BusOpKind::Invalidate,
        BusOpKind::ReadWithLock,
        BusOpKind::WriteWithUnlock,
    ];

    /// A short mnemonic used in tables (BR, BW, BI, BRL, BWU).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BusOpKind::Read => "BR",
            BusOpKind::Write => "BW",
            BusOpKind::Invalidate => "BI",
            BusOpKind::ReadWithLock => "BRL",
            BusOpKind::WriteWithUnlock => "BWU",
        }
    }
}

impl fmt::Display for BusOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A complete bus transaction: who, where, and what.
///
/// # Examples
///
/// ```
/// use decache_bus::{BusOp, BusTransaction};
/// use decache_mem::{Addr, PeId, Word};
///
/// let tx = BusTransaction::new(PeId::new(2), Addr::new(40), BusOp::Write(Word::new(9)));
/// assert_eq!(tx.to_string(), "P2 BW(9) @40");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusTransaction {
    /// The processing element (cache) that initiated the transaction.
    /// Write-backs initiated by the memory side of the model use the
    /// evicting cache's id.
    pub initiator: PeId,
    /// The word address the transaction targets.
    pub addr: Addr,
    /// The operation, with payload if any.
    pub op: BusOp,
}

impl BusTransaction {
    /// Creates a transaction.
    pub const fn new(initiator: PeId, addr: Addr, op: BusOp) -> Self {
        BusTransaction {
            initiator,
            addr,
            op,
        }
    }
}

impl fmt::Display for BusTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.initiator, self.op, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_payloads() {
        assert_eq!(BusOp::Read.data(), None);
        assert_eq!(BusOp::Invalidate.data(), None);
        assert_eq!(BusOp::ReadWithLock.data(), None);
        assert_eq!(BusOp::Write(Word::new(5)).data(), Some(Word::new(5)));
        assert_eq!(
            BusOp::WriteWithUnlock(Word::new(6)).data(),
            Some(Word::new(6))
        );
    }

    #[test]
    fn kind_classification_is_total() {
        for kind in BusOpKind::ALL {
            let op = match kind {
                BusOpKind::Read => BusOp::Read,
                BusOpKind::Write => BusOp::Write(Word::ZERO),
                BusOpKind::Invalidate => BusOp::Invalidate,
                BusOpKind::ReadWithLock => BusOp::ReadWithLock,
                BusOpKind::WriteWithUnlock => BusOp::WriteWithUnlock(Word::ZERO),
            };
            assert_eq!(op.kind(), kind);
        }
    }

    #[test]
    fn read_write_predicates() {
        assert!(BusOp::Read.is_read());
        assert!(BusOp::ReadWithLock.is_read());
        assert!(!BusOp::Invalidate.is_read());
        assert!(BusOp::Write(Word::ZERO).is_write());
        assert!(BusOp::WriteWithUnlock(Word::ZERO).is_write());
        assert!(!BusOp::Read.is_write());
    }

    #[test]
    fn mnemonics_match_paper_legend() {
        // Figure 3-1 / 5-1 legends: BW = Bus Write, BR = Bus Read,
        // BI = Bus Invalidate.
        assert_eq!(BusOpKind::Read.mnemonic(), "BR");
        assert_eq!(BusOpKind::Write.mnemonic(), "BW");
        assert_eq!(BusOpKind::Invalidate.mnemonic(), "BI");
    }

    #[test]
    fn transaction_display() {
        let tx = BusTransaction::new(PeId::new(0), Addr::new(3), BusOp::Read);
        assert_eq!(tx.to_string(), "P0 BR @3");
    }
}
