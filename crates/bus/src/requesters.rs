//! The set of processing elements waiting in a queue's pending lane.

use decache_mem::PeId;

/// A dense bitset over processing-element ids: the view of the pending
/// lane that [`BusQueue`] hands an [`Arbiter`] each granting cycle.
///
/// Membership queries, ascending traversal, and rank selection are all
/// word-at-a-time bit scans, so a grant decision costs O(pes/64) with no
/// allocation — the property that keeps saturated-bus cycles cheap as the
/// machine scales to the paper's 128-PE configuration (Section 7).
///
/// Ascending id order matches what arbiters historically saw as a sorted
/// slice, so arbitration decisions are unchanged by the representation.
///
/// [`BusQueue`]: crate::BusQueue
/// [`Arbiter`]: crate::Arbiter
///
/// # Examples
///
/// ```
/// use decache_bus::RequesterSet;
/// use decache_mem::PeId;
///
/// let mut set = RequesterSet::new();
/// set.insert(PeId::new(5));
/// set.insert(PeId::new(2));
/// assert_eq!(set.first(), Some(PeId::new(2)));
/// assert_eq!(set.next_above(PeId::new(2)), Some(PeId::new(5)));
/// assert_eq!(set.iter().collect::<Vec<_>>(), [PeId::new(2), PeId::new(5)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequesterSet {
    words: Vec<u64>,
    len: usize,
}

impl RequesterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RequesterSet::default()
    }

    /// Adds a PE; returns `true` if it was newly inserted.
    pub fn insert(&mut self, pe: PeId) -> bool {
        let (word, bit) = (pe.index() / 64, pe.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    /// Removes a PE; returns `true` if it was present.
    pub fn remove(&mut self, pe: PeId) -> bool {
        let (word, bit) = (pe.index() / 64, pe.index() % 64);
        let mask = 1u64 << bit;
        if word >= self.words.len() || self.words[word] & mask == 0 {
            return false;
        }
        self.words[word] &= !mask;
        self.len -= 1;
        true
    }

    /// Returns `true` if the PE is in the set.
    pub fn contains(&self, pe: PeId) -> bool {
        let (word, bit) = (pe.index() / 64, pe.index() % 64);
        word < self.words.len() && self.words[word] & (1u64 << bit) != 0
    }

    /// The number of PEs in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no PE is in the set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lowest-id member, if any.
    pub fn first(&self) -> Option<PeId> {
        self.scan_from(0)
    }

    /// The lowest member with id strictly greater than `pe`, if any.
    pub fn next_above(&self, pe: PeId) -> Option<PeId> {
        self.scan_from(pe.index() + 1)
    }

    /// The `n`-th member in ascending id order (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.len()`.
    pub fn nth(&self, n: usize) -> PeId {
        assert!(
            n < self.len,
            "rank {n} out of bounds for {} members",
            self.len
        );
        let mut remaining = n;
        for (w, &word) in self.words.iter().enumerate() {
            let count = word.count_ones() as usize;
            if remaining < count {
                let mut word = word;
                for _ in 0..remaining {
                    word &= word - 1; // clear lowest set bit
                }
                return PeId::new((w * 64 + word.trailing_zeros() as usize) as u16);
            }
            remaining -= count;
        }
        unreachable!("len invariant violated");
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = PeId> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let pe = self.scan_from(next)?;
            next = pe.index() + 1;
            Some(pe)
        })
    }

    fn scan_from(&self, start: usize) -> Option<PeId> {
        let mut word = start / 64;
        if word >= self.words.len() {
            return None;
        }
        let mut bits = self.words[word] & (!0u64 << (start % 64));
        loop {
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                return Some(PeId::new(idx as u16));
            }
            word += 1;
            if word >= self.words.len() {
                return None;
            }
            bits = self.words[word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> RequesterSet {
        let mut s = RequesterSet::new();
        for &id in ids {
            s.insert(PeId::new(id));
        }
        s
    }

    #[test]
    fn insert_remove_contains_len() {
        let mut s = RequesterSet::new();
        assert!(s.is_empty());
        assert!(s.insert(PeId::new(3)));
        assert!(!s.insert(PeId::new(3)));
        assert!(s.contains(PeId::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(PeId::new(3)));
        assert!(!s.remove(PeId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn ascending_traversal_crosses_word_boundaries() {
        let s = set(&[0, 63, 64, 127, 200]);
        let ids: Vec<u16> = s.iter().map(|pe| pe.index() as u16).collect();
        assert_eq!(ids, [0, 63, 64, 127, 200]);
        assert_eq!(s.next_above(PeId::new(63)), Some(PeId::new(64)));
        assert_eq!(s.next_above(PeId::new(200)), None);
        assert_eq!(s.first(), Some(PeId::new(0)));
    }

    #[test]
    fn nth_matches_sorted_order() {
        let s = set(&[7, 1, 130, 64]);
        assert_eq!(s.nth(0), PeId::new(1));
        assert_eq!(s.nth(1), PeId::new(7));
        assert_eq!(s.nth(2), PeId::new(64));
        assert_eq!(s.nth(3), PeId::new(130));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn nth_out_of_range_panics() {
        set(&[2]).nth(1);
    }

    #[test]
    fn contains_beyond_storage_is_false() {
        let s = set(&[1]);
        assert!(!s.contains(PeId::new(500)));
        assert_eq!(s.next_above(PeId::new(500)), None);
    }
}
