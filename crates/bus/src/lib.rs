//! Shared-bus substrate for the `decache` simulator.
//!
//! The paper's machine model (Section 2) is a set of processing elements
//! and memories joined by a *logically single* shared bus with:
//!
//! 1. a **bus arbitrator** that allocates access each cycle,
//! 2. caches that **snoop** every transaction (address, operation, data),
//! 3. the ability of a cache to **interrupt (kill)** the current bus
//!    activity and replace it with one of its own, with the killed
//!    transaction retried on the next cycle.
//!
//! This crate provides the passive machinery for all of that: the
//! transaction vocabulary ([`BusOp`], [`BusTransaction`]), pluggable
//! [`Arbiter`] policies, the single-outstanding-request [`BusQueue`] with a
//! priority retry lane, per-operation [`TrafficStats`], and the
//! least-significant-bit [`Topology`] routing of the multiple-shared-bus
//! configuration (Section 7, Figure 7-1). The *active* cycle execution —
//! dispatching snoops into protocol state machines — lives in
//! `decache-machine`, which owns the caches and the memory.
//!
//! # Examples
//!
//! ```
//! use decache_bus::{BusOp, BusQueue, BusTransaction, RoundRobin};
//! use decache_mem::{Addr, PeId, Word};
//!
//! let mut queue = BusQueue::new();
//! queue.request(BusTransaction::new(PeId::new(0), Addr::new(1), BusOp::Read))?;
//! queue.request(BusTransaction::new(PeId::new(1), Addr::new(2), BusOp::Write(Word::ONE)))?;
//!
//! let mut arbiter = RoundRobin::new();
//! let granted = queue.grant(&mut arbiter).expect("two requests pending");
//! assert_eq!(granted.initiator, PeId::new(0));
//! # Ok::<(), decache_bus::BusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod discipline;
mod multibus;
mod queue;
mod requesters;
mod routing;
mod traffic;
mod transaction;

pub use arbiter::{
    Arbiter, ArbiterCheckpoint, ArbiterKind, FixedPriority, RandomArbiter, RoundRobin,
};
pub use discipline::ServiceDiscipline;
pub use multibus::{MultiBusStats, Topology};
pub use queue::{BusError, BusQueue, QueueState};
pub use requesters::RequesterSet;
pub use routing::Routing;
pub use traffic::TrafficStats;
pub use transaction::{BusOp, BusOpKind, BusTransaction};
