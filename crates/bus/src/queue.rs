//! The pending-request queue in front of the arbiter.

use crate::{Arbiter, BusTransaction, RequesterSet};
use decache_mem::PeId;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// An error produced by bus queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// The processing element already has an outstanding request; the
    /// machine model allows at most one per PE (a PE stalls on its cache
    /// until the bus transaction completes).
    AlreadyPending {
        /// The PE with the duplicate request.
        pe: PeId,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BusError::AlreadyPending { pe } => {
                write!(f, "{pe} already has an outstanding bus request")
            }
        }
    }
}

impl Error for BusError {}

/// The request queue in front of the bus arbiter.
///
/// Two lanes, matching the paper's semantics:
///
/// * a **retry lane** for transactions that were interrupted (killed) by a
///   snooping cache — "the interrupted bus read will be retried on the next
///   cycle" (Section 3) — served FIFO *before* any arbitration, and
/// * a **pending lane** holding at most one request per PE, from which the
///   [`Arbiter`] picks when the retry lane is empty.
///
/// The pending lane is a [`RequesterSet`] bitset plus a PE-indexed slot
/// vector, so every operation — request, grant, cancel — is constant-time
/// in the number of waiting PEs and the granting cycle allocates nothing.
/// Arbiters observe requesters in ascending id order exactly as before.
///
/// # Examples
///
/// ```
/// use decache_bus::{BusOp, BusQueue, BusTransaction, FixedPriority};
/// use decache_mem::{Addr, PeId};
///
/// let mut q = BusQueue::new();
/// let tx = BusTransaction::new(PeId::new(4), Addr::new(0), BusOp::Read);
/// q.request(tx)?;
/// q.push_retry(BusTransaction::new(PeId::new(9), Addr::new(1), BusOp::Read));
/// // The retried transaction is served first regardless of arbitration.
/// let mut arb = FixedPriority::new();
/// assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(9));
/// assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(4));
/// # Ok::<(), decache_bus::BusError>(())
/// ```
#[derive(Debug, Default)]
pub struct BusQueue {
    retry: VecDeque<BusTransaction>,
    requesters: RequesterSet,
    slots: Vec<Option<BusTransaction>>,
}

impl BusQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BusQueue::default()
    }

    /// Enqueues a fresh request from a PE.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::AlreadyPending`] if the PE already has a request
    /// in the pending lane.
    pub fn request(&mut self, tx: BusTransaction) -> Result<(), BusError> {
        if !self.requesters.insert(tx.initiator) {
            return Err(BusError::AlreadyPending { pe: tx.initiator });
        }
        let slot = tx.initiator.index();
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        self.slots[slot] = Some(tx);
        Ok(())
    }

    /// Enqueues an interrupted transaction for priority retry on the next
    /// cycle.
    pub fn push_retry(&mut self, tx: BusTransaction) {
        self.retry.push_back(tx);
    }

    /// Removes and returns the transaction to run this cycle: the oldest
    /// retry if any, otherwise the arbiter's pick among pending requests.
    /// Returns `None` when the queue is empty (an idle bus cycle).
    pub fn grant(&mut self, arbiter: &mut dyn Arbiter) -> Option<BusTransaction> {
        if let Some(tx) = self.retry.pop_front() {
            return Some(tx);
        }
        if self.requesters.is_empty() {
            return None;
        }
        let winner = arbiter.pick(&self.requesters);
        assert!(
            self.requesters.remove(winner),
            "arbiter must choose one of the requesters"
        );
        Some(
            self.slots[winner.index()]
                .take()
                .expect("requester set names only occupied slots"),
        )
    }

    /// Returns `true` if the PE has a request waiting in either lane.
    pub fn has_pending(&self, pe: PeId) -> bool {
        self.requesters.contains(pe) || self.retry.iter().any(|tx| tx.initiator == pe)
    }

    /// Removes any request the PE has in either lane; used when a pending
    /// miss is satisfied early by snooping a broadcast.
    pub fn cancel(&mut self, pe: PeId) {
        if self.requesters.remove(pe) {
            self.slots[pe.index()] = None;
        }
        self.retry.retain(|tx| tx.initiator != pe);
    }

    /// Returns the total number of queued transactions in both lanes.
    pub fn len(&self) -> usize {
        self.retry.len() + self.requesters.len()
    }

    /// Returns `true` if no transactions are queued.
    pub fn is_empty(&self) -> bool {
        self.retry.is_empty() && self.requesters.is_empty()
    }

    /// The set of PEs waiting in the pending lane (excludes the retry
    /// lane), in the form handed to the arbiter.
    pub fn requesters(&self) -> &RequesterSet {
        &self.requesters
    }

    /// Exports both lanes for a checkpoint: `(retry lane in FIFO order,
    /// pending lane in ascending PE order)`. Together with the arbiter's
    /// own state this is the queue's complete behaviour-relevant state.
    pub fn checkpoint_state(&self) -> (Vec<BusTransaction>, Vec<BusTransaction>) {
        let retry: Vec<BusTransaction> = self.retry.iter().copied().collect();
        let pending: Vec<BusTransaction> = self
            .requesters
            .iter()
            .map(|pe| self.slots[pe.index()].expect("requester set names only occupied slots"))
            .collect();
        (retry, pending)
    }

    /// Replaces both lanes from a checkpoint produced by
    /// [`BusQueue::checkpoint_state`]: `retry` refills the retry lane in
    /// order, `pending` re-requests each transaction.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::AlreadyPending`] if `pending` names the same
    /// PE twice; the queue is left cleared in that case.
    pub fn restore_state(
        &mut self,
        retry: Vec<BusTransaction>,
        pending: Vec<BusTransaction>,
    ) -> Result<(), BusError> {
        self.retry.clear();
        self.requesters = RequesterSet::new();
        self.slots.clear();
        for tx in pending {
            self.request(tx)?;
        }
        self.retry.extend(retry);
        Ok(())
    }

    /// Checks the pending lane's internal bookkeeping: the requester
    /// bitset must name exactly the occupied slots. Used by the machine's
    /// fast-path invariant suite.
    ///
    /// # Panics
    ///
    /// Panics if the bitset and slot vector disagree.
    pub fn assert_lane_invariants(&self) {
        let occupied: Vec<PeId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(i, _)| PeId::new(i as u16))
            .collect();
        let named: Vec<PeId> = self.requesters.iter().collect();
        assert_eq!(
            named, occupied,
            "requester bitset disagrees with occupied slots"
        );
        assert_eq!(self.requesters.len(), occupied.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusOp, RoundRobin};
    use decache_mem::{Addr, Word};

    fn tx(pe: u16, addr: u64) -> BusTransaction {
        BusTransaction::new(PeId::new(pe), Addr::new(addr), BusOp::Read)
    }

    #[test]
    fn empty_queue_grants_nothing() {
        let mut q = BusQueue::new();
        let mut arb = RoundRobin::new();
        assert!(q.grant(&mut arb).is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn one_outstanding_request_per_pe() {
        let mut q = BusQueue::new();
        q.request(tx(0, 1)).unwrap();
        let err = q.request(tx(0, 2)).unwrap_err();
        assert_eq!(err, BusError::AlreadyPending { pe: PeId::new(0) });
        assert_eq!(err.to_string(), "P0 already has an outstanding bus request");
    }

    #[test]
    fn retries_preempt_arbitration() {
        let mut q = BusQueue::new();
        q.request(tx(0, 1)).unwrap();
        q.push_retry(tx(7, 9));
        q.push_retry(tx(8, 10));
        let mut arb = RoundRobin::new();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(7));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(8));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_clears_both_lanes() {
        let mut q = BusQueue::new();
        q.request(tx(1, 1)).unwrap();
        q.push_retry(tx(1, 2));
        assert!(q.has_pending(PeId::new(1)));
        q.cancel(PeId::new(1));
        assert!(!q.has_pending(PeId::new(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn grant_respects_round_robin_order() {
        let mut q = BusQueue::new();
        let mut arb = RoundRobin::new();
        for pe in [2u16, 0, 1] {
            q.request(tx(pe, u64::from(pe))).unwrap();
        }
        // Requesters are presented sorted, so round robin goes 0, 1, 2.
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(1));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
    }

    #[test]
    fn checkpoint_round_trip_preserves_both_lanes_and_order() {
        let mut q = BusQueue::new();
        q.request(tx(3, 30)).unwrap();
        q.request(tx(1, 10)).unwrap();
        q.push_retry(tx(7, 70));
        q.push_retry(tx(5, 50));
        let (retry, pending) = q.checkpoint_state();
        assert_eq!(retry.len(), 2);
        assert_eq!(pending.len(), 2);

        let mut restored = BusQueue::new();
        restored.restore_state(retry, pending).unwrap();
        restored.assert_lane_invariants();
        let mut arb = RoundRobin::new();
        let mut arb2 = RoundRobin::new();
        loop {
            let (a, b) = (q.grant(&mut arb), restored.grant(&mut arb2));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }

        // A duplicated pending PE is a structured error.
        let mut bad = BusQueue::new();
        assert!(bad.restore_state(vec![], vec![tx(2, 1), tx(2, 2)]).is_err());
    }

    #[test]
    fn has_pending_sees_retry_lane() {
        let mut q = BusQueue::new();
        q.push_retry(BusTransaction::new(
            PeId::new(5),
            Addr::new(0),
            BusOp::Write(Word::ONE),
        ));
        assert!(q.has_pending(PeId::new(5)));
        assert!(!q.has_pending(PeId::new(4)));
    }
}
