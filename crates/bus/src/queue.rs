//! The pending-request queue in front of the arbiter.

use crate::{Arbiter, BusTransaction, RequesterSet, ServiceDiscipline};
use decache_mem::PeId;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// An error produced by bus queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// The processing element already has an outstanding request; the
    /// machine model allows at most one per PE (a PE stalls on its cache
    /// until the bus transaction completes).
    AlreadyPending {
        /// The PE with the duplicate request.
        pe: PeId,
    },
    /// A restored queue state's lanes disagree with each other (e.g. the
    /// FCFS arrival order names a different PE set than the pending
    /// lane). The queue is left cleared.
    InconsistentRestore {
        /// Which consistency rule was violated.
        what: &'static str,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BusError::AlreadyPending { pe } => {
                write!(f, "{pe} already has an outstanding bus request")
            }
            BusError::InconsistentRestore { what } => {
                write!(f, "inconsistent queue state: {what}")
            }
        }
    }
}

impl Error for BusError {}

/// The complete behaviour-relevant state of a [`BusQueue`], as exported
/// by [`BusQueue::checkpoint_state`] and reinstated by
/// [`BusQueue::restore_state`]. Lanes the active discipline does not
/// use are empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueState {
    /// The priority retry lane, in FIFO order.
    pub retry: Vec<BusTransaction>,
    /// The pending lane, in ascending PE order.
    pub pending: Vec<BusTransaction>,
    /// FCFS arrival order over the pending lane's PEs
    /// ([`ServiceDiscipline::Fcfs`] only).
    pub arrival: Vec<PeId>,
    /// The unserved remainder of the current batch, in service order
    /// ([`ServiceDiscipline::Batched`] only).
    pub batch: Vec<PeId>,
    /// Split-transaction address phases awaiting their data phase, as
    /// `(transaction, ready_cycle)` in ascending ready order
    /// ([`ServiceDiscipline::Split`] only).
    pub in_flight: Vec<(BusTransaction, u64)>,
}

/// The request queue in front of the bus arbiter.
///
/// Two lanes, matching the paper's semantics:
///
/// * a **retry lane** for transactions that were interrupted (killed) by a
///   snooping cache — "the interrupted bus read will be retried on the next
///   cycle" (Section 3) — served FIFO *before* any arbitration, and
/// * a **pending lane** holding at most one request per PE, from which the
///   [`Arbiter`] picks when the retry lane is empty.
///
/// The pending lane is a [`RequesterSet`] bitset plus a PE-indexed slot
/// vector, so every operation — request, grant, cancel — is constant-time
/// in the number of waiting PEs and the granting cycle allocates nothing.
/// Arbiters observe requesters in ascending id order exactly as before.
///
/// A queue built with a non-default [`ServiceDiscipline`] layers extra
/// bookkeeping on the pending lane: an arrival-order queue (FCFS), the
/// current batch (batched/gated service), or the in-flight set of
/// split-transaction address phases awaiting their data phase. A
/// [`ServiceDiscipline::PerCycle`] queue maintains none of them and
/// behaves bit-identically to the historical implementation.
///
/// # Examples
///
/// ```
/// use decache_bus::{BusOp, BusQueue, BusTransaction, FixedPriority};
/// use decache_mem::{Addr, PeId};
///
/// let mut q = BusQueue::new();
/// let tx = BusTransaction::new(PeId::new(4), Addr::new(0), BusOp::Read);
/// q.request(tx)?;
/// q.push_retry(BusTransaction::new(PeId::new(9), Addr::new(1), BusOp::Read));
/// // The retried transaction is served first regardless of arbitration.
/// let mut arb = FixedPriority::new();
/// assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(9));
/// assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(4));
/// # Ok::<(), decache_bus::BusError>(())
/// ```
#[derive(Debug, Default)]
pub struct BusQueue {
    discipline: ServiceDiscipline,
    retry: VecDeque<BusTransaction>,
    requesters: RequesterSet,
    slots: Vec<Option<BusTransaction>>,
    /// FCFS: pending-lane PEs in request-arrival order.
    arrival: VecDeque<PeId>,
    /// Batched: the unserved remainder of the current batch.
    batch: VecDeque<PeId>,
    /// Split: address-phase-complete transactions awaiting their data
    /// phase, with the cycle each becomes ready. Ready cycles are
    /// strictly increasing (at most one address grant per cycle).
    in_flight: VecDeque<(BusTransaction, u64)>,
}

impl BusQueue {
    /// Creates an empty queue with the default
    /// [`ServiceDiscipline::PerCycle`] discipline.
    pub fn new() -> Self {
        BusQueue::default()
    }

    /// Creates an empty queue running the given service discipline.
    pub fn with_discipline(discipline: ServiceDiscipline) -> Self {
        BusQueue {
            discipline,
            ..BusQueue::default()
        }
    }

    /// The service discipline this queue runs.
    pub fn discipline(&self) -> ServiceDiscipline {
        self.discipline
    }

    /// Enqueues a fresh request from a PE.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::AlreadyPending`] if the PE already has a request
    /// in the pending lane.
    pub fn request(&mut self, tx: BusTransaction) -> Result<(), BusError> {
        if !self.requesters.insert(tx.initiator) {
            return Err(BusError::AlreadyPending { pe: tx.initiator });
        }
        let slot = tx.initiator.index();
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        self.slots[slot] = Some(tx);
        if self.discipline == ServiceDiscipline::Fcfs {
            self.arrival.push_back(tx.initiator);
        }
        Ok(())
    }

    /// Enqueues an interrupted transaction for priority retry on the next
    /// cycle.
    pub fn push_retry(&mut self, tx: BusTransaction) {
        self.retry.push_back(tx);
    }

    /// Removes the PE's pending-lane entry and returns its transaction.
    fn take_pending(&mut self, pe: PeId) -> BusTransaction {
        assert!(
            self.requesters.remove(pe),
            "grant winner must be a requester"
        );
        self.slots[pe.index()]
            .take()
            .expect("requester set names only occupied slots")
    }

    /// Removes and returns the transaction to run this cycle: the oldest
    /// retry if any, otherwise the pending request the discipline selects
    /// — the arbiter's pick (per-cycle and split), the oldest arrival
    /// (FCFS), or the next batch member (batched, capturing a fresh batch
    /// from the waiting set when the previous one is exhausted). Returns
    /// `None` when nothing is grantable (an idle bus cycle).
    pub fn grant(&mut self, arbiter: &mut dyn Arbiter) -> Option<BusTransaction> {
        if let Some(tx) = self.retry.pop_front() {
            return Some(tx);
        }
        if self.requesters.is_empty() {
            return None;
        }
        let winner = match self.discipline {
            ServiceDiscipline::PerCycle | ServiceDiscipline::Split => {
                arbiter.pick(&self.requesters)
            }
            ServiceDiscipline::Fcfs => self
                .arrival
                .pop_front()
                .expect("FCFS arrival order tracks the requester set"),
            ServiceDiscipline::Batched => {
                if self.batch.is_empty() {
                    self.batch.extend(self.requesters.iter());
                }
                self.batch
                    .pop_front()
                    .expect("batch captured from a non-empty requester set")
            }
        };
        Some(self.take_pending(winner))
    }

    /// Returns `true` if a [`BusQueue::grant`] call would serve
    /// something this cycle — i.e. either lane the arbiter draws from is
    /// non-empty. Excludes split-transaction in-flight entries, whose
    /// data phases are claimed via [`BusQueue::take_ready`] instead.
    pub fn has_grantable(&self) -> bool {
        !self.retry.is_empty() || !self.requesters.is_empty()
    }

    /// Posts a granted transaction's address phase: the transaction
    /// leaves the bus and re-appears as a ready data phase at
    /// `ready_cycle` (split-transaction mode).
    ///
    /// # Panics
    ///
    /// Panics if `ready_cycle` does not exceed the previously posted
    /// ready cycle — address phases are granted at most once per cycle,
    /// so ready cycles are strictly increasing.
    pub fn begin_in_flight(&mut self, tx: BusTransaction, ready_cycle: u64) {
        if let Some(&(_, last)) = self.in_flight.back() {
            assert!(
                ready_cycle > last,
                "ready cycle {ready_cycle} does not advance past {last}"
            );
        }
        self.in_flight.push_back((tx, ready_cycle));
    }

    /// Claims the data phase that is due at `cycle`, if any: the oldest
    /// in-flight transaction whose ready cycle has arrived.
    pub fn take_ready(&mut self, cycle: u64) -> Option<BusTransaction> {
        match self.in_flight.front() {
            Some(&(_, ready)) if ready <= cycle => {
                Some(self.in_flight.pop_front().expect("front exists").0)
            }
            _ => None,
        }
    }

    /// The cycle the next in-flight data phase becomes ready, if any.
    pub fn next_ready(&self) -> Option<u64> {
        self.in_flight.front().map(|&(_, ready)| ready)
    }

    /// Returns `true` if the PE has a request waiting in any lane,
    /// including a split-transaction in-flight phase.
    pub fn has_pending(&self, pe: PeId) -> bool {
        self.requesters.contains(pe)
            || self.retry.iter().any(|tx| tx.initiator == pe)
            || self.in_flight.iter().any(|(tx, _)| tx.initiator == pe)
    }

    /// Removes any request the PE has in any lane; used when a pending
    /// miss is satisfied early by snooping a broadcast, and when a PE
    /// fail-stops. Returns `true` if a split-transaction in-flight phase
    /// was purged — its address phase was already granted, so the caller
    /// must account for the transaction that will now never execute.
    pub fn cancel(&mut self, pe: PeId) -> bool {
        if self.requesters.remove(pe) {
            self.slots[pe.index()] = None;
            self.arrival.retain(|&p| p != pe);
            self.batch.retain(|&p| p != pe);
        }
        self.retry.retain(|tx| tx.initiator != pe);
        let before = self.in_flight.len();
        self.in_flight.retain(|(tx, _)| tx.initiator != pe);
        self.in_flight.len() != before
    }

    /// Returns the total number of queued transactions across all lanes
    /// (retry, pending, and split-transaction in-flight).
    pub fn len(&self) -> usize {
        self.retry.len() + self.requesters.len() + self.in_flight.len()
    }

    /// Returns `true` if no transactions are queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.retry.is_empty() && self.requesters.is_empty() && self.in_flight.is_empty()
    }

    /// The set of PEs waiting in the pending lane (excludes the retry
    /// lane), in the form handed to the arbiter.
    pub fn requesters(&self) -> &RequesterSet {
        &self.requesters
    }

    /// Exports the queue's complete behaviour-relevant state for a
    /// checkpoint. Together with the arbiter's own state this fully
    /// determines future grant order.
    pub fn checkpoint_state(&self) -> QueueState {
        QueueState {
            retry: self.retry.iter().copied().collect(),
            pending: self
                .requesters
                .iter()
                .map(|pe| self.slots[pe.index()].expect("requester set names only occupied slots"))
                .collect(),
            arrival: self.arrival.iter().copied().collect(),
            batch: self.batch.iter().copied().collect(),
            in_flight: self.in_flight.iter().copied().collect(),
        }
    }

    /// Replaces the queue's state from a checkpoint produced by
    /// [`BusQueue::checkpoint_state`]. The queue's own discipline is
    /// kept; lanes the discipline does not use must be empty in `state`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::AlreadyPending`] if `pending` names the same
    /// PE twice, and [`BusError::InconsistentRestore`] if the lanes
    /// disagree (the FCFS arrival order is not a permutation of the
    /// pending PEs, a batch member is not pending, an in-flight PE is
    /// also pending, or a lane is populated under a discipline that
    /// never fills it). The queue is left cleared on error.
    pub fn restore_state(&mut self, state: QueueState) -> Result<(), BusError> {
        self.retry.clear();
        self.requesters = RequesterSet::new();
        self.slots.clear();
        self.arrival.clear();
        self.batch.clear();
        self.in_flight.clear();
        // Lanes a discipline never fills must be empty in the
        // checkpoint; a populated foreign lane is corrupt.
        if self.discipline != ServiceDiscipline::Fcfs && !state.arrival.is_empty() {
            return Err(BusError::InconsistentRestore {
                what: "arrival order present under a non-FCFS discipline",
            });
        }
        if self.discipline != ServiceDiscipline::Batched && !state.batch.is_empty() {
            return Err(BusError::InconsistentRestore {
                what: "batch present under a non-batched discipline",
            });
        }
        if self.discipline != ServiceDiscipline::Split && !state.in_flight.is_empty() {
            return Err(BusError::InconsistentRestore {
                what: "in-flight phases present under a non-split discipline",
            });
        }
        for tx in state.pending {
            self.request(tx)?;
        }
        match self.discipline {
            ServiceDiscipline::Fcfs => {
                let mut named = RequesterSet::new();
                for &pe in &state.arrival {
                    if !self.requesters.contains(pe) || !named.insert(pe) {
                        self.clear_on_error();
                        return Err(BusError::InconsistentRestore {
                            what: "FCFS arrival order is not a permutation of the pending PEs",
                        });
                    }
                }
                if named.len() != self.requesters.len() {
                    self.clear_on_error();
                    return Err(BusError::InconsistentRestore {
                        what: "FCFS arrival order omits a pending PE",
                    });
                }
                self.arrival = state.arrival.into_iter().collect();
            }
            ServiceDiscipline::Batched => {
                let mut named = RequesterSet::new();
                for &pe in &state.batch {
                    if !self.requesters.contains(pe) || !named.insert(pe) {
                        self.clear_on_error();
                        return Err(BusError::InconsistentRestore {
                            what: "batch names a PE that is not pending",
                        });
                    }
                }
                self.batch = state.batch.into_iter().collect();
            }
            ServiceDiscipline::Split => {
                let mut last_ready = None;
                for &(tx, ready) in &state.in_flight {
                    if self.requesters.contains(tx.initiator) {
                        self.clear_on_error();
                        return Err(BusError::InconsistentRestore {
                            what: "in-flight PE also has a pending request",
                        });
                    }
                    if last_ready.is_some_and(|last| ready <= last) {
                        self.clear_on_error();
                        return Err(BusError::InconsistentRestore {
                            what: "in-flight ready cycles are not strictly increasing",
                        });
                    }
                    last_ready = Some(ready);
                }
                self.in_flight = state.in_flight.into_iter().collect();
            }
            ServiceDiscipline::PerCycle => {}
        }
        self.retry.extend(state.retry);
        Ok(())
    }

    fn clear_on_error(&mut self) {
        self.retry.clear();
        self.requesters = RequesterSet::new();
        self.slots.clear();
        self.arrival.clear();
        self.batch.clear();
        self.in_flight.clear();
    }

    /// Checks the lanes' internal bookkeeping: the requester bitset must
    /// name exactly the occupied slots, the FCFS arrival order must be a
    /// permutation of the requesters, batch members must be requesters,
    /// and in-flight PEs must be distinct and disjoint from the pending
    /// lane with strictly increasing ready cycles. Used by the machine's
    /// fast-path invariant suite.
    ///
    /// # Panics
    ///
    /// Panics if any lane's bookkeeping disagrees.
    pub fn assert_lane_invariants(&self) {
        let occupied: Vec<PeId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(i, _)| PeId::new(i as u16))
            .collect();
        let named: Vec<PeId> = self.requesters.iter().collect();
        assert_eq!(
            named, occupied,
            "requester bitset disagrees with occupied slots"
        );
        assert_eq!(self.requesters.len(), occupied.len());
        if self.discipline == ServiceDiscipline::Fcfs {
            let mut ordered: Vec<PeId> = self.arrival.iter().copied().collect();
            ordered.sort_unstable();
            assert_eq!(
                ordered, named,
                "FCFS arrival order disagrees with the requester set"
            );
        } else {
            assert!(self.arrival.is_empty(), "stray arrival order");
        }
        if self.discipline == ServiceDiscipline::Batched {
            for &pe in &self.batch {
                assert!(
                    self.requesters.contains(pe),
                    "batch member {pe} is not a requester"
                );
            }
        } else {
            assert!(self.batch.is_empty(), "stray batch");
        }
        if self.discipline == ServiceDiscipline::Split {
            let mut last = None;
            for &(tx, ready) in &self.in_flight {
                assert!(
                    !self.requesters.contains(tx.initiator),
                    "in-flight {} also pending",
                    tx.initiator
                );
                assert!(
                    last.is_none_or(|l| ready > l),
                    "in-flight ready cycles not strictly increasing"
                );
                last = Some(ready);
            }
        } else {
            assert!(self.in_flight.is_empty(), "stray in-flight phases");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusOp, RoundRobin};
    use decache_mem::{Addr, Word};

    fn tx(pe: u16, addr: u64) -> BusTransaction {
        BusTransaction::new(PeId::new(pe), Addr::new(addr), BusOp::Read)
    }

    #[test]
    fn empty_queue_grants_nothing() {
        let mut q = BusQueue::new();
        let mut arb = RoundRobin::new();
        assert!(q.grant(&mut arb).is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn one_outstanding_request_per_pe() {
        let mut q = BusQueue::new();
        q.request(tx(0, 1)).unwrap();
        let err = q.request(tx(0, 2)).unwrap_err();
        assert_eq!(err, BusError::AlreadyPending { pe: PeId::new(0) });
        assert_eq!(err.to_string(), "P0 already has an outstanding bus request");
    }

    #[test]
    fn retries_preempt_arbitration() {
        let mut q = BusQueue::new();
        q.request(tx(0, 1)).unwrap();
        q.push_retry(tx(7, 9));
        q.push_retry(tx(8, 10));
        let mut arb = RoundRobin::new();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(7));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(8));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_clears_both_lanes() {
        let mut q = BusQueue::new();
        q.request(tx(1, 1)).unwrap();
        q.push_retry(tx(1, 2));
        assert!(q.has_pending(PeId::new(1)));
        assert!(!q.cancel(PeId::new(1)));
        assert!(!q.has_pending(PeId::new(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn grant_respects_round_robin_order() {
        let mut q = BusQueue::new();
        let mut arb = RoundRobin::new();
        for pe in [2u16, 0, 1] {
            q.request(tx(pe, u64::from(pe))).unwrap();
        }
        // Requesters are presented sorted, so round robin goes 0, 1, 2.
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(1));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
    }

    #[test]
    fn fcfs_grants_in_arrival_order() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Fcfs);
        let mut arb = RoundRobin::new();
        for pe in [2u16, 0, 1] {
            q.request(tx(pe, u64::from(pe))).unwrap();
        }
        q.assert_lane_invariants();
        // Arrival order wins over both slot order and round robin.
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        // A re-request joins the back of the line.
        q.request(tx(2, 9)).unwrap();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(1));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
        assert!(q.is_empty());
    }

    #[test]
    fn fcfs_cancel_leaves_order_intact() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Fcfs);
        let mut arb = RoundRobin::new();
        for pe in [3u16, 1, 2] {
            q.request(tx(pe, 0)).unwrap();
        }
        q.cancel(PeId::new(1));
        q.assert_lane_invariants();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(3));
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
    }

    #[test]
    fn batched_serves_the_captured_batch_to_exhaustion() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Batched);
        let mut arb = RoundRobin::new();
        q.request(tx(1, 0)).unwrap();
        q.request(tx(3, 0)).unwrap();
        // First grant captures {1, 3}; a mid-batch arrival must wait.
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(1));
        q.request(tx(0, 0)).unwrap();
        q.assert_lane_invariants();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(3));
        // Batch exhausted; the next grant captures the waiting set.
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        assert!(q.is_empty());
    }

    #[test]
    fn batched_cancel_skips_the_member() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Batched);
        let mut arb = RoundRobin::new();
        for pe in [0u16, 1, 2] {
            q.request(tx(pe, 0)).unwrap();
        }
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        q.cancel(PeId::new(1));
        q.assert_lane_invariants();
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(2));
        assert!(q.is_empty());
    }

    #[test]
    fn split_in_flight_lifecycle() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Split);
        let mut arb = RoundRobin::new();
        q.request(tx(4, 8)).unwrap();
        let granted = q.grant(&mut arb).unwrap();
        q.begin_in_flight(granted, 13);
        q.assert_lane_invariants();
        // In flight counts as queued but not grantable.
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        assert!(!q.has_grantable());
        assert!(q.has_pending(PeId::new(4)));
        assert_eq!(q.next_ready(), Some(13));
        assert!(q.take_ready(12).is_none());
        let done = q.take_ready(13).unwrap();
        assert_eq!(done.initiator, PeId::new(4));
        assert!(q.is_empty());
    }

    #[test]
    fn split_cancel_purges_in_flight() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Split);
        q.begin_in_flight(tx(5, 1), 10);
        q.begin_in_flight(tx(6, 2), 11);
        assert!(q.cancel(PeId::new(5)));
        q.assert_lane_invariants();
        assert_eq!(q.next_ready(), Some(11));
        assert!(!q.has_pending(PeId::new(5)));
        assert!(q.has_pending(PeId::new(6)));
    }

    #[test]
    #[should_panic(expected = "does not advance")]
    fn split_ready_cycles_must_increase() {
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Split);
        q.begin_in_flight(tx(0, 0), 7);
        q.begin_in_flight(tx(1, 0), 7);
    }

    #[test]
    fn checkpoint_round_trip_preserves_both_lanes_and_order() {
        let mut q = BusQueue::new();
        q.request(tx(3, 30)).unwrap();
        q.request(tx(1, 10)).unwrap();
        q.push_retry(tx(7, 70));
        q.push_retry(tx(5, 50));
        let state = q.checkpoint_state();
        assert_eq!(state.retry.len(), 2);
        assert_eq!(state.pending.len(), 2);
        assert!(state.arrival.is_empty());

        let mut restored = BusQueue::new();
        restored.restore_state(state).unwrap();
        restored.assert_lane_invariants();
        let mut arb = RoundRobin::new();
        let mut arb2 = RoundRobin::new();
        loop {
            let (a, b) = (q.grant(&mut arb), restored.grant(&mut arb2));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }

        // A duplicated pending PE is a structured error.
        let mut bad = BusQueue::new();
        assert!(bad
            .restore_state(QueueState {
                pending: vec![tx(2, 1), tx(2, 2)],
                ..QueueState::default()
            })
            .is_err());
    }

    #[test]
    fn checkpoint_round_trip_preserves_discipline_lanes() {
        // FCFS: arrival order survives.
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Fcfs);
        for pe in [4u16, 0, 2] {
            q.request(tx(pe, 0)).unwrap();
        }
        let mut restored = BusQueue::with_discipline(ServiceDiscipline::Fcfs);
        restored.restore_state(q.checkpoint_state()).unwrap();
        restored.assert_lane_invariants();
        let mut arb = RoundRobin::new();
        for expect in [4u16, 0, 2] {
            assert_eq!(
                restored.grant(&mut arb).unwrap().initiator,
                PeId::new(expect)
            );
        }

        // Batched: the in-progress batch survives.
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Batched);
        let mut arb = RoundRobin::new();
        for pe in [0u16, 1] {
            q.request(tx(pe, 0)).unwrap();
        }
        assert_eq!(q.grant(&mut arb).unwrap().initiator, PeId::new(0));
        q.request(tx(2, 0)).unwrap(); // waits for the next batch
        let mut restored = BusQueue::with_discipline(ServiceDiscipline::Batched);
        restored.restore_state(q.checkpoint_state()).unwrap();
        restored.assert_lane_invariants();
        assert_eq!(restored.grant(&mut arb).unwrap().initiator, PeId::new(1));
        assert_eq!(restored.grant(&mut arb).unwrap().initiator, PeId::new(2));

        // Split: in-flight phases survive with their ready cycles.
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Split);
        q.begin_in_flight(tx(3, 9), 21);
        let mut restored = BusQueue::with_discipline(ServiceDiscipline::Split);
        restored.restore_state(q.checkpoint_state()).unwrap();
        restored.assert_lane_invariants();
        assert_eq!(restored.next_ready(), Some(21));
        assert_eq!(restored.take_ready(21).unwrap().initiator, PeId::new(3));
    }

    #[test]
    fn restore_rejects_inconsistent_lanes() {
        // Arrival order must match the pending set exactly.
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Fcfs);
        let err = q
            .restore_state(QueueState {
                pending: vec![tx(1, 0)],
                arrival: vec![PeId::new(2)],
                ..QueueState::default()
            })
            .unwrap_err();
        assert!(matches!(err, BusError::InconsistentRestore { .. }));
        assert!(q.is_empty(), "queue cleared after failed restore");
        let err = q
            .restore_state(QueueState {
                pending: vec![tx(1, 0), tx(2, 0)],
                arrival: vec![PeId::new(1)],
                ..QueueState::default()
            })
            .unwrap_err();
        assert!(err.to_string().contains("omits"));

        // Discipline-foreign lanes are rejected.
        let mut q = BusQueue::new();
        assert!(q
            .restore_state(QueueState {
                arrival: vec![PeId::new(0)],
                ..QueueState::default()
            })
            .is_err());
        assert!(q
            .restore_state(QueueState {
                batch: vec![PeId::new(0)],
                ..QueueState::default()
            })
            .is_err());
        assert!(q
            .restore_state(QueueState {
                in_flight: vec![(tx(0, 0), 5)],
                ..QueueState::default()
            })
            .is_err());

        // An in-flight PE cannot also be pending, and ready cycles
        // must increase.
        let mut q = BusQueue::with_discipline(ServiceDiscipline::Split);
        assert!(q
            .restore_state(QueueState {
                pending: vec![tx(1, 0)],
                in_flight: vec![(tx(1, 0), 5)],
                ..QueueState::default()
            })
            .is_err());
        assert!(q
            .restore_state(QueueState {
                in_flight: vec![(tx(1, 0), 5), (tx(2, 0), 5)],
                ..QueueState::default()
            })
            .is_err());
    }

    #[test]
    fn has_pending_sees_retry_lane() {
        let mut q = BusQueue::new();
        q.push_retry(BusTransaction::new(
            PeId::new(5),
            Addr::new(0),
            BusOp::Write(Word::ONE),
        ));
        assert!(q.has_pending(PeId::new(5)));
        assert!(!q.has_pending(PeId::new(4)));
    }
}
