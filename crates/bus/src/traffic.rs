//! Per-operation bus traffic accounting.

use crate::BusOpKind;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Bus traffic counters, the raw material of every bandwidth claim in the
/// paper: hot-spot elimination (Section 6) and the SBB analysis (Section 7)
/// are both statements about how many bus cycles each scheme consumes.
///
/// # Examples
///
/// ```
/// use decache_bus::{BusOpKind, TrafficStats};
///
/// let mut t = TrafficStats::default();
/// t.record(BusOpKind::Read);
/// t.record(BusOpKind::Write);
/// t.record_idle();
/// assert_eq!(t.total_transactions(), 2);
/// assert!((t.utilization() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    counts: [u64; 5],
    /// Bus reads killed by an `L`-state snooper and replaced by its write.
    pub aborted_reads: u64,
    /// Transactions re-run from the retry lane.
    pub retries: u64,
    /// Cycles in which a transaction occupied the bus.
    pub busy_cycles: u64,
    /// Cycles in which the bus was idle.
    pub idle_cycles: u64,
    /// Split-transaction address phases granted (each also counts a busy
    /// cycle); zero under non-split disciplines.
    pub address_phases: u64,
}

impl TrafficStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one completed transaction of the given kind (also counts a
    /// busy cycle).
    pub fn record(&mut self, kind: BusOpKind) {
        self.counts[Self::slot(kind)] += 1;
        self.busy_cycles += 1;
    }

    /// Records a bus read that was interrupted and replaced; the replacing
    /// write is recorded separately via [`TrafficStats::record`].
    pub fn record_abort(&mut self) {
        self.aborted_reads += 1;
    }

    /// Records that a transaction was served from the retry lane.
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Records an idle bus cycle.
    pub fn record_idle(&mut self) {
        self.idle_cycles += 1;
    }

    /// Records `n` idle bus cycles at once; the cycle engine uses this to
    /// account for dead cycles it jumps over without simulating them.
    pub fn record_idle_n(&mut self, n: u64) {
        self.idle_cycles += n;
    }

    /// Records a cycle in which the bus was still occupied by an earlier
    /// multi-cycle transaction (no new transaction is counted).
    pub fn record_occupied(&mut self) {
        self.busy_cycles += 1;
    }

    /// Records `n` occupied cycles at once (batch form of
    /// [`TrafficStats::record_occupied`]).
    pub fn record_occupied_n(&mut self, n: u64) {
        self.busy_cycles += n;
    }

    /// Records a split-transaction address phase: one busy cycle in
    /// which a request was posted but no transaction completed (the
    /// transaction itself is counted by [`TrafficStats::record`] when
    /// its data phase runs).
    pub fn record_address_phase(&mut self) {
        self.address_phases += 1;
        self.busy_cycles += 1;
    }

    fn slot(kind: BusOpKind) -> usize {
        match kind {
            BusOpKind::Read => 0,
            BusOpKind::Write => 1,
            BusOpKind::Invalidate => 2,
            BusOpKind::ReadWithLock => 3,
            BusOpKind::WriteWithUnlock => 4,
        }
    }

    /// Returns the count of transactions of `kind`.
    pub fn count(&self, kind: BusOpKind) -> u64 {
        self.counts[Self::slot(kind)]
    }

    /// Returns the total number of transactions across all kinds.
    pub fn total_transactions(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns all data-fetching transactions (reads plus locked reads).
    pub fn total_reads(&self) -> u64 {
        self.count(BusOpKind::Read) + self.count(BusOpKind::ReadWithLock)
    }

    /// Returns all memory-updating transactions (writes plus unlocking
    /// writes).
    pub fn total_writes(&self) -> u64 {
        self.count(BusOpKind::Write) + self.count(BusOpKind::WriteWithUnlock)
    }

    /// Exports the per-kind transaction counts in [`BusOpKind::ALL`]
    /// order — the checkpoint form (the four public counters are
    /// directly accessible).
    pub fn checkpoint_counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Reconstructs counters from a [`TrafficStats::checkpoint_counts`]
    /// export plus the five public counters.
    pub fn from_checkpoint(
        counts: [u64; 5],
        aborted_reads: u64,
        retries: u64,
        busy_cycles: u64,
        idle_cycles: u64,
        address_phases: u64,
    ) -> Self {
        TrafficStats {
            counts,
            aborted_reads,
            retries,
            busy_cycles,
            idle_cycles,
            address_phases,
        }
    }

    /// The fraction of cycles the bus was busy, in `[0, 1]`; zero if no
    /// cycles elapsed.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

impl Add for TrafficStats {
    type Output = TrafficStats;
    fn add(mut self, rhs: TrafficStats) -> TrafficStats {
        self += rhs;
        self
    }
}

impl AddAssign for TrafficStats {
    fn add_assign(&mut self, rhs: TrafficStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += rhs.counts[i];
        }
        self.aborted_reads += rhs.aborted_reads;
        self.retries += rhs.retries;
        self.busy_cycles += rhs.busy_cycles;
        self.idle_cycles += rhs.idle_cycles;
        self.address_phases += rhs.address_phases;
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BR={} BW={} BI={} BRL={} BWU={} aborts={} retries={} util={:.1}%",
            self.count(BusOpKind::Read),
            self.count(BusOpKind::Write),
            self.count(BusOpKind::Invalidate),
            self.count(BusOpKind::ReadWithLock),
            self.count(BusOpKind::WriteWithUnlock),
            self.aborted_reads,
            self.retries,
            self.utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut t = TrafficStats::new();
        t.record(BusOpKind::Read);
        t.record(BusOpKind::Read);
        t.record(BusOpKind::Write);
        t.record(BusOpKind::Invalidate);
        t.record(BusOpKind::ReadWithLock);
        t.record(BusOpKind::WriteWithUnlock);
        assert_eq!(t.count(BusOpKind::Read), 2);
        assert_eq!(t.count(BusOpKind::Write), 1);
        assert_eq!(t.total_transactions(), 6);
        assert_eq!(t.total_reads(), 3);
        assert_eq!(t.total_writes(), 2);
        assert_eq!(t.busy_cycles, 6);
    }

    #[test]
    fn utilization_handles_zero_cycles() {
        assert_eq!(TrafficStats::new().utilization(), 0.0);
    }

    #[test]
    fn occupied_cycles_are_busy_without_transactions() {
        let mut t = TrafficStats::new();
        t.record(BusOpKind::Read);
        t.record_occupied();
        t.record_occupied();
        assert_eq!(t.total_transactions(), 1);
        assert_eq!(t.busy_cycles, 3);
    }

    #[test]
    fn utilization_counts_idle() {
        let mut t = TrafficStats::new();
        t.record(BusOpKind::Read);
        t.record_idle();
        t.record_idle();
        t.record_idle();
        assert!((t.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = TrafficStats::new();
        a.record(BusOpKind::Read);
        a.record_abort();
        let mut b = TrafficStats::new();
        b.record(BusOpKind::Write);
        b.record_retry();
        b.record_idle();
        let c = a + b;
        assert_eq!(c.count(BusOpKind::Read), 1);
        assert_eq!(c.count(BusOpKind::Write), 1);
        assert_eq!(c.aborted_reads, 1);
        assert_eq!(c.retries, 1);
        assert_eq!(c.busy_cycles, 2);
        assert_eq!(c.idle_cycles, 1);
    }

    #[test]
    fn address_phases_are_busy_without_transactions() {
        let mut t = TrafficStats::new();
        t.record_address_phase();
        t.record_idle();
        t.record(BusOpKind::Read);
        assert_eq!(t.address_phases, 1);
        assert_eq!(t.total_transactions(), 1);
        assert_eq!(t.busy_cycles, 2);
        let sum = t + t;
        assert_eq!(sum.address_phases, 2);
    }

    #[test]
    fn display_is_nonempty_and_labelled() {
        let t = TrafficStats::new();
        let s = t.to_string();
        assert!(s.contains("BR=0"));
        assert!(s.contains("util="));
    }
}
