//! Bus service disciplines: *when* a queued request is served.
//!
//! The [`Arbiter`](crate::Arbiter) decides *which* of several
//! simultaneous requesters wins a single grant; the service discipline
//! decides how grants are scheduled over time. Nikolov & Lerato
//! ("Comparison of the Performance of Two Service Disciplines for a
//! Shared Bus Multiprocessor with Private Caches") compare exactly the
//! first two non-default disciplines below for this machine shape; the
//! split-transaction mode models the bus refinement that decouples the
//! address and data phases so independent memory accesses overlap.

use std::fmt;

/// How a [`BusQueue`](crate::BusQueue) schedules grants over time.
///
/// All disciplines share the priority retry lane (killed transactions
/// re-run before any arbitration, per the paper's Section 3) and the
/// one-outstanding-request-per-PE rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ServiceDiscipline {
    /// The historical default: every cycle the arbiter picks among the
    /// requesters present at that instant. Fairness comes entirely from
    /// the arbiter policy (round-robin, fixed-priority, random).
    #[default]
    PerCycle,
    /// Global first-come-first-served: grants follow request-arrival
    /// order across PEs, ignoring the arbiter policy. Nikolov &
    /// Lerato's first discipline.
    Fcfs,
    /// Batched (gated) service: the set of requesters present when the
    /// bus re-polls is captured as a batch and served to exhaustion (in
    /// ascending PE order) before the queue is re-polled; requests
    /// arriving mid-batch wait for the next batch. Nikolov & Lerato's
    /// second discipline.
    Batched,
    /// Split-transaction bus: a granted request occupies the bus for a
    /// one-cycle **address phase**, releases it while memory services
    /// the access for `transaction_cycles` cycles, then takes a
    /// one-cycle **data phase** (which has priority over new address
    /// grants) to complete. Independent transactions overlap in the
    /// memory, so each transaction costs two bus cycles regardless of
    /// memory latency. Arbitration among waiting requesters uses the
    /// configured arbiter, as in [`ServiceDiscipline::PerCycle`].
    Split,
}

impl ServiceDiscipline {
    /// All disciplines, in sweep order.
    pub const ALL: [ServiceDiscipline; 4] = [
        ServiceDiscipline::PerCycle,
        ServiceDiscipline::Fcfs,
        ServiceDiscipline::Batched,
        ServiceDiscipline::Split,
    ];

    /// The stable tag naming this discipline in checkpoints and
    /// experiment tables. Round-trips through
    /// [`ServiceDiscipline::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ServiceDiscipline::PerCycle => "per-cycle",
            ServiceDiscipline::Fcfs => "fcfs",
            ServiceDiscipline::Batched => "batched",
            ServiceDiscipline::Split => "split",
        }
    }

    /// Parses a [`ServiceDiscipline::name`] tag.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized text as the error.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|d| d.name() == text)
            .ok_or_else(|| format!("unknown service discipline '{text}'"))
    }
}

impl fmt::Display for ServiceDiscipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_per_cycle() {
        assert_eq!(ServiceDiscipline::default(), ServiceDiscipline::PerCycle);
    }

    #[test]
    fn names_round_trip() {
        for d in ServiceDiscipline::ALL {
            assert_eq!(ServiceDiscipline::parse(d.name()), Ok(d));
            assert_eq!(d.to_string(), d.name());
        }
        assert!(ServiceDiscipline::parse("gated").is_err());
    }
}
