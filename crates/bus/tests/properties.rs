//! Seeded randomized tests for arbitration and queueing.

use decache_bus::{
    Arbiter, ArbiterKind, BusOp, BusOpKind, BusQueue, BusTransaction, FixedPriority, RandomArbiter,
    RoundRobin, TrafficStats,
};
use decache_mem::{Addr, PeId, Word};
use decache_rng::{testing::check, Rng};

fn pes(ids: &[u16]) -> Vec<PeId> {
    let mut v: Vec<PeId> = ids.iter().map(|&i| PeId::new(i)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn gen_ids(rng: &mut Rng, lo: usize, hi: usize, max_id: u16) -> Vec<PeId> {
    let n = rng.gen_range(lo..hi);
    pes(&(0..n).map(|_| rng.gen_range(0..max_id)).collect::<Vec<_>>())
}

/// Every arbiter always grants one of the presented requesters.
#[test]
fn arbiters_grant_only_requesters() {
    check("arbiters_grant_only_requesters", 64, |rng| {
        let requesters = gen_ids(rng, 1, 16, 64);
        let seed = rng.next_u64();
        let rounds = rng.gen_range(1usize..32);
        let mut arbiters: Vec<Box<dyn Arbiter>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(FixedPriority::new()),
            Box::new(RandomArbiter::new(seed)),
        ];
        for arbiter in &mut arbiters {
            for _ in 0..rounds {
                let winner = arbiter.grant(&requesters);
                assert!(requesters.contains(&winner));
            }
        }
    });
}

/// Round-robin is fair: with a fixed request set, consecutive grants to
/// the same PE never happen (when more than one requester), and over
/// |requesters| rounds every PE is granted exactly once.
#[test]
fn round_robin_fairness() {
    check("round_robin_fairness", 64, |rng| {
        let requesters = gen_ids(rng, 2, 16, 64);
        if requesters.len() < 2 {
            return; // dedup collapsed the draw; nothing to test
        }
        let mut arbiter = RoundRobin::new();
        let mut last = None;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..requesters.len() * 3 {
            let winner = arbiter.grant(&requesters);
            assert_ne!(Some(winner), last, "consecutive grant to {winner}");
            last = Some(winner);
            *counts.entry(winner).or_insert(0u32) += 1;
        }
        for pe in &requesters {
            assert_eq!(counts.get(pe).copied().unwrap_or(0), 3, "{pe} starved");
        }
    });
}

/// The queue preserves every enqueued transaction exactly once: grants
/// drain the queue with no loss or duplication.
#[test]
fn queue_drains_exactly_once() {
    check("queue_drains_exactly_once", 64, |rng| {
        let requesters = gen_ids(rng, 1, 24, 32);
        let retries: Vec<u16> = (0..rng.gen_range(0usize..8))
            .map(|_| rng.gen_range(0u16..32))
            .collect();
        let mut queue = BusQueue::new();
        for &pe in &requesters {
            queue
                .request(BusTransaction::new(
                    pe,
                    Addr::new(pe.index() as u64),
                    BusOp::Read,
                ))
                .unwrap();
        }
        for (i, &r) in retries.iter().enumerate() {
            queue.push_retry(BusTransaction::new(
                PeId::new(1000 + r),
                Addr::new(i as u64),
                BusOp::Write(Word::ONE),
            ));
        }
        assert_eq!(queue.len(), requesters.len() + retries.len());

        let mut arbiter = RoundRobin::new();
        let mut drained = Vec::new();
        while let Some(tx) = queue.grant(&mut arbiter) {
            drained.push(tx);
        }
        assert_eq!(drained.len(), requesters.len() + retries.len());
        // Retries come first, in FIFO order.
        for (i, tx) in drained.iter().take(retries.len()).enumerate() {
            assert_eq!(tx.addr, Addr::new(i as u64));
        }
        // Each original requester appears exactly once afterwards.
        let mut granted: Vec<PeId> = drained
            .iter()
            .skip(retries.len())
            .map(|tx| tx.initiator)
            .collect();
        granted.sort_unstable();
        assert_eq!(granted, requesters);
        assert!(queue.is_empty());
    });
}

/// Traffic statistics addition is associative and commutative over
/// arbitrary recordings.
#[test]
fn traffic_addition_is_well_behaved() {
    check("traffic_addition_is_well_behaved", 64, |rng| {
        let mut record_random = |n: usize| {
            let mut t = TrafficStats::new();
            for _ in 0..n {
                t.record(*rng.choose(&BusOpKind::ALL));
            }
            t
        };
        let mut a = record_random(31);
        let b = record_random(17);
        for _ in 0..9 {
            a.record_idle();
        }
        assert_eq!(a + b, b + a);
        assert_eq!(
            (a + b).total_transactions(),
            a.total_transactions() + b.total_transactions()
        );
        let zero = TrafficStats::new();
        assert_eq!(a + zero, a);
    });
}

/// ArbiterKind::build round-trips behaviourally: fixed priority always
/// picks the minimum; random is deterministic per seed.
#[test]
fn arbiter_kind_builds_behave() {
    check("arbiter_kind_builds_behave", 64, |rng| {
        let requesters = gen_ids(rng, 1, 8, 64);
        let seed = rng.next_u64();
        let mut fixed = ArbiterKind::FixedPriority.build();
        assert_eq!(fixed.grant(&requesters), requesters[0]);

        let mut r1 = ArbiterKind::Random(seed).build();
        let mut r2 = ArbiterKind::Random(seed).build();
        for _ in 0..8 {
            assert_eq!(r1.grant(&requesters), r2.grant(&requesters));
        }
    });
}
