//! Property-based tests for arbitration and queueing.

use decache_bus::{
    Arbiter, ArbiterKind, BusOp, BusOpKind, BusQueue, BusTransaction, FixedPriority,
    RandomArbiter, RoundRobin, TrafficStats,
};
use decache_mem::{Addr, PeId, Word};
use proptest::prelude::*;

fn pes(ids: &[u16]) -> Vec<PeId> {
    let mut v: Vec<PeId> = ids.iter().map(|&i| PeId::new(i)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    /// Every arbiter always grants one of the presented requesters.
    #[test]
    fn arbiters_grant_only_requesters(
        ids in prop::collection::vec(0u16..64, 1..16),
        seed in any::<u64>(),
        rounds in 1usize..32,
    ) {
        let requesters = pes(&ids);
        let mut arbiters: Vec<Box<dyn Arbiter>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(FixedPriority::new()),
            Box::new(RandomArbiter::new(seed)),
        ];
        for arbiter in &mut arbiters {
            for _ in 0..rounds {
                let winner = arbiter.grant(&requesters);
                prop_assert!(requesters.contains(&winner));
            }
        }
    }

    /// Round-robin is fair: with a fixed request set, consecutive grants
    /// to the same PE never happen (when more than one requester), and
    /// over |requesters| rounds every PE is granted exactly once.
    #[test]
    fn round_robin_fairness(ids in prop::collection::vec(0u16..64, 2..16)) {
        let requesters = pes(&ids);
        prop_assume!(requesters.len() >= 2);
        let mut arbiter = RoundRobin::new();
        let mut last = None;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..requesters.len() * 3 {
            let winner = arbiter.grant(&requesters);
            prop_assert_ne!(Some(winner), last, "consecutive grant to {}", winner);
            last = Some(winner);
            *counts.entry(winner).or_insert(0u32) += 1;
        }
        for pe in &requesters {
            prop_assert_eq!(counts.get(pe).copied().unwrap_or(0), 3, "{} starved", pe);
        }
    }

    /// The queue preserves every enqueued transaction exactly once:
    /// grants drain the queue with no loss or duplication.
    #[test]
    fn queue_drains_exactly_once(
        ids in prop::collection::vec(0u16..32, 1..24),
        retries in prop::collection::vec(0u16..32, 0..8),
    ) {
        let requesters = pes(&ids);
        let mut queue = BusQueue::new();
        for &pe in &requesters {
            queue
                .request(BusTransaction::new(pe, Addr::new(pe.index() as u64), BusOp::Read))
                .unwrap();
        }
        for (i, &r) in retries.iter().enumerate() {
            queue.push_retry(BusTransaction::new(
                PeId::new(1000 + r),
                Addr::new(i as u64),
                BusOp::Write(Word::ONE),
            ));
        }
        prop_assert_eq!(queue.len(), requesters.len() + retries.len());

        let mut arbiter = RoundRobin::new();
        let mut drained = Vec::new();
        while let Some(tx) = queue.grant(&mut arbiter) {
            drained.push(tx);
        }
        prop_assert_eq!(drained.len(), requesters.len() + retries.len());
        // Retries come first, in FIFO order.
        for (i, tx) in drained.iter().take(retries.len()).enumerate() {
            prop_assert_eq!(tx.addr, Addr::new(i as u64));
        }
        // Each original requester appears exactly once afterwards.
        let mut granted: Vec<PeId> =
            drained.iter().skip(retries.len()).map(|tx| tx.initiator).collect();
        granted.sort_unstable();
        prop_assert_eq!(granted, requesters);
        prop_assert!(queue.is_empty());
    }

    /// Traffic statistics addition is associative and commutative over
    /// arbitrary recordings.
    #[test]
    fn traffic_addition_is_well_behaved(
        ops_a in prop::collection::vec(0u8..5, 0..32),
        ops_b in prop::collection::vec(0u8..5, 0..32),
        idles in 0u8..10,
    ) {
        let record_all = |ops: &[u8]| {
            let mut t = TrafficStats::new();
            for &op in ops {
                t.record(BusOpKind::ALL[op as usize]);
            }
            t
        };
        let mut a = record_all(&ops_a);
        for _ in 0..idles {
            a.record_idle();
        }
        let b = record_all(&ops_b);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(
            (a + b).total_transactions(),
            a.total_transactions() + b.total_transactions()
        );
        let zero = TrafficStats::new();
        prop_assert_eq!(a + zero, a);
    }

    /// ArbiterKind::build round-trips behaviourally: fixed priority
    /// always picks the minimum; random is deterministic per seed.
    #[test]
    fn arbiter_kind_builds_behave(ids in prop::collection::vec(0u16..64, 1..8), seed in any::<u64>()) {
        let requesters = pes(&ids);
        let mut fixed = ArbiterKind::FixedPriority.build();
        prop_assert_eq!(fixed.grant(&requesters), requesters[0]);

        let mut r1 = ArbiterKind::Random(seed).build();
        let mut r2 = ArbiterKind::Random(seed).build();
        for _ in 0..8 {
            prop_assert_eq!(r1.grant(&requesters), r2.grant(&requesters));
        }
    }
}
