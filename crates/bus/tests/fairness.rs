//! Seeded fairness properties of the service disciplines: randomized
//! request storms against a single [`BusQueue`], checking
//! starvation-freedom (bounded wait under continuous contention), work
//! conservation (the bus never idles while a request is queued), and
//! grant-order determinism across same-seed reruns.
//!
//! These are the per-PE properties the analytic queueing gate cannot
//! see: the disciplines share one queue-length process (hence one
//! utilization/mean-wait curve), but differ in *which* PE is served
//! when — exactly what a starvation bound exercises.

use decache_bus::{BusOp, BusQueue, BusTransaction, RoundRobin, ServiceDiscipline};
use decache_mem::{Addr, PeId};
use decache_rng::{testing::check, Rng};

/// Bus cycles per memory service in the storm harness.
const SERVICE: u64 = 3;

/// One grant observed by the storm: (cycle, who, cycles waited).
type Grant = (u64, PeId, u64);

/// Drives a request storm against one queue for `cycles` cycles:
/// every idle PE re-requests with probability `p` per cycle, the bus
/// serves per the discipline (including split address/data phases and
/// multi-cycle holds), and every grant's wait is recorded. Panics if
/// the bus ever idles with work queued (work conservation).
fn storm(
    discipline: ServiceDiscipline,
    rng: &mut Rng,
    pes: u16,
    p: f64,
    cycles: u64,
) -> Vec<Grant> {
    let mut queue = BusQueue::with_discipline(discipline);
    let mut arbiter = RoundRobin::new();
    let mut requested_at = vec![0u64; pes as usize];
    let mut grants = Vec::new();
    let mut held_until = 0u64;
    for cycle in 0..cycles {
        // Issue phase: a PE with nothing outstanding may re-request.
        for pe in 0..pes {
            let id = PeId::new(pe);
            if !queue.has_pending(id) && rng.gen_bool(p) {
                queue
                    .request(BusTransaction::new(
                        id,
                        Addr::new(u64::from(pe)),
                        BusOp::Read,
                    ))
                    .expect("not pending by has_pending");
                requested_at[pe as usize] = cycle;
            }
        }
        // Bus phase.
        if discipline == ServiceDiscipline::Split {
            if queue.take_ready(cycle).is_some() {
                continue; // data phase occupies the bus this cycle
            }
        } else if cycle < held_until {
            continue; // multi-cycle hold
        }
        let grantable = queue.has_grantable();
        match queue.grant(&mut arbiter) {
            None => assert!(
                !grantable,
                "{discipline}: bus idles at cycle {cycle} with work queued"
            ),
            Some(tx) => {
                assert!(grantable, "{discipline}: grant without grantable work");
                let pe = tx.initiator;
                grants.push((cycle, pe, cycle - requested_at[pe.index()]));
                if discipline == ServiceDiscipline::Split {
                    queue.begin_in_flight(tx, cycle + SERVICE);
                } else {
                    held_until = cycle + SERVICE;
                }
            }
        }
    }
    grants
}

/// Under continuous contention every discipline's wait stays bounded
/// by a small multiple of the population — no PE starves.
#[test]
fn starvation_freedom_bounds_the_wait() {
    check("starvation_freedom_bounds_the_wait", 32, |rng| {
        let pes = rng.gen_range(2u16..17);
        let p = 0.5 + 0.5 * rng.next_f64();
        for discipline in ServiceDiscipline::ALL {
            let mut fork = rng.split();
            let grants = storm(discipline, &mut fork, pes, p, 2_000);
            assert!(!grants.is_empty(), "{discipline}: storm granted nothing");
            // Worst case is batched: miss a capture by one cycle,
            // wait out the closed batch (up to pes services), then
            // drain at the tail of the next — two full passes.
            let bound = 2 * u64::from(pes) * SERVICE + SERVICE;
            let worst = grants.iter().map(|&(_, _, w)| w).max().expect("non-empty");
            assert!(
                worst <= bound,
                "{discipline}: {pes} PEs waited up to {worst} > bound {bound}"
            );
        }
    });
}

/// Every PE in a saturated storm gets a near-equal share of grants.
#[test]
fn sustained_contention_shares_the_bus() {
    check("sustained_contention_shares_the_bus", 32, |rng| {
        let pes = rng.gen_range(2u16..9);
        for discipline in ServiceDiscipline::ALL {
            let mut fork = rng.split();
            let grants = storm(discipline, &mut fork, pes, 1.0, 3_000);
            let mut counts = vec![0u64; pes as usize];
            for &(_, pe, _) in &grants {
                counts[pe.index()] += 1;
            }
            let min = counts.iter().min().expect("non-empty");
            let max = counts.iter().max().expect("non-empty");
            assert!(
                max - min <= 2,
                "{discipline}: grant shares {counts:?} diverge under saturation"
            );
        }
    });
}

/// The same seed replays the same grant order, cycle for cycle —
/// the determinism every fingerprint golden rests on.
#[test]
fn same_seed_reruns_grant_identically() {
    check("same_seed_reruns_grant_identically", 32, |rng| {
        let pes = rng.gen_range(2u16..17);
        let p = 0.2 + 0.6 * rng.next_f64();
        let seed = rng.next_u64();
        for discipline in ServiceDiscipline::ALL {
            let first = storm(discipline, &mut Rng::from_seed(seed), pes, p, 1_000);
            let second = storm(discipline, &mut Rng::from_seed(seed), pes, p, 1_000);
            assert_eq!(first, second, "{discipline}: same-seed rerun diverged");
        }
    });
}

/// FCFS specifically grants in arrival order: waits of successive
/// grants never reorder requests posted at different cycles.
#[test]
fn fcfs_serves_in_arrival_order() {
    check("fcfs_serves_in_arrival_order", 32, |rng| {
        let pes = rng.gen_range(2u16..17);
        let grants = storm(ServiceDiscipline::Fcfs, rng, pes, 0.8, 2_000);
        let mut last_arrival = 0u64;
        for &(cycle, pe, wait) in &grants {
            let arrival = cycle - wait;
            assert!(
                arrival >= last_arrival,
                "FCFS granted {pe} (posted cycle {arrival}) after a later request"
            );
            last_arrival = arrival;
        }
    });
}
