//! Timing harness: lock contention runs (experiment E8's hot loop), TS
//! vs TTS on RB and RWB.

use decache_bench::time_case;
use decache_core::ProtocolKind;
use decache_sync::{ContentionExperiment, Primitive};

fn main() {
    for protocol in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        for primitive in [Primitive::TestAndSet, Primitive::TestAndTestAndSet] {
            time_case(
                &format!("contention_8pe/{protocol}/{primitive}"),
                10,
                || {
                    ContentionExperiment::new(protocol, primitive, 8)
                        .rounds(3)
                        .run()
                },
            );
        }
    }
}
