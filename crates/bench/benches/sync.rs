//! Criterion benchmark: lock contention runs (experiment E8's hot loop),
//! TS vs TTS on RB and RWB.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decache_core::ProtocolKind;
use decache_sync::{ContentionExperiment, Primitive};
use std::hint::black_box;

fn contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_8pe");
    group.sample_size(10);
    for protocol in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        for primitive in [Primitive::TestAndSet, Primitive::TestAndTestAndSet] {
            let label = format!("{protocol}/{primitive}");
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(protocol, primitive),
                |b, &(protocol, primitive)| {
                    b.iter(|| {
                        black_box(
                            ContentionExperiment::new(protocol, primitive, 8).rounds(3).run(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, contention);
criterion_main!(benches);
