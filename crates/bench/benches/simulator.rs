//! Timing harness: machine simulation throughput per protocol on the
//! mixed workload (the engine behind experiments E13, E9, E10).

use decache_bench::time_case;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

fn run_machine(kind: ProtocolKind, pes: usize, ops: u64) -> u64 {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: ops,
        ..MixConfig::default()
    };
    // Memory must cover every PE's private region (the regions start
    // above the shared block; see MixWorkload::new).
    let memory_words = (1u64 << 14).max((1088 + pes as u64 * 256).next_power_of_two());
    let mut machine = MachineBuilder::new(kind)
        .memory_words(memory_words)
        .cache_lines(256)
        .processors(pes, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        })
        .build();
    machine.run_to_completion(100_000_000)
}

fn main() {
    for kind in ProtocolKind::ALL {
        time_case(&format!("mix_workload_8pe/{kind}"), 10, || {
            run_machine(kind, 8, 500)
        });
    }

    // The headline engine case: 16 PEs on the full mixed workload.
    for kind in ProtocolKind::ALL {
        time_case(&format!("mix_workload_16pe/{kind}"), 10, || {
            run_machine(kind, 16, 500)
        });
    }

    // Scaling sweep to 8x the paper's machine size. Simulated cycles
    // grow linearly with PE count, but work per live cycle grows with
    // the sharer fan-out, so the big sizes lean on the batched
    // broadcast path (and get fewer iterations to keep the sweep
    // quick).
    for pes in [2usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let iters = if pes >= 256 { 5 } else { 10 };
        time_case(&format!("rb_scaling/{pes}"), iters, || {
            run_machine(ProtocolKind::Rb, pes, 300)
        });
    }

    // Section 7's worked example at full scale: 128 PEs on one bus.
    // Feasible only with the wake-schedule engine — the scan-everything
    // loop made the cost per cycle linear in machine size even when
    // every PE was stalled on the saturated bus.
    for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        time_case(&format!("section7_128pe/{kind}"), 10, || {
            run_machine(kind, 128, 300)
        });
    }

    // The same study pushed to 1024 PEs — far past the paper's 128-PE
    // extrapolation ceiling. Tractable in seconds per run thanks to
    // the batched broadcast path and the packed tag-store rows.
    for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        time_case(&format!("section7_1024pe/{kind}"), 3, || {
            run_machine(kind, 1024, 300)
        });
    }
}
