//! Criterion benchmark: machine simulation throughput per protocol on
//! the mixed workload (the engine behind experiments E13, E9, E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};
use std::hint::black_box;

fn run_machine(kind: ProtocolKind, pes: usize, ops: u64) -> u64 {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig { ops_per_pe: ops, ..MixConfig::default() };
    let mut machine = MachineBuilder::new(kind)
        .memory_words(1 << 14)
        .cache_lines(256)
        .processors(pes, |pe| Box::new(MixWorkload::new(config, shared, pe as u64)))
        .build();
    machine.run_to_completion(100_000_000)
}

fn protocol_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("mix_workload_8pe");
    group.sample_size(10);
    for kind in ProtocolKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| b.iter(|| black_box(run_machine(kind, 8, 500))),
        );
    }
    group.finish();
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rb_scaling");
    group.sample_size(10);
    for pes in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &pes| {
            b.iter(|| black_box(run_machine(ProtocolKind::Rb, pes, 300)))
        });
    }
    group.finish();
}

criterion_group!(benches, protocol_throughput, scaling);
criterion_main!(benches);
