//! Criterion benchmark: product-machine exploration cost (experiment
//! E4) as the cache count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decache_core::ProtocolKind;
use decache_verify::ProductChecker;
use std::hint::black_box;

fn product_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("product_machine");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
            let label = format!("{kind}/n={n}");
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(kind, n),
                |b, &(kind, n)| {
                    b.iter(|| {
                        let report = ProductChecker::new(kind, n).explore();
                        assert!(report.holds());
                        black_box(report.states)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, product_machine);
criterion_main!(benches);
