//! Timing harness: product-machine exploration cost (experiment E4) as
//! the cache count grows.

use decache_bench::time_case;
use decache_core::ProtocolKind;
use decache_verify::ProductChecker;

fn main() {
    for n in [2usize, 3, 4] {
        for kind in [ProtocolKind::Rb, ProtocolKind::Rwb] {
            time_case(&format!("product_machine/{kind}/n={n}"), 10, || {
                let report = ProductChecker::new(kind, n).explore();
                assert!(report.holds());
                report.states
            });
        }
    }
}
