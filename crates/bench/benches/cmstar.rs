//! Criterion benchmark: Table 1-1 regeneration cost per cache size
//! (experiment E1's hot loop: stream generation + LRU emulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decache_workloads::{CmStarApp, CMSTAR_CACHE_SIZES};
use std::hint::black_box;

fn table_rows(c: &mut Criterion) {
    let app = CmStarApp::application_a();
    let mut group = c.benchmark_group("cmstar_row");
    group.sample_size(10);
    for &size in &CMSTAR_CACHE_SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| black_box(app.run(size, 20_000)))
        });
    }
    group.finish();
}

fn reference_generation(c: &mut Criterion) {
    let app = CmStarApp::application_b();
    c.bench_function("cmstar_reference_stream_20k", |b| {
        b.iter(|| black_box(app.references(20_000)))
    });
}

criterion_group!(benches, table_rows, reference_generation);
criterion_main!(benches);
