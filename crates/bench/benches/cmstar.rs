//! Timing harness: Table 1-1 regeneration cost per cache size
//! (experiment E1's hot loop: stream generation + LRU emulation).

use decache_bench::time_case;
use decache_workloads::{CmStarApp, CMSTAR_CACHE_SIZES};

fn main() {
    let app = CmStarApp::application_a();
    for &size in &CMSTAR_CACHE_SIZES {
        time_case(&format!("cmstar_row/{size}"), 10, || app.run(size, 20_000));
    }

    let app_b = CmStarApp::application_b();
    time_case("cmstar_reference_stream_20k", 10, || {
        app_b.references(20_000)
    });
}
