//! # decache-bench
//!
//! Experiment harnesses regenerating every table and figure of Rudolph &
//! Segall (1984), one binary per artifact (see DESIGN.md's experiment
//! index), plus Criterion micro-benchmarks of the simulator itself.
//!
//! Run any experiment with `cargo run -p decache-bench --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table_1_1` | Table 1-1, Cm* emulated cache results |
//! | `figure_3_1` / `figure_5_1` | RB / RWB state transition diagrams |
//! | `proof_check` | Section 4 product-machine lemma/theorem |
//! | `figure_6_1` / `figure_6_2` / `figure_6_3` | synchronization tables |
//! | `hotspot_sweep` | Section 6 hot-spot traffic, quantified |
//! | `bandwidth` | Section 7 SBB bound and worked example |
//! | `figure_7_1` | multiple shared buses |
//! | `array_init` | Section 5 array-initialization claim |
//! | `cyclic_sharing` | Section 5 cyclic sharing claim |
//! | `protocol_compare` | RB vs RWB vs write-once vs write-through |
//! | `ablation_k` / `ablation_arbiter` / `ablation_broadcast` | ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an experiment banner: title and the paper artifact it
/// regenerates.
pub fn banner(title: &str, artifact: &str) {
    println!("=== {title}");
    println!("    regenerates: {artifact}");
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_prints() {
        super::banner("test", "artifact");
    }
}
