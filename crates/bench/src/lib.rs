//! # decache-bench
//!
//! Experiment harnesses regenerating every table and figure of Rudolph &
//! Segall (1984), one binary per artifact (see DESIGN.md's experiment
//! index), plus dependency-free micro-benchmarks of the simulator
//! itself (`cargo bench -p decache-bench`, plain timing harnesses).
//!
//! Run any experiment with `cargo run -p decache-bench --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table_1_1` | Table 1-1, Cm* emulated cache results |
//! | `figure_3_1` / `figure_5_1` | RB / RWB state transition diagrams |
//! | `proof_check` | Section 4 product-machine lemma/theorem |
//! | `figure_6_1` / `figure_6_2` / `figure_6_3` | synchronization tables |
//! | `hotspot_sweep` | Section 6 hot-spot traffic, quantified |
//! | `bandwidth` | Section 7 SBB bound and worked example |
//! | `figure_7_1` | multiple shared buses |
//! | `array_init` | Section 5 array-initialization claim |
//! | `cyclic_sharing` | Section 5 cyclic sharing claim |
//! | `protocol_compare` | RB vs RWB vs write-once vs write-through |
//! | `ablation_k` / `ablation_arbiter` / `ablation_broadcast` | ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use decache_analysis::par;

use decache_machine::{Machine, MachineBuilder};
use decache_telemetry::{Json, MetricsSnapshot, PerfettoTrace};
use std::path::PathBuf;

/// Crash-safe per-case progress checkpointing for the long campaign
/// bins (`section7`, `fault_campaign`), behind two CLI flags:
///
/// * `--checkpoint-dir <dir>` — after each completed case, its result
///   is written to `<dir>/<case>.json` atomically (tmp + rename), so a
///   `SIGKILL` mid-sweep leaves only whole case files behind.
/// * `--resume` — completed cases found in the checkpoint directory
///   are loaded instead of recomputed; the sweep continues from where
///   the killed run stopped and prints exactly the bytes an
///   uninterrupted run prints (results are raw counters, so replaying
///   a case from disk is indistinguishable from re-simulating it).
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    dir: Option<PathBuf>,
    resume: bool,
}

impl Campaign {
    /// Parses `--checkpoint-dir <dir>` and `--resume` from the
    /// process's command line.
    ///
    /// # Panics
    ///
    /// If `--checkpoint-dir` is given without a directory, or
    /// `--resume` without `--checkpoint-dir`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let dir = args.iter().position(|a| a == "--checkpoint-dir").map(|at| {
            PathBuf::from(
                args.get(at + 1)
                    .filter(|a| !a.starts_with("--"))
                    .unwrap_or_else(|| panic!("--checkpoint-dir needs a directory")),
            )
        });
        let resume = args.iter().any(|a| a == "--resume");
        assert!(
            dir.is_some() || !resume,
            "--resume needs --checkpoint-dir <dir>"
        );
        Campaign { dir, resume }
    }

    /// The on-disk file for a case, with the key sanitized to a safe
    /// file name.
    fn case_path(&self, case: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let name: String = case
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{name}.json")))
    }

    /// The stored result for `case`, when resuming and the case file
    /// exists and parses. A corrupt file is ignored (the case is
    /// recomputed) — atomic writes mean that only happens if someone
    /// edited it by hand.
    pub fn load(&self, case: &str) -> Option<Json> {
        if !self.resume {
            return None;
        }
        let path = self.case_path(case)?;
        let text = std::fs::read_to_string(path).ok()?;
        Json::parse(&text).ok()
    }

    /// Records a completed case crash-safely (no-op without
    /// `--checkpoint-dir`).
    ///
    /// # Panics
    ///
    /// If the checkpoint directory is not writable.
    pub fn store(&self, case: &str, value: &Json) {
        let Some(path) = self.case_path(case) else {
            return;
        };
        let mut text = value.to_string();
        text.push('\n');
        decache_telemetry::write_atomic(&path, text.as_bytes())
            .unwrap_or_else(|e| panic!("checkpointing {case} to {}: {e}", path.display()));
    }

    /// Runs `case` through the checkpoint store: replays the stored
    /// result when resuming (decoded by `decode`), otherwise computes
    /// it with `compute` and stores its `encode`d form before
    /// returning.
    pub fn case<R>(
        &self,
        case: &str,
        decode: impl FnOnce(&Json) -> Result<R, String>,
        compute: impl FnOnce() -> R,
        encode: impl FnOnce(&R) -> Json,
    ) -> R {
        if let Some(stored) = self.load(case) {
            match decode(&stored) {
                Ok(result) => return result,
                Err(e) => eprintln!("checkpoint for {case} ignored: {e}"),
            }
        }
        let result = compute();
        self.store(case, &encode(&result));
        result
    }
}

/// Prints an experiment banner: title and the paper artifact it
/// regenerates.
pub fn banner(title: &str, artifact: &str) {
    println!("=== {title}");
    println!("    regenerates: {artifact}");
    println!();
}

/// Appends one JSON line to the file named by `DECACHE_BENCH_JSON`, if
/// set. All bench records go through this single writer (and the
/// canonical `decache_telemetry::Json` serializer), so the file is
/// uniformly parseable line-by-line. The append is crash-safe
/// (tmp + rename via `decache_telemetry::append_line_atomic`): a bench
/// bin killed mid-record leaves the file with whole lines only.
fn record_line(value: Json) {
    let Ok(path) = std::env::var("DECACHE_BENCH_JSON") else {
        return;
    };
    decache_telemetry::append_line_atomic(&path, &value.to_string())
        .unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
}

/// Appends one `{"name", "ns_per_iter", "iters"}` record to the file
/// named by `DECACHE_BENCH_JSON`, if set.
fn record_json(name: &str, nanos: f64, iters: u32) {
    // Keep the historical one-decimal rendering of BENCH_simulator.json
    // (`Json::F64` would print the full shortest-round-trip form).
    let rounded = (nanos * 10.0).round() / 10.0;
    record_line(Json::object(vec![
        ("name", Json::Str(name.to_owned())),
        ("ns_per_iter", Json::F64(rounded)),
        ("iters", Json::U64(u64::from(iters))),
    ]));
}

/// Appends one JSON record of named numeric metrics to the file named
/// by `DECACHE_BENCH_JSON`, if set: `{"name": …, "<key>": <value>, …}`.
/// The non-timing counterpart of [`time_case`]'s records, for derived
/// quantities (rates, means) that are not raw counters. For full
/// counter dumps, prefer [`record_snapshot`].
pub fn record_metrics(name: &str, fields: &[(&str, f64)]) {
    let mut obj = vec![("name", Json::Str(name.to_owned()))];
    obj.extend(fields.iter().map(|&(key, value)| (key, Json::F64(value))));
    record_line(Json::object(obj));
}

/// Appends one `{"name": …, "snapshot": <MetricsSnapshot>}` record to
/// the file named by `DECACHE_BENCH_JSON`, if set — the one schema for
/// experiment statistics: every counter the machine exposes, in the
/// versioned [`MetricsSnapshot`] form, serialized by the same canonical
/// writer as everything else.
pub fn record_snapshot(name: &str, snapshot: &MetricsSnapshot) {
    record_line(Json::object(vec![
        ("name", Json::Str(name.to_owned())),
        ("snapshot", snapshot.to_json()),
    ]));
}

/// Attaches a Perfetto trace recorder to `builder` iff the
/// `DECACHE_TRACE=<path>` environment knob is set. Pair with
/// [`save_env_trace`] after the run.
pub fn env_trace(builder: &mut MachineBuilder) -> Option<PerfettoTrace> {
    decache_telemetry::env_trace_path()?;
    let trace = PerfettoTrace::with_default_capacity();
    builder.observer(trace.observer());
    Some(trace)
}

/// Writes a trace captured via [`env_trace`] to the `DECACHE_TRACE`
/// path and prints where it went. No-op when `trace` is `None`.
pub fn save_env_trace(trace: &Option<PerfettoTrace>, machine: &Machine) {
    let (Some(trace), Some(path)) = (trace, decache_telemetry::env_trace_path()) else {
        return;
    };
    trace
        .save(machine, &path)
        .unwrap_or_else(|e| panic!("DECACHE_TRACE={}: {e}", path.display()));
    println!(
        "perfetto trace ({} events{}) written to {}",
        trace.len(),
        if trace.dropped() > 0 {
            format!(", {} dropped", trace.dropped())
        } else {
            String::new()
        },
        path.display()
    );
}

/// Times `body` over `iters` iterations after one warmup call and
/// prints a `name ... mean per-iter` line; the dependency-free stand-in
/// for the former Criterion harness. Returns the mean nanoseconds per
/// iteration so callers can assert coarse regressions if they want.
///
/// Two environment knobs:
///
/// * `DECACHE_BENCH_ITERS=<n>` overrides every case's iteration count —
///   CI smoke runs set it to `1` to type-check and exercise the bench
///   bins without paying for statistics.
/// * `DECACHE_BENCH_JSON=<path>` appends one JSON line per case
///   (`{"name": …, "ns_per_iter": …, "iters": …}`) to `<path>`, so
///   sweeps can be diffed across commits (see `BENCH_simulator.json`).
pub fn time_case<T>(name: &str, iters: u32, mut body: impl FnMut() -> T) -> f64 {
    let iters = match std::env::var("DECACHE_BENCH_ITERS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_BENCH_ITERS={v} is not a number")),
        Err(_) => iters,
    };
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(body());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(body());
    }
    let nanos = start.elapsed().as_nanos() as f64 / f64::from(iters);
    record_json(name, nanos, iters);
    if nanos >= 1_000_000.0 {
        println!(
            "{name:<44} {:>10.2} ms/iter ({iters} iters)",
            nanos / 1_000_000.0
        );
    } else if nanos >= 1_000.0 {
        println!(
            "{name:<44} {:>10.2} us/iter ({iters} iters)",
            nanos / 1_000.0
        );
    } else {
        println!("{name:<44} {nanos:>10.0} ns/iter ({iters} iters)");
    }
    nanos
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_prints() {
        super::banner("test", "artifact");
    }

    #[test]
    fn time_case_returns_positive_mean() {
        let mean = super::time_case("noop", 10, || 1 + 1);
        assert!(mean >= 0.0);
    }
}
