//! # decache-bench
//!
//! Experiment harnesses regenerating every table and figure of Rudolph &
//! Segall (1984), one binary per artifact (see DESIGN.md's experiment
//! index), plus dependency-free micro-benchmarks of the simulator
//! itself (`cargo bench -p decache-bench`, plain timing harnesses).
//!
//! Run any experiment with `cargo run -p decache-bench --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table_1_1` | Table 1-1, Cm* emulated cache results |
//! | `figure_3_1` / `figure_5_1` | RB / RWB state transition diagrams |
//! | `proof_check` | Section 4 product-machine lemma/theorem |
//! | `figure_6_1` / `figure_6_2` / `figure_6_3` | synchronization tables |
//! | `hotspot_sweep` | Section 6 hot-spot traffic, quantified |
//! | `bandwidth` | Section 7 SBB bound and worked example |
//! | `figure_7_1` | multiple shared buses |
//! | `array_init` | Section 5 array-initialization claim |
//! | `cyclic_sharing` | Section 5 cyclic sharing claim |
//! | `protocol_compare` | RB vs RWB vs write-once vs write-through |
//! | `ablation_k` / `ablation_arbiter` / `ablation_broadcast` | ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use decache_analysis::par;

/// Prints an experiment banner: title and the paper artifact it
/// regenerates.
pub fn banner(title: &str, artifact: &str) {
    println!("=== {title}");
    println!("    regenerates: {artifact}");
    println!();
}

/// Escapes a bench-case name for embedding in a JSON string.
fn json_escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Appends one `{"name", "ns_per_iter", "iters"}` record to the file
/// named by `DECACHE_BENCH_JSON`, if set.
fn record_json(name: &str, nanos: f64, iters: u32) {
    let Ok(path) = std::env::var("DECACHE_BENCH_JSON") else {
        return;
    };
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
    writeln!(
        file,
        "{{\"name\":\"{}\",\"ns_per_iter\":{nanos:.1},\"iters\":{iters}}}",
        json_escape(name)
    )
    .unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
}

/// Appends one JSON record of named numeric metrics to the file named
/// by `DECACHE_BENCH_JSON`, if set: `{"name": …, "<key>": <value>, …}`.
/// The non-timing counterpart of [`time_case`]'s records, for
/// experiment bins whose output is counters rather than nanoseconds
/// (e.g. the fault campaign's recovery rates).
pub fn record_metrics(name: &str, fields: &[(&str, f64)]) {
    let Ok(path) = std::env::var("DECACHE_BENCH_JSON") else {
        return;
    };
    use std::io::Write as _;
    let mut line = format!("{{\"name\":\"{}\"", json_escape(name));
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":{value}", json_escape(key)));
    }
    line.push('}');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
    writeln!(file, "{line}").unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
}

/// Times `body` over `iters` iterations after one warmup call and
/// prints a `name ... mean per-iter` line; the dependency-free stand-in
/// for the former Criterion harness. Returns the mean nanoseconds per
/// iteration so callers can assert coarse regressions if they want.
///
/// Two environment knobs:
///
/// * `DECACHE_BENCH_ITERS=<n>` overrides every case's iteration count —
///   CI smoke runs set it to `1` to type-check and exercise the bench
///   bins without paying for statistics.
/// * `DECACHE_BENCH_JSON=<path>` appends one JSON line per case
///   (`{"name": …, "ns_per_iter": …, "iters": …}`) to `<path>`, so
///   sweeps can be diffed across commits (see `BENCH_simulator.json`).
pub fn time_case<T>(name: &str, iters: u32, mut body: impl FnMut() -> T) -> f64 {
    let iters = match std::env::var("DECACHE_BENCH_ITERS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_BENCH_ITERS={v} is not a number")),
        Err(_) => iters,
    };
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(body());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(body());
    }
    let nanos = start.elapsed().as_nanos() as f64 / f64::from(iters);
    record_json(name, nanos, iters);
    if nanos >= 1_000_000.0 {
        println!(
            "{name:<44} {:>10.2} ms/iter ({iters} iters)",
            nanos / 1_000_000.0
        );
    } else if nanos >= 1_000.0 {
        println!(
            "{name:<44} {:>10.2} us/iter ({iters} iters)",
            nanos / 1_000.0
        );
    } else {
        println!("{name:<44} {nanos:>10.0} ns/iter ({iters} iters)");
    }
    nanos
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_prints() {
        super::banner("test", "artifact");
    }

    #[test]
    fn time_case_returns_positive_mean() {
        let mean = super::time_case("noop", 10, || 1 + 1);
        assert!(mean >= 0.0);
    }
}
