//! # decache-bench
//!
//! Experiment harnesses regenerating every table and figure of Rudolph &
//! Segall (1984), one binary per artifact (see DESIGN.md's experiment
//! index), plus dependency-free micro-benchmarks of the simulator
//! itself (`cargo bench -p decache-bench`, plain timing harnesses).
//!
//! Run any experiment with `cargo run -p decache-bench --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table_1_1` | Table 1-1, Cm* emulated cache results |
//! | `figure_3_1` / `figure_5_1` | RB / RWB state transition diagrams |
//! | `proof_check` | Section 4 product-machine lemma/theorem |
//! | `figure_6_1` / `figure_6_2` / `figure_6_3` | synchronization tables |
//! | `hotspot_sweep` | Section 6 hot-spot traffic, quantified |
//! | `bandwidth` | Section 7 SBB bound and worked example |
//! | `figure_7_1` | multiple shared buses |
//! | `array_init` | Section 5 array-initialization claim |
//! | `cyclic_sharing` | Section 5 cyclic sharing claim |
//! | `protocol_compare` | RB vs RWB vs write-once vs write-through |
//! | `ablation_k` / `ablation_arbiter` / `ablation_broadcast` | ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use decache_analysis::par;

use decache_machine::{Machine, MachineBuilder};
use decache_telemetry::{Json, MetricsSnapshot, PerfettoTrace};

/// Prints an experiment banner: title and the paper artifact it
/// regenerates.
pub fn banner(title: &str, artifact: &str) {
    println!("=== {title}");
    println!("    regenerates: {artifact}");
    println!();
}

/// Appends one JSON line to the file named by `DECACHE_BENCH_JSON`, if
/// set. All bench records go through this single writer (and the
/// canonical `decache_telemetry::Json` serializer), so the file is
/// uniformly parseable line-by-line.
fn record_line(value: Json) {
    let Ok(path) = std::env::var("DECACHE_BENCH_JSON") else {
        return;
    };
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
    writeln!(file, "{value}").unwrap_or_else(|e| panic!("DECACHE_BENCH_JSON={path}: {e}"));
}

/// Appends one `{"name", "ns_per_iter", "iters"}` record to the file
/// named by `DECACHE_BENCH_JSON`, if set.
fn record_json(name: &str, nanos: f64, iters: u32) {
    // Keep the historical one-decimal rendering of BENCH_simulator.json
    // (`Json::F64` would print the full shortest-round-trip form).
    let rounded = (nanos * 10.0).round() / 10.0;
    record_line(Json::object(vec![
        ("name", Json::Str(name.to_owned())),
        ("ns_per_iter", Json::F64(rounded)),
        ("iters", Json::U64(u64::from(iters))),
    ]));
}

/// Appends one JSON record of named numeric metrics to the file named
/// by `DECACHE_BENCH_JSON`, if set: `{"name": …, "<key>": <value>, …}`.
/// The non-timing counterpart of [`time_case`]'s records, for derived
/// quantities (rates, means) that are not raw counters. For full
/// counter dumps, prefer [`record_snapshot`].
pub fn record_metrics(name: &str, fields: &[(&str, f64)]) {
    let mut obj = vec![("name", Json::Str(name.to_owned()))];
    obj.extend(fields.iter().map(|&(key, value)| (key, Json::F64(value))));
    record_line(Json::object(obj));
}

/// Appends one `{"name": …, "snapshot": <MetricsSnapshot>}` record to
/// the file named by `DECACHE_BENCH_JSON`, if set — the one schema for
/// experiment statistics: every counter the machine exposes, in the
/// versioned [`MetricsSnapshot`] form, serialized by the same canonical
/// writer as everything else.
pub fn record_snapshot(name: &str, snapshot: &MetricsSnapshot) {
    record_line(Json::object(vec![
        ("name", Json::Str(name.to_owned())),
        ("snapshot", snapshot.to_json()),
    ]));
}

/// Attaches a Perfetto trace recorder to `builder` iff the
/// `DECACHE_TRACE=<path>` environment knob is set. Pair with
/// [`save_env_trace`] after the run.
pub fn env_trace(builder: &mut MachineBuilder) -> Option<PerfettoTrace> {
    decache_telemetry::env_trace_path()?;
    let trace = PerfettoTrace::with_default_capacity();
    builder.observer(trace.observer());
    Some(trace)
}

/// Writes a trace captured via [`env_trace`] to the `DECACHE_TRACE`
/// path and prints where it went. No-op when `trace` is `None`.
pub fn save_env_trace(trace: &Option<PerfettoTrace>, machine: &Machine) {
    let (Some(trace), Some(path)) = (trace, decache_telemetry::env_trace_path()) else {
        return;
    };
    trace
        .save(machine, &path)
        .unwrap_or_else(|e| panic!("DECACHE_TRACE={}: {e}", path.display()));
    println!(
        "perfetto trace ({} events{}) written to {}",
        trace.len(),
        if trace.dropped() > 0 {
            format!(", {} dropped", trace.dropped())
        } else {
            String::new()
        },
        path.display()
    );
}

/// Times `body` over `iters` iterations after one warmup call and
/// prints a `name ... mean per-iter` line; the dependency-free stand-in
/// for the former Criterion harness. Returns the mean nanoseconds per
/// iteration so callers can assert coarse regressions if they want.
///
/// Two environment knobs:
///
/// * `DECACHE_BENCH_ITERS=<n>` overrides every case's iteration count —
///   CI smoke runs set it to `1` to type-check and exercise the bench
///   bins without paying for statistics.
/// * `DECACHE_BENCH_JSON=<path>` appends one JSON line per case
///   (`{"name": …, "ns_per_iter": …, "iters": …}`) to `<path>`, so
///   sweeps can be diffed across commits (see `BENCH_simulator.json`).
pub fn time_case<T>(name: &str, iters: u32, mut body: impl FnMut() -> T) -> f64 {
    let iters = match std::env::var("DECACHE_BENCH_ITERS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_BENCH_ITERS={v} is not a number")),
        Err(_) => iters,
    };
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(body());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(body());
    }
    let nanos = start.elapsed().as_nanos() as f64 / f64::from(iters);
    record_json(name, nanos, iters);
    if nanos >= 1_000_000.0 {
        println!(
            "{name:<44} {:>10.2} ms/iter ({iters} iters)",
            nanos / 1_000_000.0
        );
    } else if nanos >= 1_000.0 {
        println!(
            "{name:<44} {:>10.2} us/iter ({iters} iters)",
            nanos / 1_000.0
        );
    } else {
        println!("{name:<44} {nanos:>10.0} ns/iter ({iters} iters)");
    }
    nanos
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_prints() {
        super::banner("test", "artifact");
    }

    #[test]
    fn time_case_returns_positive_mean() {
        let mean = super::time_case("noop", 10, || 1 + 1);
        assert!(mean >= 0.0);
    }
}
