//! A4 — ablation of **bus/memory transaction latency**: the paper's
//! model charges one cycle per transaction; real memory is slower than
//! the caches ("access to the common main memory is significantly more
//! expensive", Section 1). Slower transactions shift the saturation
//! knee to fewer processors and *widen* every gap the paper reports,
//! because the losing schemes lose by making more transactions.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

fn run(kind: ProtocolKind, pes: usize, latency: u64) -> (u64, f64) {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 1_200,
        ..MixConfig::default()
    };
    let mut machine = MachineBuilder::new(kind)
        .memory_words(1 << 14)
        .cache_lines(256)
        .transaction_cycles(latency)
        .processors(pes, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        })
        .build();
    let cycles = machine.run_to_completion(1_000_000_000);
    (cycles, machine.traffic().utilization())
}

fn main() {
    banner(
        "Transaction latency ablation",
        "memory slower than caches: the gaps widen",
    );

    let mut table = TextTable::new(vec![
        "latency",
        "PEs",
        "RB cycles",
        "WT cycles",
        "WT/RB",
        "RB util",
    ]);
    let grid: Vec<(u64, usize)> = [1u64, 2, 4, 8]
        .iter()
        .flat_map(|&latency| [4usize, 16].iter().map(move |&pes| (latency, pes)))
        .collect();
    let cases: Vec<(ProtocolKind, u64, usize)> = grid
        .iter()
        .flat_map(|&(latency, pes)| {
            [ProtocolKind::Rb, ProtocolKind::WriteThrough]
                .iter()
                .map(move |&kind| (kind, latency, pes))
        })
        .collect();
    let results = par::run_cases(&cases, |&(kind, latency, pes)| run(kind, pes, latency));

    for (&(latency, pes), pair) in grid.iter().zip(results.chunks(2)) {
        let (rb_cycles, rb_util) = pair[0];
        let (wt_cycles, _) = pair[1];
        table.row(vec![
            latency.to_string(),
            pes.to_string(),
            rb_cycles.to_string(),
            wt_cycles.to_string(),
            format!("{:.2}x", wt_cycles as f64 / rb_cycles as f64),
            format!("{:.1}%", rb_util * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected: the write-through/RB ratio grows with latency — every");
    println!("transaction the dynamic classification avoids is worth more when");
    println!("memory is slow, which strengthens (never weakens) the paper's case.");
}
