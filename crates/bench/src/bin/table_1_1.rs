//! E1 — regenerates **Table 1-1: Cm* Emulated Cache Results**.
//!
//! Two synthetic applications with the table's reference mixes are run
//! through the Cm*-style emulation cache (code and local data cachable,
//! write-through local writes, shared non-cachable) at each of the
//! table's four cache sizes. See DESIGN.md for the trace substitution.

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_workloads::{CmStarApp, CMSTAR_CACHE_SIZES};

const REFERENCES: usize = 60_000;

fn main() {
    banner(
        "Cm* emulated cache results",
        "Table 1-1 (miss fractions as % of all references)",
    );

    let paper: [(&str, [[f64; 4]; 4]); 2] = [
        (
            "application A",
            [
                [26.1, 8.0, 5.0, 39.1],
                [21.7, 8.0, 5.0, 34.7],
                [11.3, 8.0, 5.0, 24.3],
                [6.1, 8.0, 5.0, 19.1],
            ],
        ),
        (
            "application B",
            [
                [25.0, 6.7, 10.0, 41.7],
                [28.8, 6.7, 10.0, 37.5], // 28.8 is the paper's own typo
                [10.8, 6.7, 10.0, 27.5],
                [5.8, 6.7, 10.0, 22.5],
            ],
        ),
    ];

    for (app, (paper_name, paper_rows)) in [CmStarApp::application_a(), CmStarApp::application_b()]
        .into_iter()
        .zip(paper)
    {
        println!("{} (paper: {paper_name})", app.name());
        let mut table = TextTable::new(vec![
            "cache size",
            "read miss %",
            "(paper)",
            "local writes %",
            "(paper)",
            "shared %",
            "(paper)",
            "total miss %",
            "(paper)",
        ]);
        for (row, (size, paper_row)) in app
            .run_table(REFERENCES)
            .iter()
            .zip(CMSTAR_CACHE_SIZES.iter().zip(paper_rows))
        {
            table.row(vec![
                size.to_string(),
                format!("{:.1}", row.read_miss_pct),
                format!("{:.1}", paper_row[0]),
                format!("{:.1}", row.local_write_pct),
                format!("{:.1}", paper_row[1]),
                format!("{:.1}", row.shared_pct),
                format!("{:.1}", paper_row[2]),
                format!("{:.1}", row.total_miss_pct),
                format!("{:.1}", paper_row[3]),
            ]);
        }
        println!("{table}");
    }

    println!("ablation: direct-mapped instead of fully-associative LRU (conflict misses)");
    let mut table = TextTable::new(vec!["cache size", "read miss % (LRU)", "read miss % (DM)"]);
    let app = CmStarApp::application_a();
    for &size in &CMSTAR_CACHE_SIZES {
        let lru = app.run(size, REFERENCES);
        let dm = app.run_direct_mapped(size, REFERENCES);
        table.row(vec![
            size.to_string(),
            format!("{:.1}", lru.read_miss_pct),
            format!("{:.1}", dm.read_miss_pct),
        ]);
    }
    println!("{table}");
}
