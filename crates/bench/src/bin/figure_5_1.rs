//! E3 — regenerates **Figure 5-1: State Transition Diagram for each
//! Cache Entry for the RWB Scheme**, including the bus-invalidate (BI)
//! edges, as a transition table and Graphviz DOT.

use decache_bench::banner;
use decache_core::{to_dot, transition_table, Protocol, Rwb};

fn main() {
    banner("RWB per-line state transition diagram", "Figure 5-1");

    let rwb = Rwb::new();
    let rows = transition_table(&rwb);
    println!("transitions ({}), k = {}:", rows.len(), rwb.threshold());
    for row in &rows {
        println!("  {row}");
    }
    println!();
    println!("legend: CW/CR = CPU write/read, BW/BR = bus write/read, BI = bus invalidate");
    println!();
    println!("Graphviz DOT:");
    println!("{}", to_dot("RWB (Figure 5-1)", &rows));

    // Footnote 6 generalization: higher thresholds add F states.
    for k in [3u8, 4] {
        let rwb = Rwb::with_threshold(k);
        println!(
            "k = {k}: states {:?}",
            rwb.states()
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        );
    }
}
