//! The static protocol-analyzer gate: per-rule proofs for every
//! protocol, without state-space exploration at any fixed `n`.
//!
//! For each of the eight protocols (the paper's seven schemes plus the
//! table-defined MESI), runs `decache_verify::static_check`: the rule
//! table — compiled from the hand-coded implementation, or MESI's
//! native IR — is proven total, deterministic, and PE-symmetric per
//! rule, and the coherence invariants are proven preserved **for all
//! cache counts at once** via the counting-abstraction small-model
//! argument. Statically dead rules are compared against the committed
//! baseline in `crates/verify/src/static_baseline.txt`.
//!
//! Exits non-zero — failing CI — on any analyzer diagnostic, any
//! unreachable declared state, a missing baseline line, or any dead-set
//! deviation from the baseline (new dead rules *or* stale entries).
//!
//! `--print-baseline` prints a fresh baseline file to stdout instead
//! (redirect it over `static_baseline.txt` after an intentional
//! change); `--print-baseline <path>` writes it straight to `<path>`
//! crash-safely (tmp + rename), so an interrupted regeneration can
//! never truncate the committed baseline.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_verify::static_check::{
    self, baseline_line, committed_static_baseline, fixed_versus, new_dead_versus, Analysis,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let print_baseline = args.iter().position(|a| a == "--print-baseline");
    let analyses: Vec<Analysis> = par::run_cases(&static_check::ANALYZED_KINDS, |kind| {
        static_check::check_kind(*kind)
    });

    if let Some(flag_at) = print_baseline {
        let mut text = String::new();
        text.push_str("# Statically-dead rule baseline: one line per protocol, from the\n");
        text.push_str("# per-rule static analyzer (counting abstraction, all n at once).\n");
        text.push_str("# Regenerate with:\n");
        text.push_str("#   cargo run -p decache-bench --bin protocol_lint -- --print-baseline\n");
        for analysis in &analyses {
            text.push_str(&baseline_line(analysis));
            text.push('\n');
        }
        match args.get(flag_at + 1).filter(|a| !a.starts_with("--")) {
            Some(path) => {
                // Land the regenerated baseline via tmp + rename so an
                // interrupted run cannot truncate the committed file.
                decache_telemetry::write_atomic(path, text.as_bytes())
                    .unwrap_or_else(|e| panic!("writing baseline to {path}: {e}"));
                println!("baseline written to {path}");
            }
            None => print!("{text}"),
        }
        return ExitCode::SUCCESS;
    }

    banner(
        "Static protocol analysis",
        "per-rule totality/determinism/symmetry + invariant preservation for all n",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "rules",
        "abstract states",
        "dead",
        "unreachable",
        "verdict",
    ]);
    let mut failures = Vec::new();
    for (kind, analysis) in static_check::ANALYZED_KINDS.iter().zip(&analyses) {
        let rules = decache_protocol_ir::table_for(*kind).rules.len();
        let mut problems = Vec::new();
        if !analysis.proved() {
            problems.push(format!("{} diagnostics", analysis.diagnostics.len()));
            for diagnostic in &analysis.diagnostics {
                failures.push(format!("{}: {diagnostic}", analysis.protocol));
            }
        }
        if !analysis.unreachable_states.is_empty() {
            problems.push(format!("unreachable: {:?}", analysis.unreachable_states));
            failures.push(format!(
                "{}: unreachable states {:?}",
                analysis.protocol, analysis.unreachable_states
            ));
        }
        match committed_static_baseline(&analysis.protocol) {
            None => {
                problems.push("no baseline".to_owned());
                failures.push(format!(
                    "{}: no committed static baseline line — add one with --print-baseline",
                    analysis.protocol
                ));
            }
            Some(baseline) => {
                for id in new_dead_versus(analysis, &baseline) {
                    problems.push(format!("new dead: {id}"));
                    failures.push(format!("{}: new dead rule {id}", analysis.protocol));
                }
                for id in fixed_versus(analysis, &baseline) {
                    problems.push(format!("stale: {id}"));
                    failures.push(format!(
                        "{}: baseline rule {id} is no longer dead — regenerate",
                        analysis.protocol
                    ));
                }
            }
        }
        let verdict = if problems.is_empty() {
            "proved".to_owned()
        } else {
            problems.join("; ")
        };
        table.row(vec![
            analysis.protocol.clone(),
            rules.to_string(),
            analysis.abstract_states.to_string(),
            analysis.dead_rules.len().to_string(),
            analysis.unreachable_states.len().to_string(),
            verdict,
        ]);
    }
    println!("{table}");

    if failures.is_empty() {
        println!("protocol_lint: all {} protocols proved", analyses.len());
        ExitCode::SUCCESS
    } else {
        println!("protocol_lint: {} failure(s):", failures.len());
        for failure in &failures {
            println!("  {failure}");
        }
        ExitCode::FAILURE
    }
}
