//! A5 — ablation of **cache associativity**: the paper fixes a
//! direct-mapped cache (Section 2, assumption 7). Holding capacity
//! constant while raising associativity removes conflict misses; the
//! coherence behaviour (and every correctness property) is unchanged —
//! supporting the paper's remark that the replacement policy "is
//! orthogonal to our scheme".

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_cache::Geometry;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

fn run(kind: ProtocolKind, geometry: Geometry) -> (u64, u64, f64) {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 2_000,
        ..MixConfig::default()
    };
    let mut machine = MachineBuilder::new(kind)
        .memory_words(1 << 14)
        .cache_geometry(geometry)
        .processors(8, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        })
        .build();
    let cycles = machine.run_to_completion(1_000_000_000);
    let stats = machine.total_cache_stats();
    (
        cycles,
        machine.traffic().total_transactions(),
        stats.hit_ratio(),
    )
}

fn main() {
    banner(
        "Cache associativity ablation",
        "Section 2 assumption 7 (direct-mapped), relaxed",
    );

    let capacity = 256usize;
    let mut table = TextTable::new(vec![
        "geometry",
        "protocol",
        "cycles",
        "bus tx",
        "hit ratio",
    ]);
    let cases: Vec<(Geometry, ProtocolKind)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&ways| {
            let geometry = Geometry::new(capacity / ways, ways, 1);
            [ProtocolKind::Rb, ProtocolKind::Rwb]
                .iter()
                .map(move |&kind| (geometry, kind))
        })
        .collect();
    let results = par::run_cases(&cases, |&(geometry, kind)| run(kind, geometry));

    for (&(geometry, kind), &(cycles, tx, hits)) in cases.iter().zip(&results) {
        table.row(vec![
            geometry.to_string(),
            kind.to_string(),
            cycles.to_string(),
            tx.to_string(),
            format!("{:.1}%", hits * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected: modest hit-ratio gains from associativity at equal capacity");
    println!("(conflict misses removed); coherence costs are unchanged, so the");
    println!("protocols' relative ordering is insensitive to the mapping choice.");
}
