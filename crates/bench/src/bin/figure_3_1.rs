//! E2 — regenerates **Figure 3-1: State Transition Diagram for each
//! Cache Entry for the RB Scheme**, as a transition table and Graphviz
//! DOT.

use decache_bench::banner;
use decache_core::{to_dot, transition_table, Rb};

fn main() {
    banner("RB per-line state transition diagram", "Figure 3-1");

    let rb = Rb::new();
    let rows = transition_table(&rb);
    println!("transitions ({}):", rows.len());
    for row in &rows {
        println!("  {row}");
    }
    println!();
    println!("legend: CW/CR = CPU write/read request, BW/BR = bus write/read request");
    println!();
    println!("Graphviz DOT:");
    println!("{}", to_dot("RB (Figure 3-1)", &rows));
}
