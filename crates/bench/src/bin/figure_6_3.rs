//! E7 — regenerates **Figure 6-3: Synchronization with
//! Test-and-Test-and-Set for RWB Scheme**: on top of TTS's silent
//! spinning, RWB's write broadcast leaves the lock in the shared
//! configuration after a successful Test-and-Set (the `F`/`R` rows),
//! so even the first test after an acquisition hits in the cache.

use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_sync::{Primitive, SyncScenario};

fn main() {
    banner(
        "Synchronization with Test-and-Test-and-Set on RWB",
        "Figure 6-3",
    );
    let report = SyncScenario::new(ProtocolKind::Rwb, Primitive::TestAndTestAndSet).run();
    println!("{}", report.render());
    println!("bus transactions per phase:");
    for (label, tx) in &report.phase_traffic {
        println!("  {tx:>4}  {label}");
    }
    println!();
    println!(
        "vs RB (Figure 6-2): the first test after the lock is taken costs {} transactions \
         under RWB (RB pays a bus read)",
        report.traffic_of("Others test S (first test)")
    );
}
