//! E-FAULT — fault-injection campaign quantifying the Section 5/8
//! reliability claim: under RWB "there is a higher probability that
//! some cache contains a correct copy", so memory-word faults recover
//! more often than under RB, whose write invalidations strip the very
//! replicas recovery needs.
//!
//! Three parts:
//!
//! 1. **Recovery sweep** — fault rate × all seven protocols, many
//!    seeded runs per cell, the live conformance oracle riding on every
//!    run (any protocol-state divergence under faults is fatal).
//! 2. **RWB vs RB** — at equal fault rates, RWB's memory-recovery
//!    success rate must strictly exceed RB's.
//! 3. **Fail-stop degradation** — per protocol × {Drain, Forfeit}, a
//!    PE is killed mid-run; the machine must reach a structured
//!    `Completed` outcome with exact lost-write accounting.
//!
//! `DECACHE_CAMPAIGN_RUNS=<n>` overrides the per-cell run count (CI
//! smoke runs use 1; the oracle and fail-stop checks still bite).
//!
//! The sweep runs on the supervised worker pool
//! ([`par::supervise`]): each cell executes under a panic guard and a
//! per-run cycle budget, so one pathological cell is quarantined and
//! *reported* instead of silently tearing down the whole campaign.
//! `--checkpoint-dir <dir>` / `--resume` add crash-safe progress
//! checkpointing: completed cells land atomically in `<dir>` and a
//! killed campaign resumes without recomputing them (see
//! [`decache_bench::Campaign`]).

use decache_analysis::TextTable;
use decache_bench::{banner, par, record_snapshot, Campaign};
use decache_core::ProtocolKind;
use decache_machine::{FailStopPolicy, FaultPlan, Machine, MachineBuilder, Script};
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::Rng;
use decache_telemetry::{Json, MetricsSnapshot};
use decache_verify::Refinement;

/// The seven protocol variants, in the workspace's canonical order.
const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

const PES: usize = 4;
const HOT_WORDS: u64 = 8;
const CHURN_WORDS: u64 = 32;

fn campaign_runs() -> u64 {
    match std::env::var("DECACHE_CAMPAIGN_RUNS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_CAMPAIGN_RUNS={v} is not a number")),
        Err(_) => 24,
    }
}

/// The written-then-shared workload that separates the protocols, in
/// three roles:
///
/// * **PE 0, writer** — writes random hot words, with churn reads so
///   its owned lines evict (an attached owner would mask memory faults
///   by supplying, and its write-back overwrites lingering corruption).
/// * **PEs 1..n-1, holders** — populate the whole hot set once, then
///   mostly spin on a private word, occasionally re-reading a hot one.
///   These caches are where recovery replicas live — or don't.
/// * **PE n-1, prober** — reads a hot word, then enough churn that the
///   line is gone again by its next probe. Every probe is a miss whose
///   memory read is a detection opportunity, under every protocol.
///
/// After each write, RWB's broadcast updates every holder's replica in
/// place, so a probe that detects a flip finds a full quorum; RB's
/// invalidation strips the replicas, and a holder only regains one the
/// next time it happens to pick that word — a flip probed inside that
/// window finds nothing to recover from.
fn campaign_script(rng: &mut Rng, pe: usize) -> Script {
    let mut script = Script::new();
    if pe == 0 {
        for round in 0..rng.gen_range(32u64..48) {
            let hot = Addr::new(rng.gen_range(0..HOT_WORDS));
            script = script.write(hot, Word::new(round * 10 + 1));
            for k in 0..4u64 {
                let churn = Addr::new(HOT_WORDS + (round * 4 + k) % CHURN_WORDS);
                script = script.read(churn);
            }
        }
    } else if pe == PES - 1 {
        for round in 0..rng.gen_range(60u64..80) {
            script = script.read(Addr::new(rng.gen_range(0..HOT_WORDS)));
            for k in 0..4u64 {
                let churn = Addr::new(HOT_WORDS + (round * 4 + k + 16) % CHURN_WORDS);
                script = script.read(churn);
            }
        }
    } else {
        for w in 0..HOT_WORDS {
            script = script.read(Addr::new(w));
        }
        let private = Addr::new(HOT_WORDS + CHURN_WORDS + pe as u64);
        for _ in 0..rng.gen_range(150u64..200) {
            script = if rng.gen_range(0u8..8) == 0 {
                script.read(Addr::new(rng.gen_range(0..HOT_WORDS)))
            } else {
                script.read(private)
            };
        }
    }
    script
}

/// One seeded campaign run: oracle-instrumented machine under a
/// rate-driven fault plan, required to conform. Returns the unified
/// metrics snapshot (telemetry enabled), or `None` if the run did not
/// complete within `budget` cycles (the supervisor's watchdog verdict).
fn campaign_run(kind: ProtocolKind, rate: f64, seed: u64, budget: u64) -> Option<MetricsSnapshot> {
    let mut rng = Rng::from_seed(seed);
    let oracle = Refinement::new(kind, PES);
    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(64).cache_lines(16).telemetry();
    for pe in 0..PES {
        builder.processor(campaign_script(&mut rng, pe).build());
    }
    builder
        .fault_plan(
            FaultPlan::new(rng.next_u64())
                .memory_flip_rate(rate)
                .cache_flip_rate(rate / 2.0)
                .bus_loss_rate(rate / 4.0)
                .region(AddrRange::with_len(Addr::new(0), HOT_WORDS)),
        )
        .observer(oracle.observer());
    let mut machine = builder.build();
    let outcome = machine.run_outcome(budget);
    if !outcome.is_complete() {
        return None;
    }
    assert!(
        oracle.checked_steps() > 0,
        "{kind}: the observer saw nothing"
    );
    oracle.assert_clean();
    Some(MetricsSnapshot::from_machine(&machine))
}

/// Aggregated recovery statistics for one (protocol, rate) cell.
#[derive(Clone, Copy)]
struct Cell {
    injected: u64,
    detected: u64,
    owner: u64,
    majority: u64,
    failed: u64,
    heals: u64,
    lost_writes: u64,
    latency_total: u64,
    latency_samples: u64,
}

impl Cell {
    fn attempts(&self) -> u64 {
        self.owner + self.majority + self.failed
    }

    fn success_rate(&self) -> Option<f64> {
        let attempts = self.attempts();
        (attempts > 0).then(|| (self.owner + self.majority) as f64 / attempts as f64)
    }

    fn mean_latency(&self) -> f64 {
        if self.latency_samples == 0 {
            return 0.0;
        }
        self.latency_total as f64 / self.latency_samples as f64
    }
}

/// Runs one (protocol, rate) cell: the derived recovery table row plus
/// the merged-across-runs metrics snapshot, conservation-audited.
/// Returns `None` if any run exhausted the supervisor's cycle budget.
fn sweep_cell(
    kind: ProtocolKind,
    rate: f64,
    runs: u64,
    budget: u64,
) -> Option<(Cell, MetricsSnapshot)> {
    let mut cell = Cell {
        injected: 0,
        detected: 0,
        owner: 0,
        majority: 0,
        failed: 0,
        heals: 0,
        lost_writes: 0,
        latency_total: 0,
        latency_samples: 0,
    };
    let mut merged: Option<MetricsSnapshot> = None;
    for run in 0..runs {
        // Seeds depend only on (rate, run), so every protocol sees the
        // same fault-plan seeds at a given rate.
        let seed = 0x5EED_0000 + (rate * 1e6) as u64 * 1_000 + run;
        let snapshot = campaign_run(kind, rate, seed, budget)?;
        let s = &snapshot.faults;
        cell.injected += s.total_injected();
        cell.detected += s.memory_faults_detected + s.cache_faults_detected;
        cell.owner += s.memory_recoveries_owner;
        cell.majority += s.memory_recoveries_majority;
        cell.failed += s.memory_recoveries_failed;
        cell.heals += s.broadcast_heals;
        cell.lost_writes += s.lost_writes;
        cell.latency_total += s.recovery_latency_total;
        cell.latency_samples += s.recovery_latency_samples;
        match &mut merged {
            None => merged = Some(snapshot),
            Some(acc) => acc.merge(&snapshot).expect("same cell configuration"),
        }
    }
    let merged = merged.expect("at least one run per cell");
    merged.check_conservation().unwrap_or_else(|violations| {
        panic!(
            "{kind} rate {rate}: conservation violated:\n  {}",
            violations.join("\n  ")
        )
    });
    Some((cell, merged))
}

/// The stored form of a completed cell: the derived counters plus the
/// merged snapshot, both raw integers, so a resumed campaign prints
/// exactly what the uninterrupted campaign prints.
fn encode_cell(cell: &Cell, merged: &MetricsSnapshot) -> Json {
    Json::object(vec![
        (
            "cell",
            Json::object(vec![
                ("injected", Json::U64(cell.injected)),
                ("detected", Json::U64(cell.detected)),
                ("owner", Json::U64(cell.owner)),
                ("majority", Json::U64(cell.majority)),
                ("failed", Json::U64(cell.failed)),
                ("heals", Json::U64(cell.heals)),
                ("lost_writes", Json::U64(cell.lost_writes)),
                ("latency_total", Json::U64(cell.latency_total)),
                ("latency_samples", Json::U64(cell.latency_samples)),
            ]),
        ),
        ("snapshot", merged.to_json()),
    ])
}

fn decode_cell(json: &Json) -> Result<(Cell, MetricsSnapshot), String> {
    let raw = json
        .get("cell")
        .ok_or_else(|| "missing 'cell'".to_string())?;
    let uint = |key: &str| {
        raw.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing counter '{key}'"))
    };
    let cell = Cell {
        injected: uint("injected")?,
        detected: uint("detected")?,
        owner: uint("owner")?,
        majority: uint("majority")?,
        failed: uint("failed")?,
        heals: uint("heals")?,
        lost_writes: uint("lost_writes")?,
        latency_total: uint("latency_total")?,
        latency_samples: uint("latency_samples")?,
    };
    let snapshot = MetricsSnapshot::from_json(
        json.get("snapshot")
            .ok_or_else(|| "missing 'snapshot'".to_string())?,
    )?;
    Ok((cell, snapshot))
}

/// Fail-stop scenario: P0 writes `x` twice (the second write is silent
/// under the write-back protocols, so the owned 9 may exist only in
/// its cache) and `z` once, then is killed. A survivor reads `x`. The
/// last values P0 wrote were x=9 and z=4; any of them memory does not
/// hold after the kill is a lost write.
fn fail_stop_run(kind: ProtocolKind, policy: FailStopPolicy) -> (Machine, Word, u64) {
    let x = Addr::new(1);
    let z = Addr::new(2);
    let mut filler = Script::new();
    for i in 0..20u64 {
        filler = filler.read(Addr::new(16 + i % 4));
    }
    let mut machine = MachineBuilder::new(kind)
        .memory_words(64)
        .processor(
            Script::new()
                .write(x, Word::new(1))
                .write(x, Word::new(9))
                .write(z, Word::new(4))
                .build(),
        )
        .processor(filler.read(x).build())
        .fault_plan(FaultPlan::new(7).fail_stop_at(12, 0))
        .fail_stop_policy(policy)
        .build();
    let outcome = machine.run_outcome(1_000_000);
    assert!(
        outcome.is_complete(),
        "{kind} {policy:?}: no graceful degradation: {outcome}"
    );
    assert!(machine.pe_failed(0) && machine.live_pes() == 1);
    let seen_x = machine.memory().peek(x).expect("x in range");
    let seen_z = machine.memory().peek(z).expect("z in range");
    let missing = u64::from(seen_x != Word::new(9)) + u64::from(seen_z != Word::new(4));
    (machine, seen_x, missing)
}

fn main() {
    banner(
        "Fault-injection campaign",
        "Section 5 reliability claim + Section 8 future work, quantified",
    );
    let runs = campaign_runs();
    let rates = [0.002f64, 0.01];
    println!("{runs} runs per cell (DECACHE_CAMPAIGN_RUNS), {PES} PEs,");
    println!("conformance oracle attached to every run\n");

    // Part 1: the sweep. Every (protocol, rate) cell in parallel, on
    // the supervised pool: a panicking or over-budget cell becomes a
    // reported verdict, not a torn-down campaign, and completed cells
    // checkpoint to --checkpoint-dir for crash-safe resume.
    let campaign = Campaign::from_args();
    let supervisor = par::Supervisor::default();
    let cases: Vec<(ProtocolKind, f64)> = rates
        .iter()
        .flat_map(|&rate| PROTOCOLS.iter().map(move |&kind| (kind, rate)))
        .collect();
    let outcomes = par::supervise(&cases, &supervisor, |&(kind, rate), budget| {
        let key = format!("fault_campaign_{kind}_rate_{rate}");
        if let Some(stored) = campaign.load(&key) {
            match decode_cell(&stored) {
                Ok(result) => return Some(result),
                Err(e) => eprintln!("checkpoint for {key} ignored: {e}"),
            }
        }
        let (cell, merged) = sweep_cell(kind, rate, runs, budget)?;
        campaign.store(&key, &encode_cell(&cell, &merged));
        Some((cell, merged))
    });
    let mut quarantined = Vec::new();
    let mut cells = Vec::new();
    for (&(kind, rate), outcome) in cases.iter().zip(outcomes) {
        match outcome {
            par::CaseOutcome::Ok(result) | par::CaseOutcome::Retried { result, .. } => {
                cells.push(result);
            }
            par::CaseOutcome::Panicked { message } => {
                quarantined.push(format!("{kind} rate {rate}: panicked: {message}"));
            }
            par::CaseOutcome::TimedOut { budget } => {
                quarantined.push(format!("{kind} rate {rate}: exceeded {budget} cycles"));
            }
        }
    }
    assert!(
        quarantined.is_empty(),
        "quarantined cells:\n  {}",
        quarantined.join("\n  ")
    );

    let mut table = TextTable::new(vec![
        "protocol", "rate", "injected", "detected", "owner", "majority", "failed", "success",
        "heals", "lost wr", "latency",
    ]);
    for (&(kind, rate), (cell, merged)) in cases.iter().zip(&cells) {
        table.row(vec![
            kind.to_string(),
            format!("{rate}"),
            cell.injected.to_string(),
            cell.detected.to_string(),
            cell.owner.to_string(),
            cell.majority.to_string(),
            cell.failed.to_string(),
            cell.success_rate()
                .map_or_else(|| "-".into(), |r| format!("{:.0}%", r * 100.0)),
            cell.heals.to_string(),
            cell.lost_writes.to_string(),
            format!("{:.1}", cell.mean_latency()),
        ]);
        record_snapshot(&format!("fault_campaign/{kind}/rate_{rate}"), merged);
    }
    println!("{table}");

    // Part 2: the headline claim, asserted. Small smoke runs may not
    // accumulate enough recovery attempts for the comparison to be
    // meaningful; the threshold keeps CI smoke honest without flaking.
    let cell_of = |kind: ProtocolKind, rate: f64| {
        cases
            .iter()
            .position(|&(k, r)| k == kind && r == rate)
            .map(|i| cells[i].0)
            .expect("cell present")
    };
    for &rate in &rates {
        let rb = cell_of(ProtocolKind::Rb, rate);
        let rwb = cell_of(ProtocolKind::Rwb, rate);
        let (Some(rb_rate), Some(rwb_rate)) = (rb.success_rate(), rwb.success_rate()) else {
            println!("rate {rate}: too few detections to compare (smoke run)");
            continue;
        };
        println!(
            "rate {rate}: RWB recovers {:.0}% vs RB {:.0}% ({} vs {} attempts)",
            rwb_rate * 100.0,
            rb_rate * 100.0,
            rwb.attempts(),
            rb.attempts(),
        );
        if rb.attempts() >= 10 && rwb.attempts() >= 10 {
            assert!(
                rwb_rate > rb_rate,
                "RWB must out-recover RB at rate {rate}: {rwb_rate:.3} vs {rb_rate:.3}"
            );
        }
    }
    println!();

    // Part 3: fail-stop degradation, per protocol and policy.
    let mut table = TextTable::new(vec![
        "protocol",
        "drained (Drain)",
        "lost (Drain)",
        "survivor sees",
        "lost (Forfeit)",
        "survivor sees",
    ]);
    for &kind in &PROTOCOLS {
        let (drain, drain_seen, drain_missing) = fail_stop_run(kind, FailStopPolicy::Drain);
        let (forfeit, forfeit_seen, forfeit_missing) = fail_stop_run(kind, FailStopPolicy::Forfeit);
        let ds = drain.fault_stats();
        let fs = forfeit.fault_stats();
        // Draining flushes every good-parity owned line, so nothing is
        // lost; forfeiting drains nothing, and loses exactly the last
        // written values memory does not hold after the kill.
        assert_eq!(ds.lost_writes, 0, "{kind}: drain lost a write");
        assert_eq!(drain_missing, 0, "{kind}: drain left memory incomplete");
        assert_eq!(fs.drained_lines, 0, "{kind}: forfeit drained");
        assert_eq!(drain_seen, Word::new(9), "{kind}: drain lost the 9");
        assert_eq!(
            fs.lost_writes, forfeit_missing,
            "{kind}: lost-write accounting disagrees with memory's view \
             (survivor saw {forfeit_seen})"
        );
        table.row(vec![
            kind.to_string(),
            ds.drained_lines.to_string(),
            ds.lost_writes.to_string(),
            drain_seen.to_string(),
            fs.lost_writes.to_string(),
            forfeit_seen.to_string(),
        ]);
        record_snapshot(
            &format!("fault_campaign/fail_stop/{kind}/drain"),
            &MetricsSnapshot::from_machine(&drain),
        );
        record_snapshot(
            &format!("fault_campaign/fail_stop/{kind}/forfeit"),
            &MetricsSnapshot::from_machine(&forfeit),
        );
    }
    println!("{table}");
    println!("every run completed with n-1 PEs (structured outcome, no panic);");
    println!("Forfeit loses exactly the owned values memory never saw.");

    // With DECACHE_TRACE=<path>, capture one representative faulted
    // machine (RWB, the higher rate) as a Perfetto trace — injection,
    // detection, and recovery events land on the tracks they hit.
    if decache_telemetry::env_trace_path().is_some() {
        let mut rng = Rng::from_seed(0x7ACE);
        let mut builder = MachineBuilder::new(ProtocolKind::Rwb);
        builder.memory_words(64).cache_lines(16).telemetry();
        for pe in 0..PES {
            builder.processor(campaign_script(&mut rng, pe).build());
        }
        builder.fault_plan(
            FaultPlan::new(rng.next_u64())
                .memory_flip_rate(0.01)
                .cache_flip_rate(0.005)
                .bus_loss_rate(0.0025)
                .region(AddrRange::with_len(Addr::new(0), HOT_WORDS)),
        );
        let trace = decache_bench::env_trace(&mut builder);
        let mut machine = builder.build();
        let outcome = machine.run_outcome(10_000_000);
        assert!(outcome.is_complete(), "trace run: {outcome}");
        decache_bench::save_env_trace(&trace, &machine);
    }
}
