//! Telemetry self-check: a pinned Test-and-Set contention scenario
//! under every protocol with the unified telemetry layer enabled.
//!
//! For each protocol it prints the four cycle-attribution histograms,
//! audits the cross-crate stat-conservation identities, verifies the
//! snapshot's JSON round-trip, and emits one [`MetricsSnapshot`] record
//! (`DECACHE_BENCH_JSON`). With `DECACHE_TRACE=<path>` it additionally
//! saves the RWB run's Perfetto trace. CI smoke-runs this binary, so a
//! regression in any telemetry layer fails the build.

use decache_analysis::TextTable;
use decache_bench::{banner, env_trace, record_snapshot, save_env_trace};
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_machine::Script;
use decache_mem::{Addr, Word};
use decache_telemetry::{HistogramSnapshot, MetricsSnapshot};

const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// 4 PEs contending for one lock while reading and writing a small
/// shared set — every histogram population is non-trivial.
fn contention_builder(kind: ProtocolKind) -> MachineBuilder {
    let lock = Addr::new(0);
    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(64).cache_lines(16).telemetry();
    for pe in 0..4usize {
        let mut script = Script::new();
        for round in 0..8u64 {
            script = script
                .test_and_set(lock, Word::ONE)
                .read(Addr::new(1 + (pe as u64 + round) % 8))
                .write(Addr::new(1 + round % 8), Word::new(pe as u64 * 100 + round))
                .write(lock, Word::ZERO);
        }
        builder.processor(script.build());
    }
    builder
}

fn hist_cell(h: &HistogramSnapshot) -> String {
    if h.count == 0 {
        "-".into()
    } else {
        format!("n={} mean={:.1} max={}", h.count, h.mean(), h.max)
    }
}

fn main() {
    banner(
        "Telemetry self-check: histograms, conservation, snapshot schema",
        "unified telemetry layer (metrics registry + Perfetto export)",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "cycles",
        "bus-acquire wait",
        "memory service",
        "read fill",
        "TS spin",
    ]);
    for kind in PROTOCOLS {
        let mut builder = contention_builder(kind);
        let trace = if kind == ProtocolKind::Rwb {
            env_trace(&mut builder)
        } else {
            None
        };
        let mut machine = builder.build();
        machine.run_to_completion(1_000_000);
        assert!(machine.is_done(), "{kind}: machine failed to terminate");
        save_env_trace(&trace, &machine);

        let snapshot = MetricsSnapshot::from_machine(&machine);
        snapshot.check_conservation().unwrap_or_else(|violations| {
            panic!(
                "{kind}: conservation violated:\n  {}",
                violations.join("\n  ")
            )
        });
        let text = snapshot.to_json_string();
        let back = MetricsSnapshot::parse(&text)
            .unwrap_or_else(|e| panic!("{kind}: snapshot does not re-parse: {e}"));
        assert_eq!(back, snapshot, "{kind}: snapshot round-trip is lossy");
        record_snapshot(&format!("telemetry_check/{kind}"), &snapshot);

        let h = snapshot.histograms.as_ref().expect("telemetry enabled");
        table.row(vec![
            kind.to_string(),
            snapshot.cycles.to_string(),
            hist_cell(&h.bus_acquire_wait),
            hist_cell(&h.memory_service),
            hist_cell(&h.read_fill),
            hist_cell(&h.ts_spin),
        ]);
    }
    println!("{table}");
    println!("all protocols: conservation identities hold, snapshots round-trip.");
}
