//! The queueing cross-check gate: simulated bus utilization and mean
//! bus-acquire wait vs the exact finite-source queueing model, per
//! service discipline — rerunning the Figure 7-1 interleaved-bus
//! experiment (E10) at up to 128 PEs with an analytic verdict attached.
//!
//! Each PE runs a geometric-think / fixed-service loop the model can
//! describe exactly: think (issue a read with probability `p` per idle
//! cycle), then alternate between two private addresses that map to the
//! same direct-mapped cache line, so *every* read misses and posts a
//! bus request, and to the same interleaved bus, so each bus serves a
//! fixed population of `n / m` statistically identical sources. Reads
//! of private read-only data never write back, never find a supplier,
//! and never snoop-satisfy, leaving pure queueing behaviour for the
//! model to predict.
//!
//! The gate sweeps `n x m x discipline`, predicts utilization and mean
//! acquire wait from the *configured* think probability, and fails if
//! the simulation diverges. Below saturation it additionally checks
//! that calibrating the think probability back from the *measured*
//! request rate ([`QueueingModel::calibrate_think_p`]) recovers the
//! configured value — the measured-rate-driven path a real workload
//! would use.
//!
//! Set `DECACHE_QUEUEING_SMOKE=1` for the reduced CI grid.

use decache_analysis::QueueingModel;
use decache_bench::banner;
use decache_bus::ServiceDiscipline;
use decache_core::ProtocolKind;
use decache_machine::{MachineBuilder, MemOp, OpResult, Poll, Processor};
use decache_mem::Addr;
use decache_rng::Rng;
use decache_telemetry::MetricsSnapshot;

/// Geometric think probability per idle cycle.
const THINK_P: f64 = 0.05;

/// Bus cycles per memory service.
const SERVICE: u64 = 3;

/// Direct-mapped cache lines; the two per-PE addresses are `SPAN`
/// apart, so they collide on one line and every read misses.
const SPAN: u64 = 512;

/// Absolute tolerance on per-bus utilization.
const UTIL_TOL: f64 = 0.025;

/// Wait tolerance: relative, with an absolute floor for light loads.
const WAIT_REL: f64 = 0.10;
const WAIT_FLOOR: f64 = 0.20;

/// A processor the queueing model describes exactly: geometric think,
/// then a read of one of two conflicting private addresses.
struct ThinkRead {
    rng: Rng,
    base: Addr,
    flip: bool,
}

impl ThinkRead {
    fn new(pe: usize, seed: u64) -> Self {
        ThinkRead {
            rng: Rng::from_seed(seed ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            base: Addr::new(pe as u64),
            flip: false,
        }
    }
}

impl Processor for ThinkRead {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        if !self.rng.gen_bool(THINK_P) {
            return Poll::Wait;
        }
        let addr = if self.flip {
            Addr::new(self.base.index() + SPAN)
        } else {
            self.base
        };
        self.flip = !self.flip;
        Poll::Op(MemOp::read(addr))
    }
}

struct Cell {
    pes: usize,
    buses: usize,
    discipline: ServiceDiscipline,
    sim_util: f64,
    sim_wait: f64,
    model_util: f64,
    model_wait: f64,
    calibrated: Option<f64>,
}

fn run_cell(
    pes: usize,
    buses: usize,
    discipline: ServiceDiscipline,
    warmup: u64,
    window: u64,
) -> Cell {
    let mut machine = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(2 * SPAN)
        .cache_lines(SPAN as usize)
        .buses(buses)
        .transaction_cycles(SERVICE)
        .discipline(discipline)
        .telemetry()
        .processors(pes, |pe| Box::new(ThinkRead::new(pe, 0xDECAC4E)))
        .build();
    machine.run(warmup);
    machine.reset_stats();
    let start = machine.cycles();
    machine.run(window);
    assert_eq!(
        machine.cycles() - start,
        window,
        "think processors never finish, so the window is exact"
    );

    let snap = MetricsSnapshot::from_machine(&machine);
    let sim_util = snap
        .bus_per_bus
        .iter()
        .map(decache_telemetry::BusCounts::utilization)
        .sum::<f64>()
        / buses as f64;
    let hist = &snap
        .histograms
        .as_ref()
        .expect("telemetry enabled")
        .bus_acquire_wait;
    let sim_wait = if hist.count == 0 {
        0.0
    } else {
        hist.sum as f64 / hist.count as f64
    };

    let sources = (pes / buses) as u32;
    let model = QueueingModel::new(sources, THINK_P, SERVICE as u32, discipline).predict();

    // The measured-rate-driven path: identifiable only below
    // saturation (above it, every sufficient think rate produces the
    // same throughput).
    let offered = f64::from(sources)
        * THINK_P
        * QueueingModel::new(sources, THINK_P, SERVICE as u32, discipline).cycles_per_transaction();
    let calibrated = (offered < 0.8).then(|| {
        let per_source = snap.bus_total().total_transactions() as f64 / window as f64 / pes as f64;
        QueueingModel::calibrate_think_p(sources, SERVICE as u32, discipline, per_source)
            .expect("sub-saturation rate is sustainable")
    });

    Cell {
        pes,
        buses,
        discipline,
        sim_util,
        sim_wait,
        model_util: model.utilization,
        model_wait: model.mean_wait,
        calibrated,
    }
}

fn main() {
    banner(
        "queueing check",
        "simulated bus wait/utilization vs the exact finite-source model",
    );
    let smoke = std::env::var("DECACHE_QUEUEING_SMOKE").is_ok_and(|v| v == "1");
    let (sizes, bus_counts, warmup, window): (&[usize], &[usize], u64, u64) = if smoke {
        (&[8, 16], &[1, 2], 2_000, 8_000)
    } else {
        (&[8, 16, 32, 64, 128], &[1, 2, 4, 8], 3_000, 20_000)
    };

    let mut failures = Vec::new();
    let mut cells = 0usize;
    println!(
        "{:<5} {:>4} {:>3} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "disc", "n", "m", "util(sim)", "util(mod)", "W(sim)", "W(mod)", "p-hat"
    );
    for &discipline in &ServiceDiscipline::ALL {
        for &pes in sizes {
            for &buses in bus_counts {
                if buses > pes {
                    continue;
                }
                let c = run_cell(pes, buses, discipline, warmup, window);
                cells += 1;
                println!(
                    "{:<5} {:>4} {:>3} {:>10.4} {:>10.4} {:>9.3} {:>9.3} {:>9}",
                    c.discipline.name(),
                    c.pes,
                    c.buses,
                    c.sim_util,
                    c.model_util,
                    c.sim_wait,
                    c.model_wait,
                    c.calibrated.map_or("-".to_owned(), |p| format!("{p:.4}")),
                );
                let tag = format!("{} n={} m={}", c.discipline.name(), c.pes, c.buses);
                if (c.sim_util - c.model_util).abs() > UTIL_TOL {
                    failures.push(format!(
                        "{tag}: utilization {:.4} vs model {:.4} (tol {UTIL_TOL})",
                        c.sim_util, c.model_util
                    ));
                }
                let wait_tol = WAIT_FLOOR.max(c.model_wait * WAIT_REL);
                if (c.sim_wait - c.model_wait).abs() > wait_tol {
                    failures.push(format!(
                        "{tag}: mean wait {:.3} vs model {:.3} (tol {wait_tol:.3})",
                        c.sim_wait, c.model_wait
                    ));
                }
                if let Some(p_hat) = c.calibrated {
                    if (p_hat - THINK_P).abs() > THINK_P * 0.2 {
                        failures.push(format!(
                            "{tag}: calibrated think p {p_hat:.4} vs configured {THINK_P}"
                        ));
                    }
                }
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("\nqueueing check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\nqueueing check passed ({cells} cells)");
}
