//! E4 — executes the **Section 4 consistency proof**: exhaustive
//! product-machine exploration (lemma: only legal configurations are
//! reachable; theorem: every read hit returns the latest value) plus a
//! randomized refinement check of the real simulator.

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_verify::{ProductChecker, SerialOracle};

fn main() {
    banner(
        "Executable consistency proof",
        "Section 4 lemma & theorem (product machine + runtime oracle)",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "caches",
        "product states",
        "transitions",
        "configurations",
        "verdict",
    ]);
    let kinds = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(1),
        ProtocolKind::RwbThreshold(3),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
    ];
    for kind in kinds {
        for n in [2usize, 3, 4] {
            let report = ProductChecker::new(kind, n).explore();
            table.row(vec![
                kind.to_string(),
                n.to_string(),
                report.states.to_string(),
                report.transitions.to_string(),
                report
                    .configurations
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("+"),
                if report.holds() {
                    "HOLDS".to_owned()
                } else {
                    "VIOLATED".to_owned()
                },
            ]);
            assert!(report.holds(), "{kind} n={n}: {:?}", report.violations);
        }
    }
    println!("{table}");

    println!("runtime oracle (serialized random ops against a reference memory):");
    for kind in kinds {
        let report = SerialOracle::new(kind, 4, 2024)
            .addresses(48)
            .run(2_000)
            .unwrap();
        println!(
            "  {kind:<16} {} steps, {} reads checked, {} TS checked: OK",
            report.steps, report.reads_checked, report.ts_checked
        );
    }
}
