//! E4 — executes the **Section 4 consistency proof**: exhaustive
//! product-machine exploration (lemma: only legal configurations are
//! reachable; theorem: every read hit returns the latest value) plus a
//! randomized refinement check of the real simulator.
//!
//! On a violation the product checker's reconstructed witness trace —
//! the shortest event sequence from `NP … NP | mem*` to the bad
//! configuration — is printed instead of a bare boolean.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_verify::{ProductChecker, ProductReport, SerialOracle};

fn main() {
    banner(
        "Executable consistency proof",
        "Section 4 lemma & theorem (product machine + runtime oracle)",
    );

    let kinds = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(1),
        ProtocolKind::RwbThreshold(3),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
    ];
    let cases: Vec<(ProtocolKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| [2usize, 3, 4].map(|n| (kind, n)))
        .collect();
    let reports: Vec<ProductReport> =
        par::run_cases(&cases, |&(kind, n)| ProductChecker::new(kind, n).explore());

    let mut table = TextTable::new(vec![
        "protocol",
        "caches",
        "product states",
        "transitions",
        "configurations",
        "verdict",
    ]);
    let mut all_hold = true;
    for (&(kind, n), report) in cases.iter().zip(&reports) {
        table.row(vec![
            kind.to_string(),
            n.to_string(),
            report.states.to_string(),
            report.transitions.to_string(),
            report
                .configurations
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("+"),
            if report.holds() {
                "HOLDS".to_owned()
            } else {
                "VIOLATED".to_owned()
            },
        ]);
        if !report.holds() {
            all_hold = false;
            println!("counterexample for {kind} (n={n}):");
            match &report.witness {
                Some(witness) => println!("{witness}"),
                None => println!("  (no witness reconstructed) {:?}", report.violations),
            }
        }
    }
    println!("{table}");
    assert!(all_hold, "product machine found violations (see witnesses)");

    println!("runtime oracle (serialized random ops against a reference memory):");
    for kind in kinds {
        let report = SerialOracle::new(kind, 4, 2024)
            .addresses(48)
            .run(2_000)
            .unwrap();
        println!(
            "  {kind:<16} {} steps, {} reads checked, {} TS checked: OK",
            report.steps, report.reads_checked, report.ts_checked
        );
    }
}
