//! E18 — runs **Section 7's worked example at full scale**: a 128-PE
//! machine under the paper's reference mix, on one shared bus and on
//! 16 LSB-interleaved buses.
//!
//! The paper sizes the shared-bus bandwidth demand as
//! `SBB = m · x · (1/h)` — 128 PEs at 1 MACS and a 10% miss ratio
//! demand 12.8 MACS, so one bus is hopelessly saturated and the
//! multiple-bus organization is required. Historically this bin was
//! infeasible: the scan-every-PE loop made each cycle cost O(m) even
//! with every PE stalled on the saturated bus. The wake-schedule
//! engine runs the full scenario in seconds.

use decache_analysis::TextTable;
use decache_bench::{banner, par, record_metrics};
use decache_core::ProtocolKind;
use decache_machine::{Machine, MachineBuilder};
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

const PES: usize = 128;
const OPS_PER_PE: u64 = 500;

struct Row {
    kind: ProtocolKind,
    buses: usize,
    cycles: u64,
    miss_ratio: f64,
    utilization: f64,
    busiest_share: f64,
}

fn run_case(kind: ProtocolKind, buses: usize) -> Row {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: OPS_PER_PE,
        ..MixConfig::default()
    };
    // Memory must cover every PE's private region above the shared
    // block (see MixWorkload::new).
    let memory_words = (1088 + PES as u64 * 256).next_power_of_two();
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(memory_words)
        .cache_lines(256)
        .buses(buses)
        .processors(PES, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    let mut machine = builder.build();
    let cycles = machine.run_to_completion(100_000_000);
    Row {
        kind,
        buses,
        cycles,
        miss_ratio: 1.0 - machine.total_cache_stats().hit_ratio(),
        utilization: mean_utilization(&machine),
        busiest_share: busiest_share(&machine),
    }
}

fn mean_utilization(machine: &Machine) -> f64 {
    let buses = machine.bus_count();
    (0..buses)
        .map(|b| machine.traffic_per_bus().bus(b).utilization())
        .sum::<f64>()
        / buses as f64
}

fn busiest_share(machine: &Machine) -> f64 {
    let total: u64 = (0..machine.bus_count())
        .map(|b| machine.traffic_per_bus().bus(b).total_transactions())
        .sum();
    let busiest = (0..machine.bus_count())
        .map(|b| machine.traffic_per_bus().bus(b).total_transactions())
        .max()
        .unwrap_or(0);
    busiest as f64 / total.max(1) as f64
}

fn main() {
    banner(
        "Section 7 worked example, simulated",
        "128 PEs: SBB = m*x*(1/h) versus one and sixteen buses",
    );

    let cases: Vec<(ProtocolKind, usize)> = [ProtocolKind::Rb, ProtocolKind::Rwb]
        .iter()
        .flat_map(|&kind| [1usize, 16].iter().map(move |&buses| (kind, buses)))
        .collect();
    let rows = par::run_cases(&cases, |&(kind, buses)| run_case(kind, buses));

    let mut table = TextTable::new(vec![
        "protocol",
        "buses",
        "cycles",
        "miss ratio",
        "SBB demand",
        "mean util",
        "busiest bus",
    ]);
    for r in &rows {
        // The paper's bandwidth demand in bus-equivalents: m * (1/h)
        // (x = 1 access per PE-cycle).
        let demand = PES as f64 * r.miss_ratio;
        table.row(vec![
            r.kind.to_string(),
            r.buses.to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", r.miss_ratio * 100.0),
            format!("{demand:.1}"),
            format!("{:.1}%", r.utilization * 100.0),
            format!("{:.1}%", r.busiest_share * 100.0),
        ]);
        record_metrics(
            &format!("section7/{}/{}bus", r.kind, r.buses),
            &[
                ("cycles", r.cycles as f64),
                ("miss_ratio", r.miss_ratio),
                ("sbb_demand", demand),
                ("mean_utilization", r.utilization),
                ("busiest_share", r.busiest_share),
            ],
        );
    }
    println!("{table}");

    for pair in rows.chunks(2) {
        let (single, multi) = (&pair[0], &pair[1]);
        let demand = PES as f64 * single.miss_ratio;
        assert!(
            demand > 1.0,
            "{}: a 128-PE machine must demand more than one bus (got {demand:.2})",
            single.kind
        );
        assert!(
            single.utilization > 0.95,
            "{}: the single bus should saturate (utilization {:.3})",
            single.kind,
            single.utilization
        );
        assert!(
            multi.cycles < single.cycles / 2,
            "{}: 16 buses should relieve the bottleneck ({} -> {} cycles)",
            single.kind,
            single.cycles,
            multi.cycles
        );
        assert!(
            multi.busiest_share < 0.25,
            "{}: interleaving should spread traffic (busiest {:.1}%)",
            single.kind,
            multi.busiest_share * 100.0
        );
        println!(
            "{}: demand {demand:.1} bus-equivalents; 1 bus -> {} cycles at {:.1}% util, \
             16 buses -> {} cycles (busiest {:.1}%)",
            single.kind,
            single.cycles,
            single.utilization * 100.0,
            multi.cycles,
            multi.busiest_share * 100.0
        );
    }
}
