//! E18/E19 — runs **Section 7's worked example at full scale**: the
//! paper's 128-PE machine under the reference mix, on one shared bus
//! and on 16 LSB-interleaved buses — and then the same study at
//! 1024 PEs, eight times past the paper's extrapolation ceiling.
//!
//! The paper sizes the shared-bus bandwidth demand as
//! `SBB = m · x · (1/h)` — 128 PEs at 1 MACS and a 10% miss ratio
//! demand 12.8 MACS, so one bus is hopelessly saturated and the
//! multiple-bus organization is required. Historically this bin was
//! infeasible: the scan-every-PE loop made each cycle cost O(m) even
//! with every PE stalled on the saturated bus. The wake-schedule
//! engine runs the 128-PE scenario in milliseconds, and the batched
//! broadcast path plus packed tag-store rows keep the 1024-PE runs in
//! the seconds range.

//! Long sweeps support crash-safe resume: `--checkpoint-dir <dir>`
//! records each completed case atomically, and `--resume` replays
//! recorded cases instead of recomputing them, printing exactly the
//! bytes an uninterrupted run prints (see [`decache_bench::Campaign`]).

use decache_analysis::TextTable;
use decache_bench::{banner, par, record_metrics, Campaign};
use decache_core::ProtocolKind;
use decache_machine::{Machine, MachineBuilder};
use decache_mem::{Addr, AddrRange};
use decache_telemetry::Json;
use decache_workloads::{MixConfig, MixWorkload};

const OPS_PER_PE: u64 = 500;

struct Row {
    kind: ProtocolKind,
    pes: usize,
    buses: usize,
    cycles: u64,
    miss_ratio: f64,
    utilization: f64,
    busiest_share: f64,
}

fn run_case(kind: ProtocolKind, pes: usize, buses: usize) -> Row {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: OPS_PER_PE,
        ..MixConfig::default()
    };
    // Memory must cover every PE's private region above the shared
    // block (see MixWorkload::new).
    let memory_words = (1088 + pes as u64 * 256).next_power_of_two();
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(memory_words)
        .cache_lines(256)
        .buses(buses)
        .processors(pes, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        });
    let mut machine = builder.build();
    let cycles = machine.run_to_completion(1_000_000_000);
    Row {
        kind,
        pes,
        buses,
        cycles,
        miss_ratio: 1.0 - machine.total_cache_stats().hit_ratio(),
        utilization: mean_utilization(&machine),
        busiest_share: busiest_share(&machine),
    }
}

/// The stored form of a completed case: raw result scalars only (the
/// case identity lives in the file name and is re-derived from the
/// case list on resume).
fn encode_row(r: &Row) -> Json {
    Json::object(vec![
        ("cycles", Json::U64(r.cycles)),
        ("miss_ratio", Json::F64(r.miss_ratio)),
        ("utilization", Json::F64(r.utilization)),
        ("busiest_share", Json::F64(r.busiest_share)),
    ])
}

fn decode_row(kind: ProtocolKind, pes: usize, buses: usize, json: &Json) -> Result<Row, String> {
    let float = |key: &str| {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing float '{key}'"))
    };
    Ok(Row {
        kind,
        pes,
        buses,
        cycles: json
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing 'cycles'".to_string())?,
        miss_ratio: float("miss_ratio")?,
        utilization: float("utilization")?,
        busiest_share: float("busiest_share")?,
    })
}

fn mean_utilization(machine: &Machine) -> f64 {
    let buses = machine.bus_count();
    (0..buses)
        .map(|b| machine.traffic_per_bus().bus(b).utilization())
        .sum::<f64>()
        / buses as f64
}

fn busiest_share(machine: &Machine) -> f64 {
    let total: u64 = (0..machine.bus_count())
        .map(|b| machine.traffic_per_bus().bus(b).total_transactions())
        .sum();
    let busiest = (0..machine.bus_count())
        .map(|b| machine.traffic_per_bus().bus(b).total_transactions())
        .max()
        .unwrap_or(0);
    busiest as f64 / total.max(1) as f64
}

fn main() {
    banner(
        "Section 7 worked example, simulated",
        "SBB = m*x*(1/h) versus one and sixteen buses, at 128 and 1024 PEs",
    );

    let cases: Vec<(ProtocolKind, usize, usize)> = [ProtocolKind::Rb, ProtocolKind::Rwb]
        .iter()
        .flat_map(|&kind| {
            [(128usize, 1usize), (128, 16), (1024, 1), (1024, 16)]
                .iter()
                .map(move |&(pes, buses)| (kind, pes, buses))
        })
        .collect();
    let campaign = Campaign::from_args();
    let rows = par::run_cases(&cases, |&(kind, pes, buses)| {
        campaign.case(
            &format!("section7_{kind}_{pes}pe_{buses}bus"),
            |json| decode_row(kind, pes, buses, json),
            || run_case(kind, pes, buses),
            encode_row,
        )
    });

    let mut table = TextTable::new(vec![
        "protocol",
        "PEs",
        "buses",
        "cycles",
        "miss ratio",
        "SBB demand",
        "mean util",
        "busiest bus",
    ]);
    for r in &rows {
        // The paper's bandwidth demand in bus-equivalents: m * (1/h)
        // (x = 1 access per PE-cycle).
        let demand = r.pes as f64 * r.miss_ratio;
        table.row(vec![
            r.kind.to_string(),
            r.pes.to_string(),
            r.buses.to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", r.miss_ratio * 100.0),
            format!("{demand:.1}"),
            format!("{:.1}%", r.utilization * 100.0),
            format!("{:.1}%", r.busiest_share * 100.0),
        ]);
        record_metrics(
            &format!("section7/{}/{}pe/{}bus", r.kind, r.pes, r.buses),
            &[
                ("cycles", r.cycles as f64),
                ("miss_ratio", r.miss_ratio),
                ("sbb_demand", demand),
                ("mean_utilization", r.utilization),
                ("busiest_share", r.busiest_share),
            ],
        );
    }
    println!("{table}");

    for pair in rows.chunks(2) {
        let (single, multi) = (&pair[0], &pair[1]);
        let demand = single.pes as f64 * single.miss_ratio;
        assert!(
            demand > 1.0,
            "{} at {} PEs: the machine must demand more than one bus (got {demand:.2})",
            single.kind,
            single.pes
        );
        assert!(
            single.utilization > 0.95,
            "{} at {} PEs: the single bus should saturate (utilization {:.3})",
            single.kind,
            single.pes,
            single.utilization
        );
        assert!(
            multi.cycles < single.cycles / 2,
            "{} at {} PEs: 16 buses should relieve the bottleneck ({} -> {} cycles)",
            single.kind,
            single.pes,
            single.cycles,
            multi.cycles
        );
        assert!(
            multi.busiest_share < 0.25,
            "{} at {} PEs: interleaving should spread traffic (busiest {:.1}%)",
            single.kind,
            single.pes,
            multi.busiest_share * 100.0
        );
        println!(
            "{} at {} PEs: demand {demand:.1} bus-equivalents; 1 bus -> {} cycles at {:.1}% \
             util, 16 buses -> {} cycles (busiest {:.1}%)",
            single.kind,
            single.pes,
            single.cycles,
            single.utilization * 100.0,
            multi.cycles,
            multi.busiest_share * 100.0
        );
    }
}
