//! Extension experiment — barrier synchronization phases: the cost of
//! the "parallel actions alternated by phases of synchronization"
//! pattern (Section 6's opening) under each coherence scheme, using the
//! TTS-lock + generation-spin barrier from `decache-sync`.

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::Addr;
use decache_sync::BarrierWorker;

fn run(kind: ProtocolKind, workers: u64, episodes: u64) -> (u64, u64, f64) {
    let base = Addr::new(0);
    let mut machine = MachineBuilder::new(kind)
        .memory_words(256)
        .cache_lines(64)
        .processors(workers as usize, |_| {
            Box::new(BarrierWorker::new(base, workers, episodes))
        })
        .build();
    let cycles = machine.run_to_completion(100_000_000);
    (
        cycles,
        machine.traffic().total_transactions(),
        machine.traffic().utilization(),
    )
}

fn main() {
    banner(
        "Barrier synchronization phases",
        "Section 6 pattern, built from TTS + in-cache generation spin",
    );

    let episodes = 4;
    let mut table = TextTable::new(vec![
        "protocol",
        "workers",
        "episodes",
        "cycles",
        "cycles/episode",
        "bus tx",
        "bus util",
    ]);
    for &workers in &[2u64, 4, 8, 16] {
        for kind in ProtocolKind::ALL {
            let (cycles, tx, util) = run(kind, workers, episodes);
            table.row(vec![
                kind.to_string(),
                workers.to_string(),
                episodes.to_string(),
                cycles.to_string(),
                format!("{:.0}", cycles as f64 / episodes as f64),
                tx.to_string(),
                format!("{:.1}%", util * 100.0),
            ]);
        }
    }
    println!("{table}");
    println!("the generation spin is the hot spot: snooping protocols keep it in");
    println!("the caches, so per-episode cost grows gently with worker count;");
    println!("write-through pays bus cycles for the counter updates and re-reads.");
}
