//! E8 — the **Section 6 hot-spot claim, quantified**: bus traffic under
//! lock contention for TS vs TTS, RB vs RWB, sweeping the number of
//! contending processors.

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_sync::{ContentionExperiment, Primitive};

fn main() {
    banner(
        "Hot-spot bus traffic under lock contention",
        "Section 6 (TS vs TTS on RB and RWB)",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "primitive",
        "PEs",
        "acquisitions",
        "cycles",
        "bus tx",
        "failed TS",
        "tx/acquisition",
        "sync waste",
    ]);
    for &pes in &[2usize, 4, 8, 16, 32] {
        for protocol in [ProtocolKind::Rb, ProtocolKind::Rwb] {
            for primitive in [Primitive::TestAndSet, Primitive::TestAndTestAndSet] {
                let r = ContentionExperiment::new(protocol, primitive, pes)
                    .rounds(4)
                    .critical_refs(16)
                    .run();
                table.row(vec![
                    protocol.to_string(),
                    primitive.to_string(),
                    pes.to_string(),
                    r.acquisitions.to_string(),
                    r.cycles.to_string(),
                    r.bus_transactions.to_string(),
                    r.failed_ts.to_string(),
                    format!("{:.1}", r.transactions_per_acquisition()),
                    format!("{:.0}%", r.waste_fraction() * 100.0),
                ]);
            }
        }
    }
    println!("{table}");
    println!("expected shape: TS traffic grows with contention; TTS stays near-flat");
    println!("(\"unsuccessful attempts ... are spins in the cache and do not generate bus");
    println!("traffic\", Section 6.1); RWB trims the remaining invalidation misses further.");
}
