//! E8 — the **Section 6 hot-spot claim, quantified**: bus traffic under
//! lock contention for TS vs TTS, RB vs RWB, sweeping the number of
//! contending processors. The PEs × protocol × primitive grid fans out
//! over `decache_bench::par`; rows print in grid order.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_sync::{ContentionExperiment, Primitive};

fn main() {
    banner(
        "Hot-spot bus traffic under lock contention",
        "Section 6 (TS vs TTS on RB and RWB)",
    );

    let cases: Vec<(usize, ProtocolKind, Primitive)> = [2usize, 4, 8, 16, 32]
        .iter()
        .flat_map(|&pes| {
            [ProtocolKind::Rb, ProtocolKind::Rwb]
                .iter()
                .flat_map(move |&protocol| {
                    [Primitive::TestAndSet, Primitive::TestAndTestAndSet]
                        .iter()
                        .map(move |&primitive| (pes, protocol, primitive))
                })
        })
        .collect();
    let results = par::run_cases(&cases, |&(pes, protocol, primitive)| {
        ContentionExperiment::new(protocol, primitive, pes)
            .rounds(4)
            .critical_refs(16)
            .run()
    });

    let mut table = TextTable::new(vec![
        "protocol",
        "primitive",
        "PEs",
        "acquisitions",
        "cycles",
        "bus tx",
        "failed TS",
        "tx/acquisition",
        "sync waste",
    ]);
    for (&(pes, protocol, primitive), r) in cases.iter().zip(&results) {
        table.row(vec![
            protocol.to_string(),
            primitive.to_string(),
            pes.to_string(),
            r.acquisitions.to_string(),
            r.cycles.to_string(),
            r.bus_transactions.to_string(),
            r.failed_ts.to_string(),
            format!("{:.1}", r.transactions_per_acquisition()),
            format!("{:.0}%", r.waste_fraction() * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected shape: TS traffic grows with contention; TTS stays near-flat");
    println!("(\"unsuccessful attempts ... are spins in the cache and do not generate bus");
    println!("traffic\", Section 6.1); RWB trims the remaining invalidation misses further.");
}
