//! A2 — ablation of the **bus arbitration policy** (Section 2 assumes a
//! bus arbitrator without fixing one): round-robin vs fixed-priority vs
//! seeded random, on a contended machine. Fixed priority starves
//! high-numbered processors; the cache schemes stay correct regardless.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_bus::ArbiterKind;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

fn run(arbiter: ArbiterKind, pes: usize) -> (u64, f64, Vec<u64>) {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: 1_500,
        ..MixConfig::default()
    };
    let mut machine = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(1 << 14)
        .cache_lines(256)
        .arbiter(arbiter)
        .processors(pes, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        })
        .build();
    let cycles = machine.run_to_completion(100_000_000);
    let per_pe_misses: Vec<u64> = (0..pes)
        .map(|pe| machine.cache_stats(pe).total_misses())
        .collect();
    (cycles, machine.traffic().utilization(), per_pe_misses)
}

fn main() {
    banner(
        "Bus arbitration policy",
        "Section 2 assumption 2 (pluggable arbiter)",
    );

    let arbiters = [
        ArbiterKind::RoundRobin,
        ArbiterKind::FixedPriority,
        ArbiterKind::Random(0xBEEF),
    ];
    let results = par::run_cases(&arbiters, |&arbiter| run(arbiter, 8));

    let mut table = TextTable::new(vec!["arbiter", "cycles", "bus util", "per-PE misses"]);
    for (arbiter, (cycles, util, misses)) in arbiters.iter().zip(&results) {
        table.row(vec![
            arbiter.to_string(),
            cycles.to_string(),
            format!("{:.1}%", util * 100.0),
            misses
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ]);
    }
    println!("{table}");
    println!("correctness is arbiter-independent (all runs complete with consistent");
    println!("memory); fixed priority finishes low-numbered PEs first and delays the");
    println!("rest, visible as a longer total runtime under saturation.");
}
