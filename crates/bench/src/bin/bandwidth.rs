//! E9 — the **Section 7 shared-bus bandwidth analysis**: the
//! `SBB >= m·x/h` bound with the paper's worked example, an
//! h-sensitivity table, and the simulated saturation sweep that the
//! bound predicts.

use decache_analysis::{SaturationSweep, SbbModel, TextChart, TextTable};
use decache_bench::banner;

fn main() {
    banner("Shared-bus bandwidth", "Section 7 (SBB >= m*x/h)");

    let example = SbbModel::paper_example();
    println!("paper's worked example: {example}");
    println!();

    let mut table = TextTable::new(vec!["miss ratio", "PEs at 12.8 MACS", "SBB for 128 PEs"]);
    for miss in [0.20, 0.10, 0.05, 0.02] {
        let model = SbbModel::new(128, 1.0, miss);
        table.row(vec![
            format!("{:.0}%", miss * 100.0),
            model.max_processors(12.8).to_string(),
            format!("{:.1} MACS", model.required_sbb_macs()),
        ]);
    }
    println!("{table}");

    println!("simulated saturation sweep (RB, single bus):");
    let points = SaturationSweep::new(vec![1, 2, 4, 8, 16, 32]).run();
    println!("{}", SaturationSweep::render(&points));

    let mut chart = TextChart::new("bus utilization vs processors", 40);
    for p in &points {
        chart.bar(format!("{:>2} PEs", p.pes), p.utilization);
    }
    println!("{chart}");
    println!("expected shape: utilization climbs toward 100% and per-PE throughput");
    println!("collapses once m x miss-ratio approaches 1 - the analytic knee.");
}
