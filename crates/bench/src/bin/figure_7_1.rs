//! E10 — regenerates **Figure 7-1: Multiple Shared Bus Cache Based
//! Parallel Processor**: the same workload on 1, 2, and 4
//! least-significant-bit-interleaved shared buses; per-bus traffic
//! should divide evenly ("the required bandwidth for each shared bus
//! will be about half", Section 7). The protocol × bus-count grid fans
//! out over `decache_bench::par`; tables print in grid order.

use decache_analysis::{MultibusExperiment, TextTable};
use decache_bench::{banner, par};
use decache_core::ProtocolKind;

fn main() {
    banner(
        "Multiple shared buses",
        "Figure 7-1 (LSB-interleaved banks)",
    );

    let protocols = [ProtocolKind::Rb, ProtocolKind::Rwb];
    let bus_counts = [1usize, 2, 4];
    let cases: Vec<(ProtocolKind, usize)> = protocols
        .iter()
        .flat_map(|&protocol| bus_counts.iter().map(move |&buses| (protocol, buses)))
        .collect();
    let rows = par::run_cases(&cases, |&(protocol, buses)| {
        MultibusExperiment::new(16)
            .protocol(protocol)
            .run_with_buses(buses)
    });

    for (protocol, group) in protocols.iter().zip(rows.chunks(bus_counts.len())) {
        println!("protocol: {protocol}");
        println!("{}", MultibusExperiment::render(group));

        let mut shares = TextTable::new(vec!["buses", "per-bus traffic shares"]);
        for r in group {
            shares.row(vec![
                r.buses.to_string(),
                r.shares
                    .iter()
                    .map(|s| format!("{:.1}%", s * 100.0))
                    .collect::<Vec<_>>()
                    .join("  "),
            ]);
        }
        println!("{shares}");
    }
}
