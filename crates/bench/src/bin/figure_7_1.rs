//! E10 — regenerates **Figure 7-1: Multiple Shared Bus Cache Based
//! Parallel Processor**: the same workload on 1, 2, and 4
//! least-significant-bit-interleaved shared buses; per-bus traffic
//! should divide evenly ("the required bandwidth for each shared bus
//! will be about half", Section 7).

use decache_analysis::{MultibusExperiment, TextTable};
use decache_bench::banner;
use decache_core::ProtocolKind;

fn main() {
    banner(
        "Multiple shared buses",
        "Figure 7-1 (LSB-interleaved banks)",
    );

    for protocol in [ProtocolKind::Rb, ProtocolKind::Rwb] {
        println!("protocol: {protocol}");
        let rows = MultibusExperiment::new(16).protocol(protocol).run();
        println!("{}", MultibusExperiment::render(&rows));

        let mut shares = TextTable::new(vec!["buses", "per-bus traffic shares"]);
        for r in &rows {
            shares.row(vec![
                r.buses.to_string(),
                r.shares
                    .iter()
                    .map(|s| format!("{:.1}%", s * 100.0))
                    .collect::<Vec<_>>()
                    .join("  "),
            ]);
        }
        println!("{shares}");
    }
}
