//! A3 — ablation of **read-data broadcasting**: RB as published versus
//! RB with the snoop capture disabled (events only, like Goodman's
//! scheme on the read path). Isolates the value of "the broadcasting
//! ability of the shared bus is used not only to signal an event but
//! also to distribute data" (abstract).

use decache_analysis::{ProtocolComparison, TextTable};
use decache_bench::{banner, par};
use decache_bus::BusOpKind;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, ProducerConsumer};

fn producer_consumer_reads(kind: ProtocolKind, consumers: usize) -> u64 {
    let pc = ProducerConsumer::new(AddrRange::with_len(Addr::new(8), 16), Addr::new(0), 6);
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(64)
        .cache_lines(32)
        .processor(pc.producer());
    for _ in 0..consumers {
        builder.processor(pc.consumer());
    }
    let mut machine = builder.build();
    machine.run_to_completion(10_000_000);
    machine.traffic().count(BusOpKind::Read)
}

fn main() {
    banner(
        "Read broadcast on/off",
        "RB vs RB-no-broadcast (events-only read path)",
    );

    println!("mixed workload (8 PEs):");
    let variants = [ProtocolKind::Rb, ProtocolKind::RbNoBroadcast];
    let rows = par::run_cases(&variants, |&kind| {
        ProtocolComparison::new(8)
            .config(MixConfig {
                ops_per_pe: 2_000,
                ..MixConfig::default()
            })
            .run_one(kind)
    });
    let mut table = TextTable::new(vec![
        "variant",
        "cycles",
        "bus tx",
        "hit ratio",
        "bcast-satisfied",
    ]);
    for (kind, row) in variants.iter().zip(&rows) {
        table.row(vec![
            kind.to_string(),
            row.cycles.to_string(),
            row.bus_transactions.to_string(),
            format!("{:.1}%", row.hit_ratio * 100.0),
            row.broadcast_satisfied.to_string(),
        ]);
    }
    println!("{table}");

    println!("producer/consumer bus reads (where broadcast matters most):");
    let consumer_counts = [2usize, 4, 8];
    let cases: Vec<(ProtocolKind, usize)> = consumer_counts
        .iter()
        .flat_map(|&consumers| variants.iter().map(move |&kind| (kind, consumers)))
        .collect();
    let reads = par::run_cases(&cases, |&(kind, consumers)| {
        producer_consumer_reads(kind, consumers)
    });
    let mut table = TextTable::new(vec!["consumers", "RB", "RB-no-broadcast"]);
    for (consumers, pair) in consumer_counts.iter().zip(reads.chunks(variants.len())) {
        table.row(vec![
            consumers.to_string(),
            pair[0].to_string(),
            pair[1].to_string(),
        ]);
    }
    println!("{table}");
    println!("expected: without capture, every invalidated consumer refetches");
    println!("individually, so bus reads grow with the consumer count.");
}
