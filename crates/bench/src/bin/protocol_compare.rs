//! E13 — the headline **protocol comparison**: RB, RWB, write-once, and
//! write-through on the paper's assumed reference mix (reads dominate;
//! local and read-only dominate shared), measuring cycles, bus traffic,
//! and hit ratio. All machines fan out over `decache_bench::par`; the
//! tables print in the same order as the old sequential loops.

use decache_analysis::{ProtocolComparison, TextTable};
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_workloads::MixConfig;

fn main() {
    banner(
        "Protocol comparison on the paper's reference mix",
        "Section 1/5 claims: dynamic classification + data broadcast win",
    );

    let pe_counts = [4usize, 8, 16];
    let groups = par::run_cases(&pe_counts, |&pes| {
        ProtocolComparison::new(pes)
            .config(MixConfig {
                ops_per_pe: 3_000,
                ..MixConfig::default()
            })
            .run()
    });
    for (pes, rows) in pe_counts.iter().zip(&groups) {
        println!("{pes} processors:");
        println!("{}", ProtocolComparison::render(rows));
    }

    println!("sensitivity: shared-data fraction sweep (8 PEs, RB vs write-once)");
    let kinds = [ProtocolKind::Rb, ProtocolKind::WriteOnce, ProtocolKind::Rwb];
    let fractions = [0.02f64, 0.05, 0.10, 0.20];
    let cases: Vec<(f64, ProtocolKind)> = fractions
        .iter()
        .flat_map(|&shared| kinds.iter().map(move |&kind| (shared, kind)))
        .collect();
    let rows = par::run_cases(&cases, |&(shared, kind)| {
        ProtocolComparison::new(8)
            .config(MixConfig {
                shared_fraction: shared,
                ops_per_pe: 2_000,
                ..MixConfig::default()
            })
            .run_one(kind)
    });
    let mut table = TextTable::new(vec![
        "shared %",
        "RB bus tx",
        "write-once bus tx",
        "RWB bus tx",
    ]);
    for (shared, group) in fractions.iter().zip(rows.chunks(kinds.len())) {
        table.row(vec![
            format!("{:.0}%", shared * 100.0),
            group[0].bus_transactions.to_string(),
            group[1].bus_transactions.to_string(),
            group[2].bus_transactions.to_string(),
        ]);
    }
    println!("{table}");
}
