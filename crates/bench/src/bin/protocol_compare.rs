//! E13 — the headline **protocol comparison**: RB, RWB, write-once,
//! write-through, and the table-driven MESI on the paper's assumed
//! reference mix (reads dominate; local and read-only dominate shared),
//! measuring cycles, bus traffic, and hit ratio. MESI rides along as a
//! modern baseline: its semantics live entirely in IR data executed by
//! the generic rule interpreter. All machines fan out over
//! `decache_bench::par`; the tables print in the same order as the old
//! sequential loops.

use decache_analysis::{ProtocolComparison, ProtocolRow, TextTable};
use decache_bench::{banner, par, record_snapshot};
use decache_core::ProtocolKind;
use decache_workloads::MixConfig;

fn main() {
    banner(
        "Protocol comparison on the paper's reference mix",
        "Section 1/5 claims: dynamic classification + data broadcast win",
    );

    // The paper's four headline schemes plus MESI (table-driven).
    let compared: Vec<ProtocolKind> = ProtocolKind::ALL
        .into_iter()
        .chain([ProtocolKind::Mesi])
        .collect();

    let pe_counts = [4usize, 8, 16];
    let cases: Vec<(usize, ProtocolKind)> = pe_counts
        .iter()
        .flat_map(|&pes| compared.iter().map(move |&kind| (pes, kind)))
        .collect();
    let snapshots = par::run_cases(&cases, |&(pes, kind)| {
        ProtocolComparison::new(pes)
            .config(MixConfig {
                ops_per_pe: 3_000,
                ..MixConfig::default()
            })
            .snapshot_one(kind)
    });
    for (&(pes, kind), snapshot) in cases.iter().zip(&snapshots) {
        record_snapshot(&format!("protocol_compare/{pes}pe/{kind}"), snapshot);
    }
    for (&pes, chunk) in pe_counts.iter().zip(snapshots.chunks(compared.len())) {
        let rows: Vec<ProtocolRow> = compared
            .iter()
            .zip(chunk)
            .map(|(&kind, snapshot)| ProtocolRow::from_snapshot(kind, snapshot))
            .collect();
        println!("{pes} processors:");
        println!("{}", ProtocolComparison::render(&rows));
    }

    println!("sensitivity: shared-data fraction sweep (8 PEs, RB vs write-once)");
    let kinds = [ProtocolKind::Rb, ProtocolKind::WriteOnce, ProtocolKind::Rwb];
    let fractions = [0.02f64, 0.05, 0.10, 0.20];
    let cases: Vec<(f64, ProtocolKind)> = fractions
        .iter()
        .flat_map(|&shared| kinds.iter().map(move |&kind| (shared, kind)))
        .collect();
    let sweep = par::run_cases(&cases, |&(shared, kind)| {
        ProtocolComparison::new(8)
            .config(MixConfig {
                shared_fraction: shared,
                ops_per_pe: 2_000,
                ..MixConfig::default()
            })
            .snapshot_one(kind)
    });
    let rows: Vec<_> = cases
        .iter()
        .zip(&sweep)
        .map(|(&(shared, kind), snapshot)| {
            record_snapshot(
                &format!("protocol_compare/shared_{shared}/{kind}"),
                snapshot,
            );
            ProtocolRow::from_snapshot(kind, snapshot)
        })
        .collect();
    let mut table = TextTable::new(vec![
        "shared %",
        "RB bus tx",
        "write-once bus tx",
        "RWB bus tx",
    ]);
    for (shared, group) in fractions.iter().zip(rows.chunks(kinds.len())) {
        table.row(vec![
            format!("{:.0}%", shared * 100.0),
            group[0].bus_transactions.to_string(),
            group[1].bus_transactions.to_string(),
            group[2].bus_transactions.to_string(),
        ]);
    }
    println!("{table}");

    // With DECACHE_TRACE=<path>, capture one representative machine
    // (4 PEs, RWB, the default mix) as a Perfetto trace.
    if decache_telemetry::env_trace_path().is_some() {
        use decache_machine::MachineBuilder;
        use decache_mem::{Addr, AddrRange};
        use decache_workloads::MixWorkload;
        let shared = AddrRange::with_len(Addr::new(0), 64);
        let config = MixConfig {
            ops_per_pe: 200,
            ..MixConfig::default()
        };
        let mut builder = MachineBuilder::new(ProtocolKind::Rwb);
        builder
            .memory_words(1 << 12)
            .cache_lines(64)
            .processors(4, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            });
        let trace = decache_bench::env_trace(&mut builder);
        let mut machine = builder.build();
        machine.run_to_completion(10_000_000);
        decache_bench::save_env_trace(&trace, &machine);
    }
}
