//! E13 — the headline **protocol comparison**: RB, RWB, write-once, and
//! write-through on the paper's assumed reference mix (reads dominate;
//! local and read-only dominate shared), measuring cycles, bus traffic,
//! and hit ratio.

use decache_analysis::{ProtocolComparison, TextTable};
use decache_bench::banner;
use decache_workloads::MixConfig;

fn main() {
    banner(
        "Protocol comparison on the paper's reference mix",
        "Section 1/5 claims: dynamic classification + data broadcast win",
    );

    for pes in [4usize, 8, 16] {
        println!("{pes} processors:");
        let rows = ProtocolComparison::new(pes)
            .config(MixConfig {
                ops_per_pe: 3_000,
                ..MixConfig::default()
            })
            .run();
        println!("{}", ProtocolComparison::render(&rows));
    }

    println!("sensitivity: shared-data fraction sweep (8 PEs, RB vs write-once)");
    let mut table = TextTable::new(vec![
        "shared %",
        "RB bus tx",
        "write-once bus tx",
        "RWB bus tx",
    ]);
    for shared in [0.02f64, 0.05, 0.10, 0.20] {
        let config = MixConfig {
            shared_fraction: shared,
            ops_per_pe: 2_000,
            ..MixConfig::default()
        };
        let cmp = ProtocolComparison::new(8).config(config);
        let rb = cmp.run_one(decache_core::ProtocolKind::Rb);
        let wo = cmp.run_one(decache_core::ProtocolKind::WriteOnce);
        let rwb = cmp.run_one(decache_core::ProtocolKind::Rwb);
        table.row(vec![
            format!("{:.0}%", shared * 100.0),
            rb.bus_transactions.to_string(),
            wo.bus_transactions.to_string(),
            rwb.bus_transactions.to_string(),
        ]);
    }
    println!("{table}");
}
