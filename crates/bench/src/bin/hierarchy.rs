//! E15 (extension) — the **hierarchical machine** of Section 8's future
//! work: one global bus for shared data plus per-cluster buses for
//! private data. Cluster-private traffic never loads the global bus, so
//! the hierarchy scales where the flat single-bus machine saturates.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

const GLOBAL_WORDS: u64 = 64;
const PRIVATE_PER_PE: u64 = 128;
const OPS_PER_PE: u64 = 1_500;

/// Builds the per-PE workload: shared refs in the global region,
/// private refs inside the PE's own cluster region.
fn workload(
    pe: usize,
    pes: usize,
    clusters: usize,
    memory_words: u64,
) -> Box<dyn decache_machine::Processor + Send> {
    let shared = AddrRange::with_len(Addr::new(0), GLOBAL_WORDS);
    let config = MixConfig {
        ops_per_pe: OPS_PER_PE,
        ..MixConfig::default()
    };
    let per_cluster_pes = pes / clusters;
    let cluster = pe / per_cluster_pes;
    let cluster_words = (memory_words - GLOBAL_WORDS) / clusters as u64;
    let cluster_base = GLOBAL_WORDS + cluster as u64 * cluster_words;
    let slot = (pe % per_cluster_pes) as u64;
    let private = AddrRange::with_len(
        Addr::new(cluster_base + slot * PRIVATE_PER_PE),
        PRIVATE_PER_PE,
    );
    Box::new(MixWorkload::with_private_region(
        config, shared, private, pe as u64,
    ))
}

fn run(pes: usize, clusters: usize) -> (u64, f64, f64) {
    let memory_words = 1u64 << 15;
    let mut builder = MachineBuilder::new(ProtocolKind::Rwb);
    builder.memory_words(memory_words).cache_lines(256);
    if clusters > 1 {
        builder.clusters(clusters, GLOBAL_WORDS);
    }
    builder.processors(pes, |pe| workload(pe, pes, clusters, memory_words));
    let mut machine = builder.build();
    let cycles = machine.run_to_completion(1_000_000_000);
    let per_bus = machine.traffic_per_bus();
    let global_util = per_bus.bus(0).utilization();
    let busiest_cluster_util = (1..per_bus.bus_count())
        .map(|b| per_bus.bus(b).utilization())
        .fold(0.0f64, f64::max);
    (cycles, global_util, busiest_cluster_util)
}

fn main() {
    banner(
        "Hierarchical (clustered) machine",
        "Section 8 future work: global bus + per-cluster buses",
    );

    let cases: Vec<(usize, usize)> = [8usize, 16, 32]
        .iter()
        .flat_map(|&pes| {
            [1usize, 2, 4, 8]
                .iter()
                .filter(move |&&clusters| pes % clusters == 0)
                .map(move |&clusters| (pes, clusters))
        })
        .collect();
    let results = par::run_cases(&cases, |&(pes, clusters)| run(pes, clusters));

    let mut table = TextTable::new(vec![
        "PEs",
        "clusters",
        "cycles",
        "global-bus util",
        "busiest cluster-bus util",
    ]);
    for (&(pes, clusters), &(cycles, global, cluster)) in cases.iter().zip(&results) {
        table.row(vec![
            pes.to_string(),
            clusters.to_string(),
            cycles.to_string(),
            format!("{:.1}%", global * 100.0),
            if clusters > 1 {
                format!("{:.1}%", cluster * 100.0)
            } else {
                "-".to_owned()
            },
        ]);
    }
    println!("{table}");
    println!("with clusters = 1 the single bus carries everything and saturates;");
    println!("with clusters, the global bus carries only the ~7% shared references,");
    println!("so the same PE count finishes in far fewer cycles — the scalability");
    println!("argument for hierarchical structures.");
}
