//! E12 — the **Section 5 cyclic-sharing claim**: for the
//! written-by-one, read-by-many pattern, RWB's write broadcast refreshes
//! the readers' caches in place ("subsequent read references will cause
//! no bus activity"), while RB invalidates and refetches, and write-once
//! refetches per reader.

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_bus::BusOpKind;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::ProducerConsumer;

fn run(kind: ProtocolKind, consumers: usize, rounds: u64) -> (u64, u64, u64) {
    let pc = ProducerConsumer::new(AddrRange::with_len(Addr::new(8), 16), Addr::new(0), rounds);
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(64)
        .cache_lines(32)
        .processor(pc.producer());
    for _ in 0..consumers {
        builder.processor(pc.consumer());
    }
    let mut machine = builder.build();
    let cycles = machine.run_to_completion(10_000_000);
    let t = machine.traffic();
    (t.count(BusOpKind::Read), t.total_transactions(), cycles)
}

fn main() {
    banner(
        "Cyclic sharing (producer/consumer)",
        "Section 5 claim: RWB readers hit after write broadcasts",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "consumers",
        "rounds",
        "bus reads",
        "total bus tx",
        "cycles",
    ]);
    for &consumers in &[1usize, 2, 4, 8] {
        for kind in ProtocolKind::ALL {
            let (reads, tx, cycles) = run(kind, consumers, 6);
            table.row(vec![
                kind.to_string(),
                consumers.to_string(),
                "6".to_owned(),
                reads.to_string(),
                tx.to_string(),
                cycles.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("expected ordering on bus reads: RWB < RB < write-once ~ write-through");
    println!("(RB's read broadcast lets one consumer's fetch refill the rest; RWB's");
    println!("write broadcast removes even that fetch).");
}
