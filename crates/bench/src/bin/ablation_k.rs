//! A1 — ablation of the **RWB locality threshold k** (footnote 6: "at
//! least k uninterrupted writes to indicate local usage"): k = 1 is a
//! write-back-invalidate protocol, k = 2 the paper's RWB, larger k
//! broadcasts more writes before claiming locality.

use decache_analysis::{ProtocolComparison, TextTable};
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_sync::{ContentionExperiment, Primitive};
use decache_workloads::MixConfig;

const KS: [u8; 4] = [1, 2, 3, 4];

fn main() {
    banner(
        "RWB locality threshold k",
        "Section 5 footnote 6 (k uninterrupted writes before local)",
    );

    println!("mixed workload (8 PEs):");
    let mix_rows = par::run_cases(&KS, |&k| {
        ProtocolComparison::new(8)
            .config(MixConfig {
                ops_per_pe: 2_000,
                ..MixConfig::default()
            })
            .run_one(ProtocolKind::RwbThreshold(k))
    });
    let mut table = TextTable::new(vec![
        "k",
        "cycles",
        "bus tx",
        "hit ratio",
        "bcast-satisfied",
    ]);
    for (k, row) in KS.iter().zip(&mix_rows) {
        table.row(vec![
            k.to_string(),
            row.cycles.to_string(),
            row.bus_transactions.to_string(),
            format!("{:.1}%", row.hit_ratio * 100.0),
            row.broadcast_satisfied.to_string(),
        ]);
    }
    println!("{table}");

    println!("lock contention (8 PEs, TTS):");
    let contention = par::run_cases(&KS, |&k| {
        ContentionExperiment::new(
            ProtocolKind::RwbThreshold(k),
            Primitive::TestAndTestAndSet,
            8,
        )
        .rounds(4)
        .run()
    });
    let mut table = TextTable::new(vec!["k", "cycles", "bus tx", "tx/acquisition"]);
    for (k, r) in KS.iter().zip(&contention) {
        table.row(vec![
            k.to_string(),
            r.cycles.to_string(),
            r.bus_transactions.to_string(),
            format!("{:.1}", r.transactions_per_acquisition()),
        ]);
    }
    println!("{table}");
    println!("expected: k=2 balances write broadcasting (good for cyclic sharing)");
    println!("against invalidation (good for truly local data); k=1 invalidates");
    println!("eagerly, hurting spinners; large k keeps broadcasting writes that");
    println!("nobody reads.");
}
