//! The protocol static-analysis gate: exhaustive product-machine
//! reachability plus the dead-transition lint, for every protocol at
//! every supported checker configuration.
//!
//! Runs all seven protocol variants × `n ∈ {2, 3, 4}` × every
//! combination of {evictions on/off, Test-and-Set on/off} (84 cases,
//! fanned across threads), then compares each protocol's canonical
//! lint (`n = 3`, full event set) against the committed baseline in
//! `crates/verify/src/lint_baseline.txt`.
//!
//! Exits non-zero — failing CI — if any case violates the Section 4
//! lemma/theorem (printing the reconstructed witness trace), if any
//! transition table is non-total over its explored domain, if any
//! declared state is unreachable, or if a protocol has dead table
//! entries the baseline does not expect.
//!
//! `--print-baseline` prints a fresh baseline file to stdout instead
//! (redirect it over `lint_baseline.txt` after an intentional change).

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_verify::{committed_baseline, LintReport, ProductChecker, ProductReport};
use std::process::ExitCode;

/// The seven protocol variants the workspace checks everywhere.
const KINDS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// One checker configuration to explore and lint.
#[derive(Debug, Clone, Copy)]
struct Case {
    kind: ProtocolKind,
    n: usize,
    evictions: bool,
    test_and_set: bool,
}

impl Case {
    /// The canonical configuration is the one the baseline pins.
    fn is_canonical(self) -> bool {
        self.n == 3 && self.evictions && self.test_and_set
    }

    fn checker(self) -> ProductChecker {
        let mut checker = ProductChecker::new(self.kind, self.n);
        if !self.evictions {
            checker = checker.without_evictions();
        }
        if !self.test_and_set {
            checker = checker.without_test_and_set();
        }
        checker
    }
}

struct Outcome {
    case: Case,
    report: ProductReport,
    lint: LintReport,
}

fn run(case: &Case) -> Outcome {
    let checker = case.checker();
    let report = checker.explore();
    let lint = checker.lint(&report);
    Outcome {
        case: *case,
        report,
        lint,
    }
}

fn main() -> ExitCode {
    let print_baseline = std::env::args().any(|a| a == "--print-baseline");

    let mut cases = Vec::new();
    for kind in KINDS {
        for n in [2usize, 3, 4] {
            for evictions in [true, false] {
                for test_and_set in [true, false] {
                    cases.push(Case {
                        kind,
                        n,
                        evictions,
                        test_and_set,
                    });
                }
            }
        }
    }
    let outcomes = par::run_cases(&cases, run);

    if print_baseline {
        println!("# Dead-transition baseline: one line per protocol, canonical checker");
        println!("# configuration (n = 3, evictions and Test-and-Set enabled).");
        println!("# Regenerate with:");
        println!("#   cargo run -p decache-bench --bin protocol_check -- --print-baseline");
        for outcome in outcomes.iter().filter(|o| o.case.is_canonical()) {
            println!("{}", outcome.lint.baseline_line());
        }
        return ExitCode::SUCCESS;
    }

    banner(
        "Protocol static analysis",
        "reachability (lemma & theorem) + dead-transition lint, all configurations",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "n",
        "evict",
        "TS",
        "states",
        "fired/domain",
        "dead",
        "verdict",
    ]);
    let mut failures = Vec::new();
    for outcome in &outcomes {
        let Outcome { case, report, lint } = outcome;
        let mut problems = Vec::new();
        if !report.holds() {
            problems.push(format!("{} violations", report.violations.len()));
        }
        if !lint.is_total() {
            problems.push(format!("non-total: {}", lint.non_total.len()));
        }
        if !lint.unreachable_states.is_empty() {
            problems.push(format!("unreachable: {:?}", lint.unreachable_states));
        }
        let verdict = if problems.is_empty() {
            "ok".to_owned()
        } else {
            problems.join("; ")
        };
        table.row(vec![
            case.kind.to_string(),
            case.n.to_string(),
            if case.evictions { "+" } else { "-" }.to_owned(),
            if case.test_and_set { "+" } else { "-" }.to_owned(),
            report.states.to_string(),
            format!("{}/{}", lint.fired, lint.domain),
            lint.dead.len().to_string(),
            verdict.clone(),
        ]);
        if verdict != "ok" {
            failures.push(format!(
                "{} n={} evict={} ts={}: {verdict}",
                case.kind, case.n, case.evictions, case.test_and_set
            ));
            if let Some(witness) = &report.witness {
                println!("counterexample for {} (n={}):", case.kind, case.n);
                println!("{witness}");
            }
        }
    }
    println!("{table}");

    println!("dead-transition lint versus committed baseline (canonical config):");
    for outcome in outcomes.iter().filter(|o| o.case.is_canonical()) {
        let lint = &outcome.lint;
        match committed_baseline(&lint.protocol) {
            None => {
                println!(
                    "  {:<16} NO BASELINE ({} dead entries)",
                    lint.protocol,
                    lint.dead.len()
                );
                failures.push(format!(
                    "{}: no committed baseline line — add one with --print-baseline",
                    lint.protocol
                ));
            }
            Some(baseline) => {
                let new_dead = lint.new_dead_versus(&baseline);
                let fixed = lint.fixed_versus(&baseline);
                let status = if new_dead.is_empty() && fixed.is_empty() {
                    "matches baseline".to_owned()
                } else {
                    format!("{} new dead, {} stale entries", new_dead.len(), fixed.len())
                };
                println!(
                    "  {:<16} {:>3} dead of {:>3} domain rows: {status}",
                    lint.protocol,
                    lint.dead.len(),
                    lint.domain
                );
                for entry in &new_dead {
                    println!("      NEW DEAD  {entry}");
                    failures.push(format!("{}: new dead transition {entry}", lint.protocol));
                }
                for entry in &fixed {
                    println!("      STALE     {entry}");
                    failures.push(format!(
                        "{}: baseline entry {entry} is no longer dead — regenerate",
                        lint.protocol
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!("\nprotocol_check: all {} cases ok", outcomes.len());
        ExitCode::SUCCESS
    } else {
        println!("\nprotocol_check: {} failure(s):", failures.len());
        for failure in &failures {
            println!("  {failure}");
        }
        ExitCode::FAILURE
    }
}
