//! The protocol static-analysis gate: exhaustive product-machine
//! reachability plus the dead-transition lint, for every protocol at
//! every supported checker configuration.
//!
//! Runs all eight protocol variants × `n ∈ {2, 3, 4}` × every
//! combination of {evictions on/off, Test-and-Set on/off} (96 cases,
//! fanned across threads).
//!
//! Exits non-zero — failing CI — if any case violates the Section 4
//! lemma/theorem (printing the reconstructed witness trace), if any
//! transition table is non-total over its explored domain, or if any
//! declared state is unreachable.
//!
//! The dead-rule baseline lives with the **static** analyzer
//! (`protocol_lint`, pinned by `crates/verify/src/static_baseline.txt`),
//! whose abstraction-based dead set subsumes this checker's coverage at
//! every `n`; regenerate it with
//! `protocol_lint --print-baseline <path>`.

use decache_analysis::TextTable;
use decache_bench::{banner, par};
use decache_core::ProtocolKind;
use decache_verify::{LintReport, ProductChecker, ProductReport};
use std::process::ExitCode;

/// The eight protocol variants the workspace checks everywhere.
const KINDS: [ProtocolKind; 8] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
    ProtocolKind::Mesi,
];

/// One checker configuration to explore and lint.
#[derive(Debug, Clone, Copy)]
struct Case {
    kind: ProtocolKind,
    n: usize,
    evictions: bool,
    test_and_set: bool,
}

impl Case {
    fn checker(self) -> ProductChecker {
        let mut checker = ProductChecker::new(self.kind, self.n);
        if !self.evictions {
            checker = checker.without_evictions();
        }
        if !self.test_and_set {
            checker = checker.without_test_and_set();
        }
        checker
    }
}

struct Outcome {
    case: Case,
    report: ProductReport,
    lint: LintReport,
}

fn run(case: &Case) -> Outcome {
    let checker = case.checker();
    let report = checker.explore();
    let lint = checker.lint(&report);
    Outcome {
        case: *case,
        report,
        lint,
    }
}

fn main() -> ExitCode {
    let mut cases = Vec::new();
    for kind in KINDS {
        for n in [2usize, 3, 4] {
            for evictions in [true, false] {
                for test_and_set in [true, false] {
                    cases.push(Case {
                        kind,
                        n,
                        evictions,
                        test_and_set,
                    });
                }
            }
        }
    }
    let outcomes = par::run_cases(&cases, run);

    banner(
        "Protocol static analysis",
        "reachability (lemma & theorem) + dead-transition lint, all configurations",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "n",
        "evict",
        "TS",
        "states",
        "fired/domain",
        "dead",
        "verdict",
    ]);
    let mut failures = Vec::new();
    for outcome in &outcomes {
        let Outcome { case, report, lint } = outcome;
        let mut problems = Vec::new();
        if !report.holds() {
            problems.push(format!("{} violations", report.violations.len()));
        }
        if !lint.is_total() {
            problems.push(format!("non-total: {}", lint.non_total.len()));
        }
        if !lint.unreachable_states.is_empty() {
            problems.push(format!("unreachable: {:?}", lint.unreachable_states));
        }
        let verdict = if problems.is_empty() {
            "ok".to_owned()
        } else {
            problems.join("; ")
        };
        table.row(vec![
            case.kind.to_string(),
            case.n.to_string(),
            if case.evictions { "+" } else { "-" }.to_owned(),
            if case.test_and_set { "+" } else { "-" }.to_owned(),
            report.states.to_string(),
            format!("{}/{}", lint.fired, lint.domain),
            lint.dead.len().to_string(),
            verdict.clone(),
        ]);
        if verdict != "ok" {
            failures.push(format!(
                "{} n={} evict={} ts={}: {verdict}",
                case.kind, case.n, case.evictions, case.test_and_set
            ));
            if let Some(witness) = &report.witness {
                println!("counterexample for {} (n={}):", case.kind, case.n);
                println!("{witness}");
            }
        }
    }
    println!("{table}");
    println!("dead-rule baseline: see protocol_lint (static analyzer gate)");

    if failures.is_empty() {
        println!("\nprotocol_check: all {} cases ok", outcomes.len());
        ExitCode::SUCCESS
    } else {
        println!("\nprotocol_check: {} failure(s):", failures.len());
        for failure in &failures {
            println!("  {failure}");
        }
        ExitCode::FAILURE
    }
}
