//! The work-unit regression gate: deterministic engine-work counters
//! (`tag_probes`, `sharer_visits`, `queue_scans`) per fixed scenario,
//! compared against the committed goldens in `WORKUNITS.json`.
//!
//! Wall-clock gates are too flaky for CI; work units are exact — the
//! counters are deterministic per scenario and identical across every
//! engine path (sequential or sharded issue, scanned or batched
//! broadcast) by construction. A change that makes the simulated
//! machine do more work (more misses, more sharer fan-out, more
//! arbitration) moves them; a pure engine optimization does not.
//!
//! * `cargo run -p decache-bench --bin workunit_gate` — check: fail if
//!   any scenario's total exceeds its golden by more than 5% (or is
//!   missing from the goldens).
//! * `… --bin workunit_gate -- --update` — rewrite `WORKUNITS.json`
//!   from the current engine.

use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_machine::{MachineBuilder, MachineStats};
use decache_mem::{Addr, AddrRange};
use decache_telemetry::Json;
use decache_workloads::{MixConfig, MixWorkload};
use std::path::PathBuf;

/// Allowed relative growth of a scenario's work units before the gate
/// fails.
const TOLERANCE: f64 = 0.05;

/// The fixed gate scenarios: the mixed workload at three machine sizes
/// for the two headline protocols, same shapes as `rb_scaling` and
/// `section7_128pe`.
const SCENARIOS: &[(&str, ProtocolKind, usize, u64)] = &[
    ("mix_8pe/RB", ProtocolKind::Rb, 8, 300),
    ("mix_8pe/RWB", ProtocolKind::Rwb, 8, 300),
    ("mix_32pe/RB", ProtocolKind::Rb, 32, 300),
    ("mix_32pe/RWB", ProtocolKind::Rwb, 32, 300),
    ("mix_128pe/RB", ProtocolKind::Rb, 128, 300),
    ("mix_128pe/RWB", ProtocolKind::Rwb, 128, 300),
];

fn run_scenario(kind: ProtocolKind, pes: usize, ops: u64) -> (MachineStats, u64) {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: ops,
        ..MixConfig::default()
    };
    let memory_words = (1u64 << 14).max((1088 + pes as u64 * 256).next_power_of_two());
    let mut machine = MachineBuilder::new(kind)
        .memory_words(memory_words)
        .cache_lines(256)
        .processors(pes, |pe| {
            Box::new(MixWorkload::new(config, shared, pe as u64))
        })
        .build();
    let cycles = machine.run_to_completion(100_000_000);
    (machine.stats(), cycles)
}

fn goldens_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../WORKUNITS.json")
}

fn main() {
    banner(
        "work-unit gate",
        "deterministic engine-work counters vs WORKUNITS.json",
    );
    let update = std::env::args().any(|a| a == "--update");
    let path = goldens_path();

    let mut rows = Vec::new();
    for &(name, kind, pes, ops) in SCENARIOS {
        let (stats, cycles) = run_scenario(kind, pes, ops);
        println!(
            "{name:<16} cycles={:>7} tag_probes={:>9} sharer_visits={:>9} queue_scans={:>7} total={:>10}",
            cycles,
            stats.tag_probes,
            stats.sharer_visits,
            stats.queue_scans,
            stats.work_units()
        );
        rows.push((name, stats));
    }

    if update {
        let entries = rows
            .iter()
            .map(|(name, stats)| {
                Json::object(vec![
                    ("name", Json::Str((*name).to_owned())),
                    ("tag_probes", Json::U64(stats.tag_probes)),
                    ("sharer_visits", Json::U64(stats.sharer_visits)),
                    ("queue_scans", Json::U64(stats.queue_scans)),
                    ("work_units", Json::U64(stats.work_units())),
                ])
            })
            .collect();
        std::fs::write(&path, format!("{}\n", Json::Array(entries)))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("\ngoldens rewritten: {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with --update to create the goldens",
            path.display()
        )
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let Json::Array(entries) = &doc else {
        panic!("{}: expected a JSON array", path.display());
    };
    let golden_total = |name: &str| -> Option<u64> {
        entries.iter().find_map(|e| {
            (e.get("name").and_then(Json::as_str) == Some(name))
                .then(|| e.get("work_units").and_then(Json::as_u64))
                .flatten()
        })
    };

    let mut failures = Vec::new();
    println!();
    for (name, stats) in &rows {
        let total = stats.work_units();
        match golden_total(name) {
            None => failures.push(format!("{name}: no golden (run --update)")),
            Some(golden) => {
                let limit = (golden as f64 * (1.0 + TOLERANCE)).floor() as u64;
                let delta = 100.0 * (total as f64 - golden as f64) / golden as f64;
                println!("{name:<16} golden={golden:>10} current={total:>10} ({delta:+.2}%)");
                if total > limit {
                    failures.push(format!(
                        "{name}: {total} work units exceeds golden {golden} by {delta:.2}% (> {:.0}%)",
                        TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nwork-unit gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\nwork-unit gate passed ({} scenarios)", rows.len());
}
