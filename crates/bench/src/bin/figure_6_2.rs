//! E6 — regenerates **Figure 6-2: Synchronization with
//! Test-and-Test-and-Set for RB Scheme**: TTS spins in the cache, so the
//! waiting phase generates no bus traffic.

use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_sync::{Primitive, SyncScenario};

fn main() {
    banner(
        "Synchronization with Test-and-Test-and-Set on RB",
        "Figure 6-2",
    );
    let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet).run();
    println!("{}", report.render());
    println!("bus transactions per phase:");
    for (label, tx) in &report.phase_traffic {
        println!("  {tx:>4}  {label}");
    }
    println!();
    println!(
        "spinning in cache generated {} transactions (the paper's \"No Bus Traffic\")",
        report.traffic_of("Others spin on S (in cache)")
    );
}
