//! E5 — regenerates **Figure 6-1: Synchronization with Test-and-Set for
//! RB Scheme**: the row-per-event cache state table for three processors
//! contending on a lock, plus the bus traffic each phase generated.

use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_sync::{Primitive, SyncScenario};

fn main() {
    banner("Synchronization with Test-and-Set on RB", "Figure 6-1");
    let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndSet).run();
    println!("{}", report.render());
    println!("bus transactions per phase:");
    for (label, tx) in &report.phase_traffic {
        println!("  {tx:>4}  {label}");
    }
    println!();
    println!(
        "total bus transactions: {}",
        report.machine.traffic().total_transactions()
    );
}
