//! E11 — the **Section 5 array-initialization claim**: initializing an
//! array much larger than the cache costs RB two bus writes per element
//! (write-through + write-back at eviction) but RWB only one (the
//! first-write broadcast keeps memory current, so evictions are silent).

use decache_analysis::TextTable;
use decache_bench::banner;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::ArrayInit;

fn run(kind: ProtocolKind, array_words: u64, cache_lines: usize) -> (u64, u64, u64) {
    let array = AddrRange::with_len(Addr::new(0), array_words);
    let mut machine = MachineBuilder::new(kind)
        .memory_words(array_words.next_power_of_two().max(64))
        .cache_lines(cache_lines)
        .processor(Box::new(ArrayInit::new(array)))
        .build();
    machine.run_to_completion(100_000_000);
    let t = machine.traffic();
    (
        t.count(decache_bus::BusOpKind::Write),
        t.count(decache_bus::BusOpKind::Invalidate),
        machine.stats().writebacks,
    )
}

fn main() {
    banner(
        "Array initialization bus cost",
        "Section 5 claim: RB 2 bus writes/element, RWB 1",
    );

    let mut table = TextTable::new(vec![
        "protocol",
        "array words",
        "cache lines",
        "bus writes",
        "bus writes/element",
        "write-backs",
        "BI",
    ]);
    for &(array, cache) in &[(256u64, 64usize), (1024, 64), (4096, 256)] {
        for kind in [ProtocolKind::Rb, ProtocolKind::Rwb, ProtocolKind::WriteOnce] {
            let (bw, bi, wb) = run(kind, array, cache);
            table.row(vec![
                kind.to_string(),
                array.to_string(),
                cache.to_string(),
                bw.to_string(),
                format!("{:.2}", bw as f64 / array as f64),
                wb.to_string(),
                bi.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("expected: RB approaches 2.0 bus writes/element as the array grows;");
    println!("RWB stays at exactly 1.0 (write-once also pays ~1: its first write is");
    println!("the write-through and the line is evicted before a second write).");
}
