//! The RB (Read-Broadcast) cache scheme of Section 3 / Figure 3-1.

use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent, SnoopOutcome};
use LineState::{Invalid, Local, Readable};

/// The RB scheme: three states per line (`R`, `I`, `L`), write-through
/// writes that invalidate all other copies, and **read broadcasting** —
/// "values fetched in response to certain CPU reads are broadcast to all
/// of the caches" (Section 3).
///
/// The per-line transition rules, verbatim from the paper:
///
/// * **Read state**: CPU read hits; CPU write generates a bus write,
///   updates the cache, and tags the line Local. A bus read has no
///   effect; a bus write invalidates.
/// * **Invalid state**: CPU read issues a bus read, then stores the value
///   and becomes Read. CPU write issues a bus write, updates, becomes
///   Local. A snooped bus *write* does nothing; a snooped bus *read*
///   stores the returned value and becomes Read — the broadcast.
/// * **Local state**: CPU read and write are purely local. A bus write
///   invalidates. A bus read is **interrupted** and replaced by a bus
///   write of the cached value; the line becomes Read and the interrupted
///   read retries next cycle.
///
/// The broadcast capture in the Invalid state can be disabled with
/// [`Rb::without_read_broadcast`] for ablation A3, which degrades RB to a
/// pure event-broadcasting (Goodman-style) scheme on the read path.
///
/// # Examples
///
/// ```
/// use decache_core::{LineState, Protocol, Rb, SnoopEvent, SnoopOutcome};
/// use decache_mem::Word;
///
/// let rb = Rb::new();
/// // An invalid holder captures the data of a foreign bus read:
/// let out = rb.snoop(LineState::Invalid, SnoopEvent::Read(Word::new(9)));
/// assert_eq!(out, SnoopOutcome::capture(LineState::Readable));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rb {
    read_broadcast: bool,
}

impl Rb {
    /// Creates the RB scheme as published.
    pub fn new() -> Self {
        Rb {
            read_broadcast: true,
        }
    }

    /// Creates the ablated variant in which snooping caches do *not*
    /// capture the data returned by foreign bus reads.
    pub fn without_read_broadcast() -> Self {
        Rb {
            read_broadcast: false,
        }
    }

    /// Returns `true` if read broadcasting is enabled (the published
    /// scheme).
    pub fn read_broadcast(&self) -> bool {
        self.read_broadcast
    }

    fn check(&self, state: LineState) -> LineState {
        assert!(
            matches!(state, Invalid | Readable | Local),
            "RB has no state {state:?}"
        );
        state
    }
}

impl Default for Rb {
    fn default() -> Self {
        Rb::new()
    }
}

impl Protocol for Rb {
    fn name(&self) -> String {
        if self.read_broadcast {
            "RB".to_owned()
        } else {
            "RB-no-broadcast".to_owned()
        }
    }

    fn states(&self) -> Vec<LineState> {
        vec![Invalid, Readable, Local]
    }

    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            // "A reference to an item not in the cache behaves exactly as
            // if it were in the invalid state."
            None | Some(Invalid) => CpuOutcome::Miss {
                intent: BusIntent::Read,
            },
            Some(Readable) => CpuOutcome::Hit { next: Readable },
            Some(Local) => CpuOutcome::Hit { next: Local },
            Some(_) => unreachable!(),
        }
    }

    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            // Write-through with invalidation: the bus write "informs the
            // other caches that the variable is now considered local".
            None | Some(Invalid) | Some(Readable) => CpuOutcome::Miss {
                intent: BusIntent::Write,
            },
            Some(Local) => CpuOutcome::Hit { next: Local },
            Some(_) => unreachable!(),
        }
    }

    fn own_complete(&self, _state: Option<LineState>, intent: BusIntent) -> LineState {
        match intent {
            BusIntent::Read => Readable,
            BusIntent::Write => Local,
            BusIntent::Invalidate => {
                unreachable!("RB never issues a bus invalidate")
            }
        }
    }

    fn own_locked_read_complete(&self, _state: Option<LineState>) -> LineState {
        // The locked read is broadcast like any bus read; the issuer keeps
        // the returned value as a readable copy (Figure 6-1's rows where
        // failing testers end in R).
        Readable
    }

    fn own_unlock_write_complete(&self, _state: Option<LineState>) -> LineState {
        // "This action then sets all the other caches into the invalid
        // state, i.e. a local configuration is assumed."
        Local
    }

    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        match (self.check(state), event) {
            // Readable: bus reads are harmless, any foreign write
            // invalidates.
            (Readable, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::unchanged(Readable)
            }
            (Readable, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_)) => {
                SnoopOutcome::to(Invalid)
            }

            // Invalid: a completed foreign read is a broadcast — capture
            // the value "for future use".
            (Invalid, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                if self.read_broadcast {
                    SnoopOutcome::capture(Readable)
                } else {
                    SnoopOutcome::unchanged(Invalid)
                }
            }
            (Invalid, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_)) => {
                SnoopOutcome::unchanged(Invalid)
            }

            // Local: the read was interrupted and our data supplied (see
            // `supplies_on_snoop_read` / `after_supply`); reaching here
            // means the retried read completed while we are no longer
            // Local — cannot happen, but keep the function total: treat a
            // completed foreign read like the post-supply state.
            (Local, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::capture(Readable)
            }
            (Local, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_)) => SnoopOutcome::to(Invalid),

            // RB never receives BI (no cache issues it), but stay total.
            (_, SnoopEvent::Invalidate) => SnoopOutcome::to(Invalid),
            (s, _) => unreachable!("RB snoop in state {s:?}"),
        }
    }

    fn supplies_on_snoop_read(&self, state: LineState) -> bool {
        self.check(state) == Local
    }

    fn after_supply(&self, state: LineState) -> LineState {
        debug_assert_eq!(self.check(state), Local);
        // "The bus read is interrupted and replaced by a bus write of the
        // cached value. The cache state is changed to Read."
        Readable
    }

    fn writeback_on_evict(&self, state: LineState) -> bool {
        // "Only those overwritten items that are tagged local need to be
        // written back to the memory."
        self.check(state) == Local
    }

    fn broadcasts_write_data(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_mem::Word;

    fn w(v: u64) -> Word {
        Word::new(v)
    }

    // ------------------------------------------------------------------
    // Figure 3-1, edge by edge.
    // ------------------------------------------------------------------

    #[test]
    fn fig3_1_read_state_cpu_read_hits() {
        let rb = Rb::new();
        assert_eq!(
            rb.cpu_read(Some(Readable)),
            CpuOutcome::Hit { next: Readable }
        );
    }

    #[test]
    fn fig3_1_read_state_cpu_write_writes_through_to_local() {
        let rb = Rb::new();
        assert_eq!(
            rb.cpu_write(Some(Readable)),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(rb.own_complete(Some(Readable), BusIntent::Write), Local);
    }

    #[test]
    fn fig3_1_read_state_bus_read_no_effect() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Readable, SnoopEvent::Read(w(1))),
            SnoopOutcome::unchanged(Readable)
        );
    }

    #[test]
    fn fig3_1_read_state_bus_write_invalidates() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Readable, SnoopEvent::Write(w(1))),
            SnoopOutcome::to(Invalid)
        );
    }

    #[test]
    fn fig3_1_invalid_state_cpu_read_fetches_to_read() {
        let rb = Rb::new();
        assert_eq!(
            rb.cpu_read(Some(Invalid)),
            CpuOutcome::Miss {
                intent: BusIntent::Read
            }
        );
        assert_eq!(rb.own_complete(Some(Invalid), BusIntent::Read), Readable);
    }

    #[test]
    fn fig3_1_invalid_state_cpu_write_to_local() {
        let rb = Rb::new();
        assert_eq!(
            rb.cpu_write(Some(Invalid)),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(rb.own_complete(Some(Invalid), BusIntent::Write), Local);
    }

    #[test]
    fn fig3_1_invalid_state_bus_write_no_effect() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Invalid, SnoopEvent::Write(w(3))),
            SnoopOutcome::unchanged(Invalid)
        );
    }

    #[test]
    fn fig3_1_invalid_state_bus_read_broadcast_capture() {
        // "All caches that contain the target address of a bus read will
        // perform these actions, so that the value read will, in effect,
        // be broadcast to all the processors for future use."
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Invalid, SnoopEvent::Read(w(5))),
            SnoopOutcome::capture(Readable)
        );
    }

    #[test]
    fn fig3_1_local_state_cpu_ops_are_silent() {
        let rb = Rb::new();
        assert_eq!(rb.cpu_read(Some(Local)), CpuOutcome::Hit { next: Local });
        assert_eq!(rb.cpu_write(Some(Local)), CpuOutcome::Hit { next: Local });
    }

    #[test]
    fn fig3_1_local_state_bus_write_invalidates() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Local, SnoopEvent::Write(w(2))),
            SnoopOutcome::to(Invalid)
        );
    }

    #[test]
    fn fig3_1_local_state_supplies_on_bus_read() {
        let rb = Rb::new();
        assert!(rb.supplies_on_snoop_read(Local));
        assert!(!rb.supplies_on_snoop_read(Readable));
        assert!(!rb.supplies_on_snoop_read(Invalid));
        assert_eq!(rb.after_supply(Local), Readable);
    }

    // ------------------------------------------------------------------
    // Not-present behaves as invalid.
    // ------------------------------------------------------------------

    #[test]
    fn not_present_equals_invalid() {
        let rb = Rb::new();
        assert_eq!(rb.cpu_read(None), rb.cpu_read(Some(Invalid)));
        assert_eq!(rb.cpu_write(None), rb.cpu_write(Some(Invalid)));
        assert_eq!(
            rb.own_complete(None, BusIntent::Read),
            rb.own_complete(Some(Invalid), BusIntent::Read)
        );
    }

    // ------------------------------------------------------------------
    // Read-modify-write hooks.
    // ------------------------------------------------------------------

    #[test]
    fn locked_read_leaves_issuer_readable() {
        let rb = Rb::new();
        assert_eq!(rb.own_locked_read_complete(Some(Invalid)), Readable);
        assert_eq!(rb.own_locked_read_complete(None), Readable);
    }

    #[test]
    fn unlock_write_makes_issuer_local() {
        let rb = Rb::new();
        assert_eq!(rb.own_unlock_write_complete(Some(Readable)), Local);
    }

    #[test]
    fn snooped_locked_read_broadcasts_like_read() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Invalid, SnoopEvent::LockedRead(w(1))),
            SnoopOutcome::capture(Readable)
        );
    }

    #[test]
    fn snooped_unlock_write_invalidates_like_write() {
        let rb = Rb::new();
        assert_eq!(
            rb.snoop(Readable, SnoopEvent::UnlockWrite(w(0))),
            SnoopOutcome::to(Invalid)
        );
    }

    // ------------------------------------------------------------------
    // Eviction and misc.
    // ------------------------------------------------------------------

    #[test]
    fn only_local_lines_write_back() {
        let rb = Rb::new();
        assert!(rb.writeback_on_evict(Local));
        assert!(!rb.writeback_on_evict(Readable));
        assert!(!rb.writeback_on_evict(Invalid));
    }

    #[test]
    fn rb_does_not_broadcast_write_data() {
        assert!(!Rb::new().broadcasts_write_data());
    }

    #[test]
    fn state_list_is_three_states() {
        assert_eq!(Rb::new().states(), vec![Invalid, Readable, Local]);
        assert_eq!(Rb::new().name(), "RB");
    }

    #[test]
    #[should_panic(expected = "RB has no state")]
    fn foreign_state_panics() {
        let _ = Rb::new().cpu_read(Some(LineState::Dirty));
    }

    // ------------------------------------------------------------------
    // Ablation A3: read broadcast disabled.
    // ------------------------------------------------------------------

    #[test]
    fn no_broadcast_variant_ignores_foreign_reads() {
        let rb = Rb::without_read_broadcast();
        assert!(!rb.read_broadcast());
        assert_eq!(rb.name(), "RB-no-broadcast");
        assert_eq!(
            rb.snoop(Invalid, SnoopEvent::Read(w(5))),
            SnoopOutcome::unchanged(Invalid)
        );
        // All other behaviour is unchanged.
        assert_eq!(
            rb.snoop(Readable, SnoopEvent::Write(w(5))),
            SnoopOutcome::to(Invalid)
        );
        assert!(rb.supplies_on_snoop_read(Local));
    }
}
