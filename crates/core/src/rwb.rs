//! The RWB (Read-Write-Broadcast) cache scheme of Section 5 / Figure 5-1.

use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent, SnoopOutcome};
use LineState::{FirstWrite, Invalid, Local, Readable};

/// The RWB scheme: RB plus **write broadcasting** — "the caches also note
/// the data part of the bus writes" — a `F`irst-write state, and a bus
/// invalidate signal (`BI`).
///
/// Where RB reverts a datum to the local configuration on the *first*
/// write, RWB waits for `k` **uninterrupted writes** by the same
/// processor (footnote 6 of the paper; the expository default is
/// `k = 2`):
///
/// * the first `k - 1` writes are broadcast bus writes; the writer moves
///   through `F(1) .. F(k-1)` while every other holder *captures the
///   written data* and sits in `R`;
/// * the `k`-th uninterrupted write broadcasts `BI`, invalidating all
///   other copies, and the writer enters `L` — from then on it reads and
///   writes with no bus traffic;
/// * any intervening foreign *write* folds the first-writer back to `R`
///   (capturing the foreign data); foreign bus *reads* leave the
///   intermediate configuration unchanged ("all other configurations will
///   be unchanged", Section 5) — the paper deliberately does not treat
///   a read as breaking the write streak.
///
/// With `k = 1` the scheme degenerates to a write-back-invalidate
/// protocol: every bus-visible write is a `BI` and the writer goes
/// straight to `L` (memory is updated lazily, by supply or write-back).
/// This corner is exercised by ablation A1.
///
/// # Examples
///
/// ```
/// use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, Rwb};
///
/// let rwb = Rwb::new(); // k = 2
/// // Second uninterrupted write confirms locality via BI:
/// assert_eq!(
///     rwb.cpu_write(Some(LineState::FirstWrite(1))),
///     CpuOutcome::Miss { intent: BusIntent::Invalidate }
/// );
/// assert_eq!(
///     rwb.own_complete(Some(LineState::FirstWrite(1)), BusIntent::Invalidate),
///     LineState::Local
/// );
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rwb {
    k: u8,
}

impl Rwb {
    /// The largest supported locality threshold.
    pub const MAX_K: u8 = 8;

    /// Creates the RWB scheme with the paper's default threshold `k = 2`.
    pub fn new() -> Self {
        Rwb { k: 2 }
    }

    /// Creates the RWB scheme requiring `k` uninterrupted writes before a
    /// datum is considered local (footnote 6: "straightforward
    /// modifications are possible if one wishes at least k uninterrupted
    /// writes").
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`Rwb::MAX_K`].
    pub fn with_threshold(k: u8) -> Self {
        assert!(
            (1..=Self::MAX_K).contains(&k),
            "threshold k = {k} out of range 1..={}",
            Self::MAX_K
        );
        Rwb { k }
    }

    /// Returns the locality threshold `k`.
    pub fn threshold(&self) -> u8 {
        self.k
    }

    fn check(&self, state: LineState) -> LineState {
        match state {
            Invalid | Readable | Local => state,
            FirstWrite(c) if c >= 1 && c < self.k => state,
            _ => panic!("RWB(k={}) has no state {state:?}", self.k),
        }
    }

    /// The bus action for a write when `done` uninterrupted writes have
    /// already happened: broadcast the data unless this write reaches the
    /// threshold, in which case broadcast `BI`.
    fn write_intent(&self, done: u8) -> BusIntent {
        if done + 1 >= self.k {
            BusIntent::Invalidate
        } else {
            BusIntent::Write
        }
    }
}

impl Default for Rwb {
    fn default() -> Self {
        Rwb::new()
    }
}

impl Protocol for Rwb {
    fn name(&self) -> String {
        if self.k == 2 {
            "RWB".to_owned()
        } else {
            format!("RWB(k={})", self.k)
        }
    }

    fn states(&self) -> Vec<LineState> {
        let mut states = vec![Invalid, Readable];
        states.extend((1..self.k).map(FirstWrite));
        states.push(Local);
        states
    }

    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            None | Some(Invalid) => CpuOutcome::Miss {
                intent: BusIntent::Read,
            },
            Some(s @ (Readable | Local | FirstWrite(_))) => CpuOutcome::Hit { next: s },
            Some(_) => unreachable!(),
        }
    }

    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            // "Variables are initially assumed to be in the local
            // configuration and the first write will cause a change to
            // the shared configuration" — a write miss broadcasts data
            // (unless k = 1, where it claims locality immediately).
            None | Some(Invalid) | Some(Readable) => CpuOutcome::Miss {
                intent: self.write_intent(0),
            },
            Some(FirstWrite(c)) => CpuOutcome::Miss {
                intent: self.write_intent(c),
            },
            Some(Local) => CpuOutcome::Hit { next: Local },
            Some(_) => unreachable!(),
        }
    }

    fn own_complete(&self, state: Option<LineState>, intent: BusIntent) -> LineState {
        match intent {
            BusIntent::Read => Readable,
            BusIntent::Write => match state {
                Some(FirstWrite(c)) => FirstWrite((c + 1).min(self.k - 1)),
                _ => FirstWrite(1),
            },
            // "A subsequent write by PE_i then confirms the fact that the
            // variable is to be assumed local. Cache i enters state L."
            BusIntent::Invalidate => Local,
        }
    }

    fn own_locked_read_complete(&self, _state: Option<LineState>) -> LineState {
        Readable
    }

    fn own_unlock_write_complete(&self, state: Option<LineState>) -> LineState {
        if self.k == 1 {
            Local
        } else {
            // "Upon completion of such operations, the RWB scheme will
            // leave the caches in a shared configuration" — the issuer
            // holds the first write (Figure 6-3: P2 locks S => F).
            let _ = state;
            FirstWrite(1)
        }
    }

    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        match (self.check(state), event) {
            // Foreign reads: broadcast fills invalid holders; every other
            // configuration is unchanged (Section 5).
            (Invalid, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::capture(Readable)
            }
            (s @ (Readable | FirstWrite(_)), SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::unchanged(s)
            }
            (Local, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                // Only reachable if a read completed against a Local
                // holder without the supply path; fold to the post-supply
                // state for totality.
                SnoopOutcome::capture(Readable)
            }

            // Foreign writes: "the data written is read by all caches and
            // they in turn enter state R" — including a first-writer
            // whose streak is interrupted, and an invalid holder being
            // refreshed. With k = 1 data writes never reach the bus
            // except as unlocking writes, which invalidate (the writer
            // claims immediate locality).
            (_, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_)) => {
                if self.k == 1 {
                    SnoopOutcome::to(Invalid)
                } else {
                    SnoopOutcome::capture(Readable)
                }
            }

            // The bus invalidate: "causing all other caches to enter
            // state I".
            (_, SnoopEvent::Invalidate) => SnoopOutcome::to(Invalid),

            (s, e) => unreachable!("RWB snoop in state {s:?} on {e:?}"),
        }
    }

    fn supplies_on_snoop_read(&self, state: LineState) -> bool {
        self.check(state) == Local
    }

    fn after_supply(&self, state: LineState) -> LineState {
        debug_assert_eq!(self.check(state), Local);
        Readable
    }

    fn writeback_on_evict(&self, state: LineState) -> bool {
        // F lines are memory-consistent: every write that created them
        // was a broadcast bus write. Only L is dirty. This is the source
        // of the array-initialization win (E11): one bus write per
        // element instead of RB's write-through plus write-back.
        self.check(state) == Local
    }

    fn broadcasts_write_data(&self) -> bool {
        // With k = 1 every bus-visible write is an invalidate, so no
        // write data ever crosses the bus to be captured.
        self.k >= 2
    }

    fn uses_bus_invalidate(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_mem::Word;

    fn w(v: u64) -> Word {
        Word::new(v)
    }

    // ------------------------------------------------------------------
    // Figure 5-1, edge by edge (k = 2).
    // ------------------------------------------------------------------

    #[test]
    fn fig5_1_first_write_from_shared_broadcasts_data() {
        let p = Rwb::new();
        assert_eq!(
            p.cpu_write(Some(Readable)),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(
            p.own_complete(Some(Readable), BusIntent::Write),
            FirstWrite(1)
        );
    }

    #[test]
    fn fig5_1_second_write_confirms_local_via_bi() {
        let p = Rwb::new();
        assert_eq!(
            p.cpu_write(Some(FirstWrite(1))),
            CpuOutcome::Miss {
                intent: BusIntent::Invalidate
            }
        );
        assert_eq!(
            p.own_complete(Some(FirstWrite(1)), BusIntent::Invalidate),
            Local
        );
    }

    #[test]
    fn fig5_1_write_miss_enters_first_write() {
        let p = Rwb::new();
        assert_eq!(
            p.cpu_write(None),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(p.own_complete(None, BusIntent::Write), FirstWrite(1));
    }

    #[test]
    fn fig5_1_reads_in_intermediate_configuration_are_free() {
        let p = Rwb::new();
        assert_eq!(
            p.cpu_read(Some(FirstWrite(1))),
            CpuOutcome::Hit {
                next: FirstWrite(1)
            }
        );
        // A foreign read leaves F unchanged: "all other configurations
        // will be unchanged".
        assert_eq!(
            p.snoop(FirstWrite(1), SnoopEvent::Read(w(3))),
            SnoopOutcome::unchanged(FirstWrite(1))
        );
    }

    #[test]
    fn fig5_1_foreign_write_interrupts_streak_and_captures() {
        let p = Rwb::new();
        assert_eq!(
            p.snoop(FirstWrite(1), SnoopEvent::Write(w(7))),
            SnoopOutcome::capture(Readable)
        );
        assert_eq!(
            p.snoop(Readable, SnoopEvent::Write(w(7))),
            SnoopOutcome::capture(Readable)
        );
        assert_eq!(
            p.snoop(Invalid, SnoopEvent::Write(w(7))),
            SnoopOutcome::capture(Readable)
        );
        assert_eq!(
            p.snoop(Local, SnoopEvent::Write(w(7))),
            SnoopOutcome::capture(Readable)
        );
    }

    #[test]
    fn fig5_1_bi_invalidates_all_other_holders() {
        let p = Rwb::new();
        for s in [Invalid, Readable, FirstWrite(1), Local] {
            assert_eq!(
                p.snoop(s, SnoopEvent::Invalidate),
                SnoopOutcome::to(Invalid)
            );
        }
    }

    #[test]
    fn fig5_1_local_state_matches_rb() {
        let p = Rwb::new();
        assert_eq!(p.cpu_read(Some(Local)), CpuOutcome::Hit { next: Local });
        assert_eq!(p.cpu_write(Some(Local)), CpuOutcome::Hit { next: Local });
        assert!(p.supplies_on_snoop_read(Local));
        assert_eq!(p.after_supply(Local), Readable);
        assert!(p.writeback_on_evict(Local));
        assert!(!p.writeback_on_evict(FirstWrite(1)));
        assert!(!p.writeback_on_evict(Readable));
    }

    #[test]
    fn fig5_1_read_broadcast_still_fills_invalid_holders() {
        let p = Rwb::new();
        assert_eq!(
            p.snoop(Invalid, SnoopEvent::Read(w(4))),
            SnoopOutcome::capture(Readable)
        );
    }

    // ------------------------------------------------------------------
    // Read-modify-write: Figure 6-3 rows.
    // ------------------------------------------------------------------

    #[test]
    fn successful_ts_leaves_issuer_first_write_and_others_readable() {
        // Figure 6-3 "P2 locks S": R(1) F(1) R(1).
        let p = Rwb::new();
        assert_eq!(p.own_unlock_write_complete(Some(Readable)), FirstWrite(1));
        assert_eq!(
            p.snoop(Readable, SnoopEvent::UnlockWrite(w(1))),
            SnoopOutcome::capture(Readable)
        );
    }

    #[test]
    fn release_from_first_write_goes_local_via_bi() {
        // Figure 6-3 "P2 releases S": I(-) L(0) I(-): the release write is
        // the second uninterrupted write by P2.
        let p = Rwb::new();
        assert_eq!(
            p.cpu_write(Some(FirstWrite(1))),
            CpuOutcome::Miss {
                intent: BusIntent::Invalidate
            }
        );
    }

    // ------------------------------------------------------------------
    // Threshold generality (ablation A1).
    // ------------------------------------------------------------------

    #[test]
    fn k3_takes_two_broadcast_writes_before_bi() {
        let p = Rwb::with_threshold(3);
        assert_eq!(
            p.cpu_write(Some(Readable)),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(
            p.own_complete(Some(Readable), BusIntent::Write),
            FirstWrite(1)
        );
        assert_eq!(
            p.cpu_write(Some(FirstWrite(1))),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(
            p.own_complete(Some(FirstWrite(1)), BusIntent::Write),
            FirstWrite(2)
        );
        assert_eq!(
            p.cpu_write(Some(FirstWrite(2))),
            CpuOutcome::Miss {
                intent: BusIntent::Invalidate
            }
        );
        assert_eq!(
            p.states(),
            vec![Invalid, Readable, FirstWrite(1), FirstWrite(2), Local]
        );
        assert_eq!(p.name(), "RWB(k=3)");
    }

    #[test]
    fn k1_is_write_back_invalidate() {
        let p = Rwb::with_threshold(1);
        // Every bus-visible write is an immediate locality claim.
        assert_eq!(
            p.cpu_write(Some(Readable)),
            CpuOutcome::Miss {
                intent: BusIntent::Invalidate
            }
        );
        assert_eq!(p.own_complete(Some(Readable), BusIntent::Invalidate), Local);
        assert_eq!(p.own_unlock_write_complete(Some(Readable)), Local);
        // Snooped unlocking writes invalidate rather than capture.
        assert_eq!(
            p.snoop(Readable, SnoopEvent::UnlockWrite(w(1))),
            SnoopOutcome::to(Invalid)
        );
        assert_eq!(p.states(), vec![Invalid, Readable, Local]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_threshold_panics() {
        let _ = Rwb::with_threshold(0);
    }

    #[test]
    #[should_panic(expected = "has no state")]
    fn out_of_range_first_write_panics() {
        let p = Rwb::new(); // k = 2, so F(2) is illegal
        let _ = p.cpu_read(Some(FirstWrite(2)));
    }

    #[test]
    fn default_is_k2() {
        let p = Rwb::default();
        assert_eq!(p.threshold(), 2);
        assert_eq!(p.name(), "RWB");
        assert!(p.broadcasts_write_data());
    }

    #[test]
    fn not_present_equals_invalid() {
        let p = Rwb::new();
        assert_eq!(p.cpu_read(None), p.cpu_read(Some(Invalid)));
        assert_eq!(p.cpu_write(None), p.cpu_write(Some(Invalid)));
    }
}
