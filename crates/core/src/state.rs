//! The per-line coherence state vocabulary.

use std::fmt;

/// The state tag of one cache line, covering every protocol in the crate.
///
/// Each protocol uses a subset (reported by [`Protocol::states`]):
///
/// | Protocol | States |
/// |---|---|
/// | RB | `Invalid`, `Readable`, `Local` |
/// | RWB | `Invalid`, `Readable`, `FirstWrite(c)`, `Local` |
/// | Write-once | `Invalid`, `Valid`, `Reserved`, `Dirty` |
/// | Write-through | `Invalid`, `Valid` |
///
/// `FirstWrite(c)` carries the count of uninterrupted writes observed so
/// far (`1 ..= k-1`); the paper's footnote 6 allows requiring "at least k
/// uninterrupted writes to indicate local usage", with `k = 2` as the
/// expository default, in which case the only occupied variant is
/// `FirstWrite(1)` — the figure's plain `F` state.
///
/// The "not present" (`NP`) state of the paper's proof sketch is *not* a
/// variant: absence from the tag store represents it, and the [`Protocol`]
/// trait models it as `None`.
///
/// [`Protocol::states`]: crate::Protocol::states
/// [`Protocol`]: crate::Protocol
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineState {
    /// The cached datum is assumed incorrect; any reference misses.
    Invalid,
    /// The datum is valid and consistent with main memory; reads hit
    /// (RB/RWB `R`).
    Readable,
    /// The datum can be read *and written* locally with no bus activity;
    /// this cache holds the only up-to-date copy (RB/RWB `L`).
    Local,
    /// RWB only: this cache performed the most recent `c` uninterrupted
    /// write(s); one more uninterrupted write (at `c = k-1`) claims the
    /// datum as local.
    FirstWrite(u8),
    /// Baselines only: present and consistent with memory.
    Valid,
    /// Write-once only: written exactly once since load; memory is
    /// current (the write was written through).
    Reserved,
    /// Write-once only: written more than once; memory is stale and this
    /// cache must supply the data and write back on eviction.
    Dirty,
}

impl LineState {
    /// The single-letter tag used in the paper's figures
    /// (`R`, `I`, `L`, `F`) and their natural extensions for the
    /// baselines (`V`, `S`, `D`).
    pub fn letter(self) -> char {
        match self {
            LineState::Invalid => 'I',
            LineState::Readable => 'R',
            LineState::Local => 'L',
            LineState::FirstWrite(_) => 'F',
            LineState::Valid => 'V',
            LineState::Reserved => 'S',
            LineState::Dirty => 'D',
        }
    }

    /// Returns `true` if a CPU read of a line in this state can be served
    /// from the cache without bus activity.
    pub fn is_readable_locally(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Returns `true` if this state marks the holder as owning the only
    /// up-to-date copy (stale memory): RB/RWB `Local` and write-once
    /// `Dirty`.
    pub fn owns_latest(self) -> bool {
        matches!(self, LineState::Local | LineState::Dirty)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineState::FirstWrite(c) if *c > 1 => write!(f, "F{c}"),
            other => write!(f, "{}", other.letter()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_match_paper_figures() {
        assert_eq!(LineState::Readable.letter(), 'R');
        assert_eq!(LineState::Invalid.letter(), 'I');
        assert_eq!(LineState::Local.letter(), 'L');
        assert_eq!(LineState::FirstWrite(1).letter(), 'F');
    }

    #[test]
    fn display_elides_count_one() {
        assert_eq!(LineState::FirstWrite(1).to_string(), "F");
        assert_eq!(LineState::FirstWrite(3).to_string(), "F3");
        assert_eq!(LineState::Local.to_string(), "L");
    }

    #[test]
    fn local_readability() {
        assert!(!LineState::Invalid.is_readable_locally());
        for s in [
            LineState::Readable,
            LineState::Local,
            LineState::FirstWrite(1),
            LineState::Valid,
            LineState::Reserved,
            LineState::Dirty,
        ] {
            assert!(s.is_readable_locally(), "{s} should read locally");
        }
    }

    #[test]
    fn latest_value_owners() {
        assert!(LineState::Local.owns_latest());
        assert!(LineState::Dirty.owns_latest());
        assert!(!LineState::Readable.owns_latest());
        assert!(!LineState::FirstWrite(1).owns_latest());
        assert!(!LineState::Reserved.owns_latest());
    }
}
