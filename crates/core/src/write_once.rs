//! Goodman's write-once scheme [GOO83], the baseline RB/RWB extend.

use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent, SnoopOutcome};
use LineState::{Dirty, Invalid, Reserved, Valid};

/// Goodman's *write-once* protocol (Goodman, "Using Cache Memory to
/// Reduce Processor-Memory Traffic", ISCA 1983) — the scheme the paper
/// explicitly builds on: "Our scheme is in many ways an extension of the
/// one presented by Goodman ... The Goodman scheme may be classified as
/// 'event broadcasting', whereas in our proposed schemes events and data
/// values are broadcast" (Section 1).
///
/// Four states per line:
///
/// * `Invalid` — not usable;
/// * `Valid` — consistent with memory, possibly shared;
/// * `Reserved` (displayed `S`) — written exactly once since load; that
///   write went through to memory, so memory is current and no other
///   cache holds a copy;
/// * `Dirty` — written more than once; memory is stale; this cache must
///   supply the data on foreign reads and write back on eviction.
///
/// Being event-broadcasting, snooping caches **never capture bus data**:
/// a foreign read fills only the requester, and invalid holders stay
/// invalid. This is exactly the capability gap the RB read broadcast
/// closes, and the protocol-comparison experiment (E13) measures it.
///
/// # Examples
///
/// ```
/// use decache_core::{CpuOutcome, LineState, Protocol, WriteOnce};
///
/// let wo = WriteOnce::new();
/// // Second write to the same line stays in the cache (write-back):
/// assert_eq!(
///     wo.cpu_write(Some(LineState::Reserved)),
///     CpuOutcome::Hit { next: LineState::Dirty }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOnce;

impl WriteOnce {
    /// Creates the write-once protocol.
    pub fn new() -> Self {
        WriteOnce
    }

    fn check(&self, state: LineState) -> LineState {
        assert!(
            matches!(state, Invalid | Valid | Reserved | Dirty),
            "write-once has no state {state:?}"
        );
        state
    }
}

impl Protocol for WriteOnce {
    fn name(&self) -> String {
        "write-once".to_owned()
    }

    fn states(&self) -> Vec<LineState> {
        vec![Invalid, Valid, Reserved, Dirty]
    }

    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            None | Some(Invalid) => CpuOutcome::Miss {
                intent: BusIntent::Read,
            },
            Some(s @ (Valid | Reserved | Dirty)) => CpuOutcome::Hit { next: s },
            Some(_) => unreachable!(),
        }
    }

    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            // The first write is written through (the "write once"),
            // announcing the write so other copies invalidate. A write
            // miss allocates via the same write-through (sound with
            // one-word blocks: the whole block is overwritten).
            None | Some(Invalid) | Some(Valid) => CpuOutcome::Miss {
                intent: BusIntent::Write,
            },
            // Subsequent writes stay in the cache.
            Some(Reserved | Dirty) => CpuOutcome::Hit { next: Dirty },
            Some(_) => unreachable!(),
        }
    }

    fn own_complete(&self, _state: Option<LineState>, intent: BusIntent) -> LineState {
        match intent {
            BusIntent::Read => Valid,
            BusIntent::Write => Reserved,
            BusIntent::Invalidate => unreachable!("write-once never issues a bus invalidate"),
        }
    }

    fn own_locked_read_complete(&self, _state: Option<LineState>) -> LineState {
        Valid
    }

    fn own_unlock_write_complete(&self, _state: Option<LineState>) -> LineState {
        // The unlocking write went through to memory: one write since
        // load, i.e. Reserved.
        Reserved
    }

    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        match (self.check(state), event) {
            // Event broadcasting only: no data capture, ever.
            (Invalid, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::unchanged(Invalid)
            }
            (Valid, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => {
                SnoopOutcome::unchanged(Valid)
            }
            // A foreign read of a Reserved line means another cache now
            // holds a copy; a later silent Reserved->Dirty write would
            // leave that copy stale, so demote to Valid.
            (Reserved, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => SnoopOutcome::to(Valid),
            // The Dirty holder supplies the data via the interrupt path
            // and lands in Valid; this arm keeps the function total.
            (Dirty, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => SnoopOutcome::to(Valid),

            // Any foreign write invalidates.
            (_, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_) | SnoopEvent::Invalidate) => {
                SnoopOutcome::to(Invalid)
            }

            (s, e) => unreachable!("write-once snoop in state {s:?} on {e:?}"),
        }
    }

    fn supplies_on_snoop_read(&self, state: LineState) -> bool {
        self.check(state) == Dirty
    }

    fn after_supply(&self, state: LineState) -> LineState {
        debug_assert_eq!(self.check(state), Dirty);
        Valid
    }

    fn writeback_on_evict(&self, state: LineState) -> bool {
        self.check(state) == Dirty
    }

    fn broadcasts_write_data(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_mem::Word;

    fn w(v: u64) -> Word {
        Word::new(v)
    }

    #[test]
    fn read_miss_fills_only_requester() {
        let p = WriteOnce::new();
        assert_eq!(
            p.cpu_read(None),
            CpuOutcome::Miss {
                intent: BusIntent::Read
            }
        );
        assert_eq!(p.own_complete(None, BusIntent::Read), Valid);
        // The defining gap vs RB: an invalid holder does NOT capture.
        assert_eq!(
            p.snoop(Invalid, SnoopEvent::Read(w(5))),
            SnoopOutcome::unchanged(Invalid)
        );
    }

    #[test]
    fn first_write_goes_through_to_reserved() {
        let p = WriteOnce::new();
        assert_eq!(
            p.cpu_write(Some(Valid)),
            CpuOutcome::Miss {
                intent: BusIntent::Write
            }
        );
        assert_eq!(p.own_complete(Some(Valid), BusIntent::Write), Reserved);
    }

    #[test]
    fn second_write_is_silent_and_dirty() {
        let p = WriteOnce::new();
        assert_eq!(p.cpu_write(Some(Reserved)), CpuOutcome::Hit { next: Dirty });
        assert_eq!(p.cpu_write(Some(Dirty)), CpuOutcome::Hit { next: Dirty });
    }

    #[test]
    fn dirty_holder_supplies_and_demotes() {
        let p = WriteOnce::new();
        assert!(p.supplies_on_snoop_read(Dirty));
        assert!(!p.supplies_on_snoop_read(Reserved));
        assert!(!p.supplies_on_snoop_read(Valid));
        assert_eq!(p.after_supply(Dirty), Valid);
    }

    #[test]
    fn reserved_demotes_on_foreign_read() {
        let p = WriteOnce::new();
        assert_eq!(
            p.snoop(Reserved, SnoopEvent::Read(w(1))),
            SnoopOutcome::to(Valid)
        );
    }

    #[test]
    fn foreign_writes_invalidate_every_state() {
        let p = WriteOnce::new();
        for s in [Invalid, Valid, Reserved, Dirty] {
            assert_eq!(
                p.snoop(s, SnoopEvent::Write(w(9))),
                SnoopOutcome::to(Invalid)
            );
            assert_eq!(
                p.snoop(s, SnoopEvent::UnlockWrite(w(9))),
                SnoopOutcome::to(Invalid)
            );
        }
    }

    #[test]
    fn only_dirty_writes_back() {
        let p = WriteOnce::new();
        assert!(p.writeback_on_evict(Dirty));
        assert!(!p.writeback_on_evict(Reserved));
        assert!(!p.writeback_on_evict(Valid));
        assert!(!p.writeback_on_evict(Invalid));
    }

    #[test]
    fn rmw_hooks() {
        let p = WriteOnce::new();
        assert_eq!(p.own_locked_read_complete(None), Valid);
        assert_eq!(p.own_unlock_write_complete(Some(Valid)), Reserved);
    }

    #[test]
    fn identity() {
        let p = WriteOnce::new();
        assert_eq!(p.name(), "write-once");
        assert_eq!(p.states(), vec![Invalid, Valid, Reserved, Dirty]);
        assert!(!p.broadcasts_write_data());
    }

    #[test]
    #[should_panic(expected = "write-once has no state")]
    fn foreign_state_panics() {
        let _ = WriteOnce::new().cpu_read(Some(LineState::Local));
    }
}
