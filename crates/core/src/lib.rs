//! # decache-core
//!
//! The paper's primary contribution: **dynamic decentralized cache
//! coherence schemes** for a shared-bus MIMD multiprocessor.
//!
//! Rudolph & Segall (1984) propose two snooping protocols:
//!
//! * **RB** ([`Rb`], Figure 3-1): three per-line states — `R`eadable,
//!   `I`nvalid, `L`ocal. Values fetched by any bus read are *broadcast*:
//!   every cache holding the address captures the value and becomes
//!   readable. Writes are write-through and invalidate other copies,
//!   dynamically reclassifying the datum as local to the writer.
//! * **RWB** ([`Rwb`], Figure 5-1): additionally snoops the *data* of bus
//!   writes and adds a `F`irst-write state plus a **bus invalidate**
//!   signal. A datum only reverts to the local configuration after `k`
//!   uninterrupted writes by one processor (the paper uses `k = 2`).
//!
//! Two classic schemes are implemented as baselines: Goodman's
//! *write-once* ([`WriteOnce`], the "event broadcasting" scheme the paper
//! extends) and plain *write-through-invalidate* ([`WriteThrough`]).
//!
//! All protocols implement the [`Protocol`] trait: a per-line finite state
//! machine consulted by the cache controller on CPU references, on
//! completion of its own bus transactions, and on snooped foreign
//! transactions. The trait is deliberately *pure* (no `&mut self`, no side
//! effects): protocols map observations to [`CpuOutcome`]/[`SnoopOutcome`]
//! decisions, and the machine crate applies them. That purity is what
//! makes the product-machine proof of `decache-verify` executable.
//!
//! # Examples
//!
//! ```
//! use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, Rb};
//!
//! let rb = Rb::new();
//! // A CPU write to a readable (shared) line is a write-through:
//! match rb.cpu_write(Some(LineState::Readable)) {
//!     CpuOutcome::Miss { intent } => assert_eq!(intent, BusIntent::Write),
//!     CpuOutcome::Hit { .. } => unreachable!("RB write to R must reach the bus"),
//! }
//! // ... after which the line is local to the writer:
//! assert_eq!(
//!     rb.own_complete(Some(LineState::Readable), BusIntent::Write),
//!     LineState::Local
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod config;
mod diagram;
pub mod introspect;
pub mod ir;
mod kind;
mod protocol;
mod rb;
mod rwb;
mod state;
mod write_once;
mod write_through;

pub use any::AnyProtocol;
pub use config::Configuration;
pub use diagram::{to_dot, transition_table, Stimulus, TransitionRow};
pub use kind::ProtocolKind;
pub use protocol::{BusIntent, CpuOutcome, Protocol, SnoopEvent, SnoopOutcome};
pub use rb::Rb;
pub use rwb::Rwb;
pub use state::LineState;
pub use write_once::WriteOnce;
pub use write_through::WriteThrough;
