//! Plain write-through-invalidate, the simplest consistent baseline.

use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent, SnoopOutcome};
use LineState::{Invalid, Valid};

/// Write-through-with-invalidation: two states, every write goes to the
/// bus, and snooped writes invalidate.
///
/// This is the behaviour of the Cm* emulation cache generalized to cache
/// shared data too — the natural "do nothing clever" baseline against
/// which the paper's dynamic classification shows its value: every write
/// to a local variable still costs a bus cycle, which is exactly the
/// constant "Local Writes" miss column of Table 1-1.
///
/// # Examples
///
/// ```
/// use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, WriteThrough};
///
/// let wt = WriteThrough::new();
/// // Even a write to a valid line pays a bus write:
/// assert_eq!(
///     wt.cpu_write(Some(LineState::Valid)),
///     CpuOutcome::Miss { intent: BusIntent::Write }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteThrough;

impl WriteThrough {
    /// Creates the write-through protocol.
    pub fn new() -> Self {
        WriteThrough
    }

    fn check(&self, state: LineState) -> LineState {
        assert!(
            matches!(state, Invalid | Valid),
            "write-through has no state {state:?}"
        );
        state
    }
}

impl Protocol for WriteThrough {
    fn name(&self) -> String {
        "write-through".to_owned()
    }

    fn states(&self) -> Vec<LineState> {
        vec![Invalid, Valid]
    }

    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        match state.map(|s| self.check(s)) {
            None | Some(Invalid) => CpuOutcome::Miss {
                intent: BusIntent::Read,
            },
            Some(Valid) => CpuOutcome::Hit { next: Valid },
            Some(_) => unreachable!(),
        }
    }

    fn cpu_write(&self, _state: Option<LineState>) -> CpuOutcome {
        // Every write is written through, hit or miss.
        CpuOutcome::Miss {
            intent: BusIntent::Write,
        }
    }

    fn own_complete(&self, _state: Option<LineState>, intent: BusIntent) -> LineState {
        match intent {
            BusIntent::Read | BusIntent::Write => Valid,
            BusIntent::Invalidate => unreachable!("write-through never issues a bus invalidate"),
        }
    }

    fn own_locked_read_complete(&self, _state: Option<LineState>) -> LineState {
        Valid
    }

    fn own_unlock_write_complete(&self, _state: Option<LineState>) -> LineState {
        Valid
    }

    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        match (self.check(state), event) {
            (s, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) => SnoopOutcome::unchanged(s),
            (_, SnoopEvent::Write(_) | SnoopEvent::UnlockWrite(_) | SnoopEvent::Invalidate) => {
                SnoopOutcome::to(Invalid)
            }
        }
    }

    fn supplies_on_snoop_read(&self, _state: LineState) -> bool {
        // Memory is always current under write-through.
        false
    }

    fn after_supply(&self, state: LineState) -> LineState {
        unreachable!("write-through never supplies (asked in state {state:?})")
    }

    fn writeback_on_evict(&self, _state: LineState) -> bool {
        false
    }

    fn broadcasts_write_data(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_mem::Word;

    #[test]
    fn reads_hit_when_valid() {
        let p = WriteThrough::new();
        assert_eq!(p.cpu_read(Some(Valid)), CpuOutcome::Hit { next: Valid });
        assert_eq!(
            p.cpu_read(Some(Invalid)),
            CpuOutcome::Miss {
                intent: BusIntent::Read
            }
        );
        assert_eq!(p.cpu_read(None), p.cpu_read(Some(Invalid)));
    }

    #[test]
    fn every_write_reaches_the_bus() {
        let p = WriteThrough::new();
        for s in [None, Some(Invalid), Some(Valid)] {
            assert_eq!(
                p.cpu_write(s),
                CpuOutcome::Miss {
                    intent: BusIntent::Write
                }
            );
        }
        assert_eq!(p.own_complete(Some(Valid), BusIntent::Write), Valid);
    }

    #[test]
    fn foreign_writes_invalidate() {
        let p = WriteThrough::new();
        assert_eq!(
            p.snoop(Valid, SnoopEvent::Write(Word::ONE)),
            SnoopOutcome::to(Invalid)
        );
        assert_eq!(
            p.snoop(Valid, SnoopEvent::Read(Word::ONE)),
            SnoopOutcome::unchanged(Valid)
        );
        // No read broadcast: invalid holders stay invalid.
        assert_eq!(
            p.snoop(Invalid, SnoopEvent::Read(Word::ONE)),
            SnoopOutcome::unchanged(Invalid)
        );
    }

    #[test]
    fn never_supplies_never_writes_back() {
        let p = WriteThrough::new();
        assert!(!p.supplies_on_snoop_read(Valid));
        assert!(!p.writeback_on_evict(Valid));
        assert!(!p.broadcasts_write_data());
    }

    #[test]
    fn identity() {
        let p = WriteThrough::new();
        assert_eq!(p.name(), "write-through");
        assert_eq!(p.states(), vec![Invalid, Valid]);
    }

    #[test]
    #[should_panic(expected = "write-through has no state")]
    fn foreign_state_panics() {
        let _ = WriteThrough::new().cpu_read(Some(LineState::Local));
    }
}
