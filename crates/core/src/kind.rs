//! Value-level protocol selection for experiment sweeps.

use crate::ir::{self, TableProtocol};
use crate::{Protocol, Rb, Rwb, WriteOnce, WriteThrough};
use std::fmt;

/// Names one of the built-in coherence protocols; used to configure
/// machines and to sweep protocols in experiments.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
///
/// let protocol = ProtocolKind::Rwb.build();
/// assert_eq!(protocol.name(), "RWB");
/// for kind in ProtocolKind::ALL {
///     let _ = kind.build();
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The RB scheme (Section 3).
    Rb,
    /// RB with read broadcasting disabled (ablation A3).
    RbNoBroadcast,
    /// The RWB scheme with the paper's default threshold `k = 2`
    /// (Section 5).
    Rwb,
    /// RWB with an explicit locality threshold (footnote 6; ablation A1).
    RwbThreshold(u8),
    /// Goodman's write-once baseline.
    WriteOnce,
    /// Plain write-through-invalidate baseline.
    WriteThrough,
    /// The MESI protocol, defined purely as guarded-action IR data
    /// ([`crate::ir::mesi`]) and executed by the generic rule
    /// interpreter — no dedicated engine code.
    Mesi,
}

impl ProtocolKind {
    /// The four headline protocols compared by experiment E13.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Rb,
        ProtocolKind::Rwb,
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
    ];

    /// Instantiates the protocol.
    ///
    /// # Panics
    ///
    /// Panics if a [`ProtocolKind::RwbThreshold`] value is out of range
    /// (see [`Rwb::with_threshold`]).
    pub fn build(self) -> Box<dyn Protocol> {
        match self {
            ProtocolKind::Rb => Box::new(Rb::new()),
            ProtocolKind::RbNoBroadcast => Box::new(Rb::without_read_broadcast()),
            ProtocolKind::Rwb => Box::new(Rwb::new()),
            ProtocolKind::RwbThreshold(k) => Box::new(Rwb::with_threshold(k)),
            ProtocolKind::WriteOnce => Box::new(WriteOnce::new()),
            ProtocolKind::WriteThrough => Box::new(WriteThrough::new()),
            ProtocolKind::Mesi => Box::new(TableProtocol::new(ir::mesi())),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate to the built protocol so names stay in one place.
        write!(f, "{}", self.build().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_the_named_protocol() {
        assert_eq!(ProtocolKind::Rb.build().name(), "RB");
        assert_eq!(
            ProtocolKind::RbNoBroadcast.build().name(),
            "RB-no-broadcast"
        );
        assert_eq!(ProtocolKind::Rwb.build().name(), "RWB");
        assert_eq!(ProtocolKind::RwbThreshold(3).build().name(), "RWB(k=3)");
        assert_eq!(ProtocolKind::WriteOnce.build().name(), "write-once");
        assert_eq!(ProtocolKind::WriteThrough.build().name(), "write-through");
        assert_eq!(ProtocolKind::Mesi.build().name(), "MESI");
    }

    #[test]
    fn display_matches_protocol_name() {
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.to_string(), kind.build().name());
        }
    }

    #[test]
    fn all_contains_distinct_protocols() {
        let names: std::collections::HashSet<String> =
            ProtocolKind::ALL.iter().map(|k| k.build().name()).collect();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
    }
}
