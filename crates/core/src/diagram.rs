//! State-transition-diagram extraction (Figures 3-1 and 5-1).
//!
//! The paper presents each scheme as a per-line state transition diagram
//! whose edges are labelled with the triggering request (`CR`, `CW`,
//! `BR`, `BW`, `BI`) and a modifier describing the side action (generate
//! a bus write, interrupt and supply, ...). [`transition_table`] recovers
//! that diagram mechanically from any [`Protocol`] implementation, and
//! [`to_dot`] renders it as Graphviz DOT — this is how the `figure_3_1`
//! and `figure_5_1` experiment binaries regenerate the figures, and how
//! tests pin every edge.

use crate::{CpuOutcome, LineState, Protocol, SnoopEvent};
use decache_mem::Word;
use std::fmt;

/// The stimulus labels of the figures' legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stimulus {
    /// `CR` — CPU read request.
    CpuRead,
    /// `CW` — CPU write request.
    CpuWrite,
    /// `BR` — a foreign bus read (snooped).
    BusRead,
    /// `BW` — a foreign bus write (snooped).
    BusWrite,
    /// `BI` — a foreign bus invalidate (snooped; RWB only).
    BusInvalidate,
}

impl Stimulus {
    /// All stimuli in legend order.
    pub const ALL: [Stimulus; 5] = [
        Stimulus::CpuRead,
        Stimulus::CpuWrite,
        Stimulus::BusRead,
        Stimulus::BusWrite,
        Stimulus::BusInvalidate,
    ];
}

impl fmt::Display for Stimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stimulus::CpuRead => write!(f, "CR"),
            Stimulus::CpuWrite => write!(f, "CW"),
            Stimulus::BusRead => write!(f, "BR"),
            Stimulus::BusWrite => write!(f, "BW"),
            Stimulus::BusInvalidate => write!(f, "BI"),
        }
    }
}

/// One edge of the state transition diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRow {
    /// Source state.
    pub from: LineState,
    /// The triggering request.
    pub stimulus: Stimulus,
    /// Destination state.
    pub to: LineState,
    /// The figure's "modifier": the side action taken during the
    /// transition (empty when none). Matches the legends of Figures 3-1
    /// and 5-1: "generate a BW (write through)", "interrupt BR and supply
    /// the data from the cache", "generate a BR (cache miss)",
    /// "generate a BI".
    pub modifier: String,
}

impl fmt::Display for TransitionRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.modifier.is_empty() {
            write!(f, "{} --{}--> {}", self.from, self.stimulus, self.to)
        } else {
            write!(
                f,
                "{} --{} [{}]--> {}",
                self.from, self.stimulus, self.modifier, self.to
            )
        }
    }
}

/// Extracts the complete per-line state transition diagram of a protocol
/// by driving every state through every stimulus.
///
/// For CPU requests that miss, the destination is the state after the
/// protocol's own bus transaction completes, and the modifier names the
/// generated transaction — exactly the convention of the paper's figures.
pub fn transition_table(protocol: &dyn Protocol) -> Vec<TransitionRow> {
    let probe = Word::ZERO;
    let mut rows = Vec::new();

    for from in protocol.states() {
        // CPU read.
        rows.push(match protocol.cpu_read(Some(from)) {
            CpuOutcome::Hit { next } => TransitionRow {
                from,
                stimulus: Stimulus::CpuRead,
                to: next,
                modifier: String::new(),
            },
            CpuOutcome::Miss { intent } => TransitionRow {
                from,
                stimulus: Stimulus::CpuRead,
                to: protocol.own_complete(Some(from), intent),
                modifier: format!("generate {intent}"),
            },
        });

        // CPU write.
        rows.push(match protocol.cpu_write(Some(from)) {
            CpuOutcome::Hit { next } => TransitionRow {
                from,
                stimulus: Stimulus::CpuWrite,
                to: next,
                modifier: String::new(),
            },
            CpuOutcome::Miss { intent } => TransitionRow {
                from,
                stimulus: Stimulus::CpuWrite,
                to: protocol.own_complete(Some(from), intent),
                modifier: format!("generate {intent}"),
            },
        });

        // Snooped bus read: the supply path takes precedence, exactly as
        // in the figures ("interrupt BR and supply the data").
        if protocol.supplies_on_snoop_read(from) {
            rows.push(TransitionRow {
                from,
                stimulus: Stimulus::BusRead,
                to: protocol.after_supply(from),
                modifier: "interrupt BR, supply data".to_owned(),
            });
        } else {
            let out = protocol.snoop(from, SnoopEvent::Read(probe));
            rows.push(TransitionRow {
                from,
                stimulus: Stimulus::BusRead,
                to: out.next,
                modifier: if out.capture {
                    "capture data".to_owned()
                } else {
                    String::new()
                },
            });
        }

        // Snooped bus write.
        let out = protocol.snoop(from, SnoopEvent::Write(probe));
        rows.push(TransitionRow {
            from,
            stimulus: Stimulus::BusWrite,
            to: out.next,
            modifier: if out.capture {
                "capture data".to_owned()
            } else {
                String::new()
            },
        });

        // Snooped bus invalidate — only for protocols that can emit it.
        if protocol.uses_bus_invalidate() {
            let out = protocol.snoop(from, SnoopEvent::Invalidate);
            rows.push(TransitionRow {
                from,
                stimulus: Stimulus::BusInvalidate,
                to: out.next,
                modifier: String::new(),
            });
        }
    }
    rows
}

/// Renders a transition table as a Graphviz DOT digraph.
///
/// # Examples
///
/// ```
/// use decache_core::{to_dot, transition_table, Rb};
/// let dot = to_dot("RB", &transition_table(&Rb::new()));
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("R -> L"));
/// ```
pub fn to_dot(title: &str, rows: &[TransitionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{title}\" {{\n"));
    out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    for row in rows {
        let label = if row.modifier.is_empty() {
            row.stimulus.to_string()
        } else {
            format!("{} / {}", row.stimulus, row.modifier)
        };
        out.push_str(&format!(
            "  {} -> {} [label=\"{}\"];\n",
            row.from, row.to, label
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rb, Rwb, WriteOnce};
    use LineState::{FirstWrite, Invalid, Local, Readable};

    fn find(rows: &[TransitionRow], from: LineState, stimulus: Stimulus) -> &TransitionRow {
        rows.iter()
            .find(|r| r.from == from && r.stimulus == stimulus)
            .unwrap_or_else(|| panic!("no row for {from} on {stimulus}"))
    }

    #[test]
    fn rb_table_matches_figure_3_1() {
        let rows = transition_table(&Rb::new());
        // 3 states x 4 stimuli (no BI edge for RB).
        assert_eq!(rows.len(), 12);

        // The nine transitions of Figure 3-1:
        assert_eq!(find(&rows, Readable, Stimulus::CpuRead).to, Readable);
        let r = find(&rows, Readable, Stimulus::CpuWrite);
        assert_eq!(r.to, Local);
        assert_eq!(r.modifier, "generate BW");
        assert_eq!(find(&rows, Readable, Stimulus::BusRead).to, Readable);
        assert_eq!(find(&rows, Readable, Stimulus::BusWrite).to, Invalid);

        let r = find(&rows, Invalid, Stimulus::CpuRead);
        assert_eq!(r.to, Readable);
        assert_eq!(r.modifier, "generate BR");
        let r = find(&rows, Invalid, Stimulus::CpuWrite);
        assert_eq!(r.to, Local);
        assert_eq!(r.modifier, "generate BW");
        let r = find(&rows, Invalid, Stimulus::BusRead);
        assert_eq!(r.to, Readable);
        assert_eq!(r.modifier, "capture data");
        assert_eq!(find(&rows, Invalid, Stimulus::BusWrite).to, Invalid);

        assert_eq!(find(&rows, Local, Stimulus::CpuRead).to, Local);
        assert_eq!(find(&rows, Local, Stimulus::CpuWrite).to, Local);
        let r = find(&rows, Local, Stimulus::BusRead);
        assert_eq!(r.to, Readable);
        assert_eq!(r.modifier, "interrupt BR, supply data");
        assert_eq!(find(&rows, Local, Stimulus::BusWrite).to, Invalid);
    }

    #[test]
    fn rwb_table_matches_figure_5_1() {
        let rows = transition_table(&Rwb::new());
        // 4 states x 5 stimuli (BI included).
        assert_eq!(rows.len(), 20);

        let r = find(&rows, Readable, Stimulus::CpuWrite);
        assert_eq!(r.to, FirstWrite(1));
        assert_eq!(r.modifier, "generate BW");

        let r = find(&rows, FirstWrite(1), Stimulus::CpuWrite);
        assert_eq!(r.to, Local);
        assert_eq!(r.modifier, "generate BI");

        assert_eq!(
            find(&rows, FirstWrite(1), Stimulus::CpuRead).to,
            FirstWrite(1)
        );
        assert_eq!(
            find(&rows, FirstWrite(1), Stimulus::BusRead).to,
            FirstWrite(1)
        );
        let r = find(&rows, FirstWrite(1), Stimulus::BusWrite);
        assert_eq!(r.to, Readable);
        assert_eq!(r.modifier, "capture data");
        assert_eq!(
            find(&rows, FirstWrite(1), Stimulus::BusInvalidate).to,
            Invalid
        );

        let r = find(&rows, Readable, Stimulus::BusWrite);
        assert_eq!(r.to, Readable);
        assert_eq!(r.modifier, "capture data");

        assert_eq!(find(&rows, Local, Stimulus::BusInvalidate).to, Invalid);
        assert_eq!(find(&rows, Invalid, Stimulus::BusInvalidate).to, Invalid);
    }

    #[test]
    fn write_once_has_no_capture_edges() {
        let rows = transition_table(&WriteOnce::new());
        assert!(rows.iter().all(|r| r.modifier != "capture data"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let rows = transition_table(&Rb::new());
        let dot = to_dot("RB", &rows);
        assert!(dot.starts_with("digraph \"RB\" {"));
        assert!(dot.trim_end().ends_with('}'));
        // One edge line per row.
        assert_eq!(dot.matches(" -> ").count(), rows.len());
    }

    #[test]
    fn row_display_is_readable() {
        let rows = transition_table(&Rb::new());
        let r = find(&rows, Invalid, Stimulus::CpuRead);
        assert_eq!(r.to_string(), "I --CR [generate BR]--> R");
        let r = find(&rows, Readable, Stimulus::CpuRead);
        assert_eq!(r.to_string(), "R --CR--> R");
    }

    #[test]
    fn stimulus_display() {
        let labels: Vec<String> = Stimulus::ALL
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(labels, vec!["CR", "CW", "BR", "BW", "BI"]);
    }
}
