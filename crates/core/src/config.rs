//! Configuration classification: the vocabulary of the Section 4 lemma.

use crate::LineState;
use std::fmt;

/// The classification of "the collection of cache states for a particular
/// address" (Section 3).
///
/// The paper's consistency lemma states that for RB only two
/// configurations are reachable — *shared* and *local* — and RWB adds the
/// *intermediate* configuration (one first-writer, the rest readable).
/// [`Configuration::classify`] decides which one a state vector is in, or
/// reports it [`Configuration::Illegal`]; the product-machine checker in
/// `decache-verify` asserts that `Illegal` is unreachable.
///
/// # Examples
///
/// ```
/// use decache_core::{Configuration, LineState};
/// use LineState::{Invalid, Local, Readable};
///
/// assert_eq!(
///     Configuration::classify(&[Readable, Readable, Readable]),
///     Configuration::Shared
/// );
/// assert_eq!(
///     Configuration::classify(&[Invalid, Local, Invalid]),
///     Configuration::Local
/// );
/// assert_eq!(
///     Configuration::classify(&[Local, Local, Invalid]),
///     Configuration::Illegal
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Configuration {
    /// All holders can read: every cache containing the address is in a
    /// readable, memory-consistent state (`R`/`V`), possibly mixed with
    /// invalid holders.
    Shared,
    /// Exactly one cache owns the only up-to-date copy (`L`/`D`) and
    /// every other holder is invalid.
    Local,
    /// RWB's in-between: exactly one first-writer (`F`, or write-once
    /// `Reserved`), memory current, every other holder readable or
    /// invalid.
    Intermediate,
    /// Any other combination — forbidden by the Section 4 lemma.
    Illegal,
}

impl Configuration {
    /// Classifies the states of all caches *holding* the address (caches
    /// without the line are omitted; an empty slice classifies as
    /// [`Configuration::Shared`], the memory-only initial state).
    pub fn classify(states: &[LineState]) -> Configuration {
        use LineState::*;
        let owners = states.iter().filter(|s| s.owns_latest()).count();
        let firsts = states
            .iter()
            .filter(|s| matches!(s, FirstWrite(_) | Reserved))
            .count();

        match (owners, firsts) {
            (0, 0) => {
                if states
                    .iter()
                    .all(|s| matches!(s, Readable | Invalid | Valid))
                {
                    Configuration::Shared
                } else {
                    Configuration::Illegal
                }
            }
            (1, 0) => {
                if states
                    .iter()
                    .all(|s| s.owns_latest() || matches!(s, Invalid))
                {
                    Configuration::Local
                } else {
                    Configuration::Illegal
                }
            }
            (0, 1) => {
                if states
                    .iter()
                    .all(|s| matches!(s, FirstWrite(_) | Reserved | Readable | Invalid | Valid))
                {
                    Configuration::Intermediate
                } else {
                    Configuration::Illegal
                }
            }
            _ => Configuration::Illegal,
        }
    }

    /// Returns `true` for the configurations the Section 4 lemma permits
    /// under RB (shared or local).
    pub fn is_rb_legal(self) -> bool {
        matches!(self, Configuration::Shared | Configuration::Local)
    }

    /// Returns `true` for the configurations reachable under RWB (shared,
    /// local, or intermediate).
    pub fn is_rwb_legal(self) -> bool {
        !matches!(self, Configuration::Illegal)
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Configuration::Shared => write!(f, "shared"),
            Configuration::Local => write!(f, "local"),
            Configuration::Intermediate => write!(f, "intermediate"),
            Configuration::Illegal => write!(f, "ILLEGAL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn empty_vector_is_shared() {
        assert_eq!(Configuration::classify(&[]), Configuration::Shared);
    }

    #[test]
    fn all_readable_is_shared() {
        assert_eq!(
            Configuration::classify(&[Readable, Readable]),
            Configuration::Shared
        );
        assert_eq!(
            Configuration::classify(&[Readable, Invalid, Readable]),
            Configuration::Shared
        );
        assert_eq!(Configuration::classify(&[Invalid]), Configuration::Shared);
    }

    #[test]
    fn one_local_rest_invalid_is_local() {
        assert_eq!(
            Configuration::classify(&[Invalid, Local]),
            Configuration::Local
        );
        assert_eq!(Configuration::classify(&[Local]), Configuration::Local);
        assert_eq!(
            Configuration::classify(&[Dirty, Invalid]),
            Configuration::Local
        );
    }

    #[test]
    fn local_with_readable_copy_is_illegal() {
        // A readable copy alongside a local owner would let some PE read
        // a stale value — exactly what the lemma rules out.
        assert_eq!(
            Configuration::classify(&[Local, Readable]),
            Configuration::Illegal
        );
    }

    #[test]
    fn two_owners_is_illegal() {
        assert_eq!(
            Configuration::classify(&[Local, Local]),
            Configuration::Illegal
        );
        assert_eq!(
            Configuration::classify(&[Local, Dirty]),
            Configuration::Illegal
        );
    }

    #[test]
    fn one_first_writer_rest_readable_is_intermediate() {
        assert_eq!(
            Configuration::classify(&[FirstWrite(1), Readable, Readable]),
            Configuration::Intermediate
        );
        assert_eq!(
            Configuration::classify(&[FirstWrite(1), Invalid]),
            Configuration::Intermediate
        );
        assert_eq!(
            Configuration::classify(&[Reserved, Invalid]),
            Configuration::Intermediate
        );
    }

    #[test]
    fn two_first_writers_is_illegal() {
        assert_eq!(
            Configuration::classify(&[FirstWrite(1), FirstWrite(1)]),
            Configuration::Illegal
        );
    }

    #[test]
    fn first_writer_with_owner_is_illegal() {
        assert_eq!(
            Configuration::classify(&[FirstWrite(1), Local]),
            Configuration::Illegal
        );
    }

    #[test]
    fn legality_predicates() {
        assert!(Configuration::Shared.is_rb_legal());
        assert!(Configuration::Local.is_rb_legal());
        assert!(!Configuration::Intermediate.is_rb_legal());
        assert!(Configuration::Intermediate.is_rwb_legal());
        assert!(!Configuration::Illegal.is_rwb_legal());
    }

    #[test]
    fn display_names() {
        assert_eq!(Configuration::Shared.to_string(), "shared");
        assert_eq!(Configuration::Illegal.to_string(), "ILLEGAL");
    }
}
