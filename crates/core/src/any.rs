//! Static dispatch over the built-in protocols.

use crate::ir::{self, TableProtocol};
use crate::{
    BusIntent, CpuOutcome, LineState, Protocol, ProtocolKind, Rb, Rwb, SnoopEvent, SnoopOutcome,
    WriteOnce, WriteThrough,
};

/// A value-level union of the built-in protocols, dispatching every
/// [`Protocol`] method with a direct (inlinable) match instead of a
/// virtual call.
///
/// The simulator consults the protocol several times per bus transaction
/// — once per snooping cache on a broadcast — so the machine stores one
/// of these rather than a `Box<dyn Protocol>`: the per-line FSMs are a
/// handful of instructions each, and static dispatch lets them inline
/// into the snoop loop. Behaviour is identical to the boxed form by
/// construction (each arm delegates to the same concrete method).
///
/// # Examples
///
/// ```
/// use decache_core::{AnyProtocol, LineState, Protocol, ProtocolKind, SnoopEvent};
/// use decache_mem::Word;
///
/// let p = AnyProtocol::build(ProtocolKind::Rb);
/// assert_eq!(p.name(), "RB");
/// let out = p.snoop(LineState::Invalid, SnoopEvent::Read(Word::new(9)));
/// assert!(out.capture);
/// ```
#[derive(Debug, Clone)]
pub enum AnyProtocol {
    /// The RB scheme (either variant).
    Rb(Rb),
    /// The RWB scheme (any threshold).
    Rwb(Rwb),
    /// Goodman's write-once baseline.
    WriteOnce(WriteOnce),
    /// The write-through-invalidate baseline.
    WriteThrough(WriteThrough),
    /// Any table-defined protocol (MESI and future IR-only schemes),
    /// executed by the generic rule interpreter. Dispatch through this
    /// arm is data-driven rather than inlined — acceptable because
    /// table protocols are opt-in and never on the paper schemes' path.
    Table(TableProtocol),
}

impl AnyProtocol {
    /// Instantiates the named protocol, statically dispatched.
    ///
    /// # Panics
    ///
    /// Panics if a [`ProtocolKind::RwbThreshold`] value is out of range
    /// (see [`Rwb::with_threshold`]).
    pub fn build(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::Rb => AnyProtocol::Rb(Rb::new()),
            ProtocolKind::RbNoBroadcast => AnyProtocol::Rb(Rb::without_read_broadcast()),
            ProtocolKind::Rwb => AnyProtocol::Rwb(Rwb::new()),
            ProtocolKind::RwbThreshold(k) => AnyProtocol::Rwb(Rwb::with_threshold(k)),
            ProtocolKind::WriteOnce => AnyProtocol::WriteOnce(WriteOnce::new()),
            ProtocolKind::WriteThrough => AnyProtocol::WriteThrough(WriteThrough::new()),
            ProtocolKind::Mesi => AnyProtocol::Table(TableProtocol::new(ir::mesi())),
        }
    }
}

/// Forwards one method through the four variants.
macro_rules! forward {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyProtocol::Rb($p) => $body,
            AnyProtocol::Rwb($p) => $body,
            AnyProtocol::WriteOnce($p) => $body,
            AnyProtocol::WriteThrough($p) => $body,
            AnyProtocol::Table($p) => $body,
        }
    };
}

impl Protocol for AnyProtocol {
    fn name(&self) -> String {
        forward!(self, p => p.name())
    }

    fn states(&self) -> Vec<LineState> {
        forward!(self, p => p.states())
    }

    #[inline]
    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        forward!(self, p => p.cpu_read(state))
    }

    #[inline]
    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome {
        forward!(self, p => p.cpu_write(state))
    }

    #[inline]
    fn own_complete(&self, state: Option<LineState>, intent: BusIntent) -> LineState {
        forward!(self, p => p.own_complete(state, intent))
    }

    #[inline]
    fn own_locked_read_complete(&self, state: Option<LineState>) -> LineState {
        forward!(self, p => p.own_locked_read_complete(state))
    }

    #[inline]
    fn own_unlock_write_complete(&self, state: Option<LineState>) -> LineState {
        forward!(self, p => p.own_unlock_write_complete(state))
    }

    #[inline]
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        forward!(self, p => p.snoop(state, event))
    }

    #[inline]
    fn supplies_on_snoop_read(&self, state: LineState) -> bool {
        forward!(self, p => p.supplies_on_snoop_read(state))
    }

    #[inline]
    fn after_supply(&self, state: LineState) -> LineState {
        forward!(self, p => p.after_supply(state))
    }

    #[inline]
    fn writeback_on_evict(&self, state: LineState) -> bool {
        forward!(self, p => p.writeback_on_evict(state))
    }

    fn broadcasts_write_data(&self) -> bool {
        forward!(self, p => p.broadcasts_write_data())
    }

    fn uses_bus_invalidate(&self) -> bool {
        forward!(self, p => p.uses_bus_invalidate())
    }

    fn fill_depends_on_sharers(&self) -> bool {
        forward!(self, p => p.fill_depends_on_sharers())
    }

    #[inline]
    fn own_complete_shared(
        &self,
        state: Option<LineState>,
        intent: BusIntent,
        other_holders: bool,
    ) -> LineState {
        forward!(self, p => p.own_complete_shared(state, intent, other_holders))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_mem::Word;

    const KINDS: [ProtocolKind; 7] = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(4),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
        ProtocolKind::Mesi,
    ];

    /// The static dispatcher agrees with the boxed protocol on every
    /// method over every declared state and event.
    #[test]
    fn agrees_with_boxed_dispatch_everywhere() {
        for kind in KINDS {
            let boxed = kind.build();
            let fast = AnyProtocol::build(kind);
            assert_eq!(fast.name(), boxed.name());
            assert_eq!(fast.states(), boxed.states());
            assert_eq!(fast.broadcasts_write_data(), boxed.broadcasts_write_data());
            assert_eq!(fast.uses_bus_invalidate(), boxed.uses_bus_invalidate());
            assert_eq!(
                fast.fill_depends_on_sharers(),
                boxed.fill_depends_on_sharers()
            );
            let w = Word::new(7);
            let events = [
                SnoopEvent::Read(w),
                SnoopEvent::Write(w),
                SnoopEvent::Invalidate,
                SnoopEvent::LockedRead(w),
                SnoopEvent::UnlockWrite(w),
            ];
            let states: Vec<Option<LineState>> = std::iter::once(None)
                .chain(boxed.states().into_iter().map(Some))
                .collect();
            for &state in &states {
                assert_eq!(fast.cpu_read(state), boxed.cpu_read(state), "{kind:?}");
                assert_eq!(fast.cpu_write(state), boxed.cpu_write(state), "{kind:?}");
                assert_eq!(
                    fast.own_locked_read_complete(state),
                    boxed.own_locked_read_complete(state)
                );
                assert_eq!(
                    fast.own_unlock_write_complete(state),
                    boxed.own_unlock_write_complete(state)
                );
                for shared in [false, true] {
                    assert_eq!(
                        fast.own_complete_shared(state, BusIntent::Read, shared),
                        boxed.own_complete_shared(state, BusIntent::Read, shared),
                        "{kind:?}"
                    );
                }
                if let Some(s) = state {
                    for event in events {
                        assert_eq!(fast.snoop(s, event), boxed.snoop(s, event), "{kind:?}");
                    }
                    assert_eq!(
                        fast.supplies_on_snoop_read(s),
                        boxed.supplies_on_snoop_read(s)
                    );
                    assert_eq!(fast.writeback_on_evict(s), boxed.writeback_on_evict(s));
                    if fast.supplies_on_snoop_read(s) {
                        assert_eq!(fast.after_supply(s), boxed.after_supply(s));
                    }
                }
            }
        }
    }
}
