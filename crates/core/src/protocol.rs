//! The coherence protocol interface.

use crate::LineState;
use decache_mem::Word;
use std::fmt;

/// The bus transaction a protocol asks its controller to issue on a miss.
///
/// The controller attaches the address and, for writes, the CPU-supplied
/// data; for reads the data comes back from memory or a supplying cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BusIntent {
    /// Issue a bus read (`BR`).
    Read,
    /// Issue a bus write (`BW`) of the CPU's data.
    Write,
    /// Issue the RWB bus invalidate signal (`BI`).
    Invalidate,
}

impl fmt::Display for BusIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusIntent::Read => write!(f, "BR"),
            BusIntent::Write => write!(f, "BW"),
            BusIntent::Invalidate => write!(f, "BI"),
        }
    }
}

/// A protocol's decision for a CPU reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOutcome {
    /// Serve the reference from the cache immediately; the line moves to
    /// `next`. For writes the controller also stores the CPU data in the
    /// line.
    Hit {
        /// The line's state after the reference.
        next: LineState,
    },
    /// The reference requires bus activity first: the processor stalls
    /// until the transaction completes, then
    /// [`Protocol::own_complete`] determines the resulting state.
    Miss {
        /// The transaction to issue.
        intent: BusIntent,
    },
}

impl CpuOutcome {
    /// Convenience predicate: does this outcome complete without the bus?
    pub fn is_hit(self) -> bool {
        matches!(self, CpuOutcome::Hit { .. })
    }
}

/// A foreign bus transaction as observed by a snooping cache, *including
/// the data on the bus* (address and operation are implicit: snooping is
/// per-line and the machine dispatches only to caches holding the line).
///
/// For reads the carried word is the value being returned on the bus —
/// the caches "read the value returned from the read" (Section 3) — and
/// for writes it is the value being stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopEvent {
    /// A completed foreign bus read returning `Word`.
    Read(Word),
    /// A foreign bus write storing `Word`.
    Write(Word),
    /// The RWB bus invalidate signal.
    Invalidate,
    /// A completed foreign locked read (Test-and-Set first half)
    /// returning `Word`.
    LockedRead(Word),
    /// A foreign unlocking write (Test-and-Set second half) storing
    /// `Word`.
    UnlockWrite(Word),
}

impl SnoopEvent {
    /// The word on the bus during this event.
    pub fn word(self) -> Option<Word> {
        match self {
            SnoopEvent::Read(w)
            | SnoopEvent::Write(w)
            | SnoopEvent::LockedRead(w)
            | SnoopEvent::UnlockWrite(w) => Some(w),
            SnoopEvent::Invalidate => None,
        }
    }
}

/// A protocol's reaction to a snooped foreign transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopOutcome {
    /// The line's next state.
    pub next: LineState,
    /// Whether the line captures the word on the bus into its data —
    /// the distinguishing power of the RB/RWB schemes ("events *and*
    /// data values are broadcast", Section 1).
    pub capture: bool,
}

impl SnoopOutcome {
    /// A state change without data capture.
    pub const fn to(next: LineState) -> Self {
        SnoopOutcome {
            next,
            capture: false,
        }
    }

    /// A state change that also captures the bus data.
    pub const fn capture(next: LineState) -> Self {
        SnoopOutcome {
            next,
            capture: true,
        }
    }

    /// No state change, no capture.
    pub const fn unchanged(state: LineState) -> Self {
        SnoopOutcome {
            next: state,
            capture: false,
        }
    }
}

/// A snooping cache coherence protocol: the per-line finite state machine
/// of the paper's Figures 3-1 and 5-1 (and of the baselines).
///
/// A `None` line state everywhere means the address is **not present**
/// (the `NP` state of the proof sketch); "a reference to an item not in
/// the cache behaves exactly as if it were in the invalid state"
/// (Section 3), and every implementation upholds that equivalence — it is
/// property-tested in this crate.
///
/// Implementations are pure: the same inputs always yield the same
/// decision, and all mutation is performed by the cache controller in
/// `decache-machine`. This keeps the protocol enumerable by the
/// product-machine model checker in `decache-verify`.
///
/// # Panics
///
/// Methods may panic if handed a [`LineState`] outside
/// [`Protocol::states`] — e.g. asking RB about `Dirty`. The machine only
/// stores states produced by the same protocol, so this indicates a bug.
pub trait Protocol: fmt::Debug + Send + Sync {
    /// A short display name ("RB", "RWB(k=2)", "write-once", ...).
    fn name(&self) -> String;

    /// The states this protocol can store in a line, for enumeration by
    /// the model checker and the diagram exporter.
    fn states(&self) -> Vec<LineState>;

    /// Decides a CPU read of a line in `state` (`None` = not present).
    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome;

    /// Decides a CPU write to a line in `state` (`None` = not present).
    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome;

    /// The line state after this cache's *own* bus transaction of the
    /// given intent completes (possibly after abort-and-retry).
    fn own_complete(&self, state: Option<LineState>, intent: BusIntent) -> LineState;

    /// The line state after this cache's own locked read (`BRL`, the
    /// Test-and-Set first half) completes. The paper: the locked read
    /// "causes all other caches to enter the read state" — the issuer
    /// captures the broadcast value too.
    fn own_locked_read_complete(&self, state: Option<LineState>) -> LineState;

    /// The line state after this cache's own unlocking write (`BWU`, a
    /// successful Test-and-Set's second half) completes.
    fn own_unlock_write_complete(&self, state: Option<LineState>) -> LineState;

    /// Reacts to a snooped foreign transaction on a line this cache holds
    /// in `state`.
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome;

    /// Whether a cache holding the line in `state` must interrupt a
    /// foreign bus read and supply its data (the paper's `L` state; the
    /// write-once `Dirty` state).
    fn supplies_on_snoop_read(&self, state: LineState) -> bool;

    /// The holder's state after it interrupted a bus read and supplied
    /// its data via a substituted bus write ("The cache state is changed
    /// to Read", Section 3).
    fn after_supply(&self, state: LineState) -> LineState;

    /// Whether a line evicted in `state` must be written back to memory
    /// ("only those overwritten items that are tagged local need to be
    /// written back", Section 3).
    fn writeback_on_evict(&self, state: LineState) -> bool;

    /// Whether snooping caches capture the data of foreign bus *writes*
    /// (true only for RWB with k >= 2: "the caches also note the data
    /// part of the bus writes", Section 5). Informational; the behaviour
    /// itself lives in [`Protocol::snoop`].
    fn broadcasts_write_data(&self) -> bool;

    /// Whether this protocol ever issues the bus invalidate signal
    /// (`BI`) — true for the RWB family, false for RB and the
    /// baselines. Drives the inclusion of `BI` edges in extracted state
    /// diagrams.
    fn uses_bus_invalidate(&self) -> bool {
        false
    }

    /// Whether the read-miss fill state depends on the abstract
    /// configuration of the other caches (MESI's exclusive-vs-shared
    /// fill). False for every paper scheme, letting the machine skip
    /// the sharer sample on the hot path.
    fn fill_depends_on_sharers(&self) -> bool {
        false
    }

    /// [`Protocol::own_complete`] with the sampled "some other cache
    /// holds the line readable" bit, for protocols whose read-miss fill
    /// is guarded on it ([`Protocol::fill_depends_on_sharers`]). The
    /// bit is sampled after any interrupt-and-supply and before the
    /// read broadcast. The default ignores it.
    fn own_complete_shared(
        &self,
        state: Option<LineState>,
        intent: BusIntent,
        other_holders: bool,
    ) -> LineState {
        let _ = other_holders;
        self.own_complete(state, intent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_intent_display_matches_mnemonics() {
        assert_eq!(BusIntent::Read.to_string(), "BR");
        assert_eq!(BusIntent::Write.to_string(), "BW");
        assert_eq!(BusIntent::Invalidate.to_string(), "BI");
    }

    #[test]
    fn snoop_event_words() {
        assert_eq!(SnoopEvent::Read(Word::new(4)).word(), Some(Word::new(4)));
        assert_eq!(SnoopEvent::Invalidate.word(), None);
        assert_eq!(SnoopEvent::UnlockWrite(Word::ONE).word(), Some(Word::ONE));
    }

    #[test]
    fn outcome_constructors() {
        let o = SnoopOutcome::to(LineState::Invalid);
        assert!(!o.capture);
        let o = SnoopOutcome::capture(LineState::Readable);
        assert!(o.capture);
        let o = SnoopOutcome::unchanged(LineState::Local);
        assert_eq!(o.next, LineState::Local);
        assert!(!o.capture);
    }

    #[test]
    fn hit_predicate() {
        assert!(CpuOutcome::Hit {
            next: LineState::Readable
        }
        .is_hit());
        assert!(!CpuOutcome::Miss {
            intent: BusIntent::Read
        }
        .is_hit());
    }
}
