//! Guarded-action protocol IR: protocols as data, not code.
//!
//! Every protocol in this crate is a pure per-line finite state machine,
//! which means its complete semantics fit in a finite table of
//! **guarded-action rules**: `(from_state, input) [guard] → effect`
//! (after Meunier et al.'s guarded-action modelling of cache coherence).
//! This module defines that table form ([`Rule`], [`RuleTable`]) and a
//! generic interpreter ([`TableProtocol`]) that executes any well-formed
//! table through the ordinary [`Protocol`] trait — so a protocol defined
//! *purely as data* runs on the unmodified machine, verifier, and
//! conformance oracle.
//!
//! Guards range over the **abstract configuration** of the other caches
//! (never over PE identities, keeping every table PE-symmetric by
//! construction). The paper's seven schemes are guard-free; the guard
//! vocabulary exists for schemes like MESI whose read-miss fill depends
//! on whether the line is shared (fill `E` when exclusive, `S`/`V` when
//! another readable copy exists).
//!
//! [`mesi`] builds exactly that: a MESI table over the existing
//! [`LineState`] vocabulary (`I`/`V`/`S`/`D` displaying MESI's
//! I/S/E/M), adapted to the paper's bus vocabulary — write misses go
//! through the bus as `BW` (write-through of the missing word) and the
//! `S → M` upgrade rides the RWB bus-invalidate signal `BI`. Zero
//! engine code knows about MESI; `ProtocolKind::Mesi` just wraps this
//! table in a [`TableProtocol`].
//!
//! Static analysis of rule tables (totality, determinism, invariant
//! preservation over all n, dead rules) lives in `decache-protocol-ir`;
//! this module only defines the data model and its interpreter.

use crate::introspect::{SnoopKind, TableInput, TransitionKey};
use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent, SnoopOutcome};
use std::fmt;
use std::sync::Arc;

/// The guard of a rule: a predicate over the *abstract configuration*
/// of the other caches, evaluated by the controller when the rule's
/// input arrives. Deliberately PE-anonymous — a guard can count or
/// test the other caches' states but can never name a PE — so every
/// table is symmetric under PE permutation by construction.
///
/// Guards are only meaningful on `own:BR` completions (the read-miss
/// fill), sampled after any interrupt-and-supply and before the read
/// broadcast; everywhere else rules are [`Guard::Always`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Guard {
    /// Fires unconditionally.
    Always,
    /// Fires iff **no** other cache holds the line in a locally-readable
    /// state ([`LineState::is_readable_locally`]).
    NoOtherReadableHolder,
    /// Fires iff some other cache holds the line in a locally-readable
    /// state — the complement of [`Guard::NoOtherReadableHolder`].
    OtherReadableHolder,
}

impl Guard {
    /// Evaluates the guard against the sampled "some other cache holds
    /// the line readable" bit.
    pub fn eval(self, other_readable: bool) -> bool {
        match self {
            Guard::Always => true,
            Guard::NoOtherReadableHolder => !other_readable,
            Guard::OtherReadableHolder => other_readable,
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::Always => write!(f, "always"),
            Guard::NoOtherReadableHolder => write!(f, "no-other-readable"),
            Guard::OtherReadableHolder => write!(f, "other-readable"),
        }
    }
}

/// The action half of a rule. Each variant corresponds to one
/// [`Protocol`] decision shape, and [`Effect::render`] reproduces the
/// exact outcome strings of [`crate::introspect::probe_outcome`] so
/// compiled tables can be diffed against probed trait behaviour
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effect {
    /// Serve the CPU reference from the cache; the line moves to `next`.
    Hit {
        /// The line's state after the reference.
        next: LineState,
    },
    /// Stall the CPU and issue a bus transaction.
    Issue {
        /// The transaction to issue.
        intent: BusIntent,
    },
    /// Move to `next` (own-completion or snoop), optionally capturing
    /// the word on the bus.
    Next {
        /// The line's next state.
        next: LineState,
        /// Whether the line captures the bus data.
        capture: bool,
    },
    /// Interrupt a foreign bus read, supply the data, and demote to
    /// `next`. A state has supply rules iff it supplies on snooped
    /// reads.
    Supply {
        /// The holder's state after supplying.
        next: LineState,
    },
    /// Evict the line, writing back iff `writeback`.
    Evict {
        /// Whether the evicted line must be flushed to memory.
        writeback: bool,
    },
}

impl Effect {
    /// Renders the effect exactly as
    /// [`crate::introspect::probe_outcome`] renders the corresponding
    /// trait outcome.
    pub fn render(self) -> String {
        match self {
            Effect::Hit { next } => format!("hit→{next}"),
            Effect::Issue { intent } => format!("miss({intent})"),
            Effect::Next {
                next,
                capture: true,
            } => format!("capture→{next}"),
            Effect::Next {
                next,
                capture: false,
            } => format!("→{next}"),
            Effect::Supply { next } => format!("supply→{next}"),
            Effect::Evict { writeback: true } => "writeback".to_owned(),
            Effect::Evict { writeback: false } => "drop".to_owned(),
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// One guarded-action rule: in `from` state (`None` = not present), on
/// `input`, if `guard` holds, apply `effect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The line state the rule matches; `None` is the `NP` pseudo-state.
    pub from: Option<LineState>,
    /// The input class the rule matches.
    pub input: TableInput,
    /// The guard over the abstract configuration of the other caches.
    pub guard: Guard,
    /// The action taken when the rule fires.
    pub effect: Effect,
}

impl Rule {
    /// The transition-table cell this rule occupies.
    pub fn key(self) -> TransitionKey {
        TransitionKey {
            state: self.from,
            input: self.input,
        }
    }

    /// A stable rule identifier for diagnostics and baselines: the
    /// cell's rendering plus a guard suffix for guarded rules
    /// (`"NP --own:BR [other-readable]"`).
    pub fn id(self) -> String {
        match self.guard {
            Guard::Always => self.key().to_string(),
            guard => format!("{} [{guard}]", self.key()),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.id(), self.effect)
    }
}

/// A complete protocol as data: its name, state vocabulary, bus
/// capabilities, and guarded-action rule set.
///
/// Well-formedness (exactly one matching rule per `(state, input,
/// configuration)`, invariant preservation, …) is *not* enforced here —
/// that is the static analyzer's job in `decache-protocol-ir`; the
/// interpreter panics informatively on lookup failure, mirroring how
/// the hand-written protocols panic on states outside their vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTable {
    /// The protocol's display name.
    pub name: String,
    /// The declared state vocabulary, in table order.
    pub states: Vec<LineState>,
    /// Whether the protocol ever issues the bus invalidate signal.
    pub uses_bus_invalidate: bool,
    /// Whether snooping caches capture foreign bus-write data.
    pub broadcasts_write_data: bool,
    /// The rule set. Order is irrelevant to semantics; [`normalize`]
    /// sorts for canonical comparison.
    ///
    /// [`normalize`]: RuleTable::normalize
    pub rules: Vec<Rule>,
}

impl RuleTable {
    /// Sorts the rules into canonical `(cell, guard)` order, for stable
    /// rendering and table-vs-table comparison.
    pub fn normalize(&mut self) {
        self.rules.sort_by(|a, b| {
            a.key()
                .cmp(&b.key())
                .then_with(|| a.guard.cmp(&b.guard))
                .then_with(|| a.effect.cmp(&b.effect))
        });
    }

    /// All rules occupying the `(state, input)` cell.
    pub fn rules_for(&self, from: Option<LineState>, input: TableInput) -> Vec<Rule> {
        self.rules
            .iter()
            .copied()
            .filter(|r| r.from == from && r.input == input)
            .collect()
    }

    /// The unique rule matching `(state, input)` under the sampled
    /// configuration bit, or `None` when no rule matches.
    pub fn matching(
        &self,
        from: Option<LineState>,
        input: TableInput,
        other_readable: bool,
    ) -> Option<Rule> {
        self.rules
            .iter()
            .copied()
            .find(|r| r.from == from && r.input == input && r.guard.eval(other_readable))
    }

    /// Whether any rule's firing depends on the abstract configuration.
    pub fn has_guards(&self) -> bool {
        self.rules.iter().any(|r| r.guard != Guard::Always)
    }

    /// The states that interrupt-and-supply on snooped reads (those
    /// with a `supply` rule).
    pub fn supplying_states(&self) -> Vec<LineState> {
        self.states
            .iter()
            .copied()
            .filter(|&s| {
                self.rules
                    .iter()
                    .any(|r| r.from == Some(s) && r.input == TableInput::Supply)
            })
            .collect()
    }
}

/// A generic rule-table interpreter: executes any [`RuleTable`] through
/// the [`Protocol`] trait, so protocols defined purely as data run on
/// the unmodified machine and verifier.
///
/// # Panics
///
/// Trait methods panic with the offending cell when the table has no
/// matching rule or the matched effect has the wrong shape — exactly
/// the situations the static analyzer in `decache-protocol-ir` proves
/// absent before a table is ever run.
///
/// # Examples
///
/// ```
/// use decache_core::ir::{mesi, TableProtocol};
/// use decache_core::{CpuOutcome, LineState, Protocol};
///
/// let p = TableProtocol::new(mesi());
/// assert_eq!(p.name(), "MESI");
/// // A read hit in the exclusive state stays exclusive:
/// assert_eq!(
///     p.cpu_read(Some(LineState::Reserved)),
///     CpuOutcome::Hit { next: LineState::Reserved }
/// );
/// ```
#[derive(Debug, Clone)]
pub struct TableProtocol {
    table: Arc<RuleTable>,
}

impl TableProtocol {
    /// Wraps a rule table in the generic interpreter.
    pub fn new(table: RuleTable) -> Self {
        TableProtocol {
            table: Arc::new(table),
        }
    }

    /// The interpreted table.
    pub fn table(&self) -> &RuleTable {
        &self.table
    }

    /// Looks up the unique matching rule, panicking informatively when
    /// the table is not total on the cell.
    fn rule(&self, from: Option<LineState>, input: TableInput, other_readable: bool) -> Rule {
        self.table
            .matching(from, input, other_readable)
            .unwrap_or_else(|| {
                let cell = TransitionKey { state: from, input };
                panic!(
                    "{}: no rule for {cell} (other_readable={other_readable})",
                    self.table.name
                )
            })
    }

    fn next_of(
        &self,
        from: Option<LineState>,
        input: TableInput,
        other_readable: bool,
    ) -> LineState {
        let rule = self.rule(from, input, other_readable);
        match rule.effect {
            Effect::Next { next, .. } => next,
            other => panic!(
                "{}: rule {rule} has non-transition effect {other:?}",
                self.table.name
            ),
        }
    }
}

impl Protocol for TableProtocol {
    fn name(&self) -> String {
        self.table.name.clone()
    }

    fn states(&self) -> Vec<LineState> {
        self.table.states.clone()
    }

    fn cpu_read(&self, state: Option<LineState>) -> CpuOutcome {
        let rule = self.rule(state, TableInput::CpuRead, true);
        match rule.effect {
            Effect::Hit { next } => CpuOutcome::Hit { next },
            Effect::Issue { intent } => CpuOutcome::Miss { intent },
            other => panic!(
                "{}: rule {rule} has non-CPU effect {other:?}",
                self.table.name
            ),
        }
    }

    fn cpu_write(&self, state: Option<LineState>) -> CpuOutcome {
        let rule = self.rule(state, TableInput::CpuWrite, true);
        match rule.effect {
            Effect::Hit { next } => CpuOutcome::Hit { next },
            Effect::Issue { intent } => CpuOutcome::Miss { intent },
            other => panic!(
                "{}: rule {rule} has non-CPU effect {other:?}",
                self.table.name
            ),
        }
    }

    fn own_complete(&self, state: Option<LineState>, intent: BusIntent) -> LineState {
        // Context-free entry point: resolve guarded fills to the shared
        // branch, which is total by the analyzer's pairing rule. Callers
        // that sampled the configuration use `own_complete_shared`.
        self.own_complete_shared(state, intent, true)
    }

    fn own_complete_shared(
        &self,
        state: Option<LineState>,
        intent: BusIntent,
        other_holders: bool,
    ) -> LineState {
        self.next_of(state, TableInput::OwnComplete(intent), other_holders)
    }

    fn own_locked_read_complete(&self, state: Option<LineState>) -> LineState {
        self.next_of(state, TableInput::OwnLockedRead, true)
    }

    fn own_unlock_write_complete(&self, state: Option<LineState>) -> LineState {
        self.next_of(state, TableInput::OwnUnlockWrite, true)
    }

    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        let input = TableInput::Snoop(SnoopKind::of(event));
        let rule = self.rule(Some(state), input, true);
        match rule.effect {
            Effect::Next { next, capture } => SnoopOutcome { next, capture },
            other => panic!(
                "{}: rule {rule} has non-snoop effect {other:?}",
                self.table.name
            ),
        }
    }

    fn supplies_on_snoop_read(&self, state: LineState) -> bool {
        self.table
            .matching(Some(state), TableInput::Supply, true)
            .is_some()
    }

    fn after_supply(&self, state: LineState) -> LineState {
        let rule = self.rule(Some(state), TableInput::Supply, true);
        match rule.effect {
            Effect::Supply { next } => next,
            other => panic!(
                "{}: rule {rule} has non-supply effect {other:?}",
                self.table.name
            ),
        }
    }

    fn writeback_on_evict(&self, state: LineState) -> bool {
        let rule = self.rule(Some(state), TableInput::Evict, true);
        match rule.effect {
            Effect::Evict { writeback } => writeback,
            other => panic!(
                "{}: rule {rule} has non-evict effect {other:?}",
                self.table.name
            ),
        }
    }

    fn broadcasts_write_data(&self) -> bool {
        self.table.broadcasts_write_data
    }

    fn uses_bus_invalidate(&self) -> bool {
        self.table.uses_bus_invalidate
    }

    fn fill_depends_on_sharers(&self) -> bool {
        self.table.has_guards()
    }
}

/// The MESI protocol, defined purely as IR data over the existing state
/// vocabulary: `Invalid` = MESI I, `Valid` = MESI S (shared), `Reserved`
/// = MESI E (exclusive-clean), `Dirty` = MESI M (modified) — displayed
/// with the crate's `I`/`V`/`S`/`D` letters.
///
/// Adaptation to the paper's bus vocabulary (documented in DESIGN.md):
/// a write miss issues the ordinary bus write `BW` (the word is written
/// through to memory, others invalidate, the writer fills
/// exclusive-clean) rather than a read-for-ownership, and the MESI
/// `S → M` upgrade issues the RWB bus-invalidate signal `BI`. The
/// defining MESI behaviours are all present: the guarded read-miss fill
/// (`E` when no other readable copy exists, `V` otherwise), the silent
/// `E → M` write hit, and the owner (`M`) supplying snooped reads and
/// demoting to shared.
pub fn mesi() -> RuleTable {
    use BusIntent::{Invalidate, Read, Write};
    use LineState::{Dirty, Invalid, Reserved, Valid};

    let mut rules = Vec::new();
    let held = [Invalid, Valid, Reserved, Dirty];
    let all: Vec<Option<LineState>> = std::iter::once(None)
        .chain(held.into_iter().map(Some))
        .collect();

    let rule = |from, input, guard, effect| Rule {
        from,
        input,
        guard,
        effect,
    };
    let always = Guard::Always;

    // CPU references.
    for from in [None, Some(Invalid)] {
        rules.push(rule(
            from,
            TableInput::CpuRead,
            always,
            Effect::Issue { intent: Read },
        ));
        rules.push(rule(
            from,
            TableInput::CpuWrite,
            always,
            Effect::Issue { intent: Write },
        ));
    }
    for s in [Valid, Reserved, Dirty] {
        rules.push(rule(
            Some(s),
            TableInput::CpuRead,
            always,
            Effect::Hit { next: s },
        ));
    }
    // S → M upgrades over the bus-invalidate signal; E → M and M → M are
    // silent local writes.
    rules.push(rule(
        Some(Valid),
        TableInput::CpuWrite,
        always,
        Effect::Issue { intent: Invalidate },
    ));
    for s in [Reserved, Dirty] {
        rules.push(rule(
            Some(s),
            TableInput::CpuWrite,
            always,
            Effect::Hit { next: Dirty },
        ));
    }

    // Own-transaction completions (every from-state for totality; only
    // NP/I fills are dynamically reachable, the rest are reported dead
    // by the analyzer). The read-miss fill is MESI's guarded decision:
    // exclusive-clean when alone, shared otherwise.
    for &from in &all {
        rules.push(rule(
            from,
            TableInput::OwnComplete(Read),
            Guard::NoOtherReadableHolder,
            Effect::Next {
                next: Reserved,
                capture: false,
            },
        ));
        rules.push(rule(
            from,
            TableInput::OwnComplete(Read),
            Guard::OtherReadableHolder,
            Effect::Next {
                next: Valid,
                capture: false,
            },
        ));
        rules.push(rule(
            from,
            TableInput::OwnComplete(Write),
            always,
            Effect::Next {
                next: Reserved,
                capture: false,
            },
        ));
        rules.push(rule(
            from,
            TableInput::OwnComplete(Invalidate),
            always,
            Effect::Next {
                next: Dirty,
                capture: false,
            },
        ));
        // A locked read broadcasts; everyone, issuer included, shares.
        rules.push(rule(
            from,
            TableInput::OwnLockedRead,
            always,
            Effect::Next {
                next: Valid,
                capture: false,
            },
        ));
        // The unlocking write goes through to memory: exclusive-clean.
        rules.push(rule(
            from,
            TableInput::OwnUnlockWrite,
            always,
            Effect::Next {
                next: Reserved,
                capture: false,
            },
        ));
    }

    // Snoops: reads demote E/M to shared, writes and invalidates kill
    // the copy. MESI never captures foreign bus data (no write
    // broadcasting — the RB/RWB distinguishing power MESI lacks).
    for s in held {
        let on_read = match s {
            Invalid => Invalid,
            _ => Valid,
        };
        for kind in [SnoopKind::Read, SnoopKind::LockedRead] {
            rules.push(rule(
                Some(s),
                TableInput::Snoop(kind),
                always,
                Effect::Next {
                    next: on_read,
                    capture: false,
                },
            ));
        }
        for kind in [
            SnoopKind::Write,
            SnoopKind::UnlockWrite,
            SnoopKind::Invalidate,
        ] {
            rules.push(rule(
                Some(s),
                TableInput::Snoop(kind),
                always,
                Effect::Next {
                    next: Invalid,
                    capture: false,
                },
            ));
        }
    }

    // Only the owner supplies; it demotes to shared (memory was just
    // made current by the substituted write).
    rules.push(rule(
        Some(Dirty),
        TableInput::Supply,
        always,
        Effect::Supply { next: Valid },
    ));

    // Only the owner writes back.
    for s in held {
        rules.push(rule(
            Some(s),
            TableInput::Evict,
            always,
            Effect::Evict {
                writeback: s == Dirty,
            },
        ));
    }

    let mut table = RuleTable {
        name: "MESI".to_owned(),
        states: held.to_vec(),
        uses_bus_invalidate: true,
        broadcasts_write_data: false,
        rules,
    };
    table.normalize();
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::{Dirty, Invalid, Reserved, Valid};

    #[test]
    fn mesi_interpreter_basics() {
        let p = TableProtocol::new(mesi());
        assert_eq!(p.name(), "MESI");
        assert_eq!(p.states(), vec![Invalid, Valid, Reserved, Dirty]);
        assert!(p.uses_bus_invalidate());
        assert!(!p.broadcasts_write_data());
        assert!(p.fill_depends_on_sharers());
        // Read miss from NP; fill is guarded.
        assert_eq!(
            p.cpu_read(None),
            CpuOutcome::Miss {
                intent: BusIntent::Read
            }
        );
        assert_eq!(
            p.own_complete_shared(None, BusIntent::Read, false),
            Reserved,
            "alone → exclusive-clean"
        );
        assert_eq!(
            p.own_complete_shared(None, BusIntent::Read, true),
            Valid,
            "shared → V"
        );
        // The context-free entry point resolves to the shared branch.
        assert_eq!(p.own_complete(None, BusIntent::Read), Valid);
        // Silent E → M; S → M upgrades over BI.
        assert_eq!(p.cpu_write(Some(Reserved)), CpuOutcome::Hit { next: Dirty });
        assert_eq!(
            p.cpu_write(Some(Valid)),
            CpuOutcome::Miss {
                intent: BusIntent::Invalidate
            }
        );
        assert_eq!(p.own_complete(Some(Valid), BusIntent::Invalidate), Dirty);
        // Owner supplies and demotes; only M writes back.
        assert!(p.supplies_on_snoop_read(Dirty));
        assert!(!p.supplies_on_snoop_read(Reserved));
        assert_eq!(p.after_supply(Dirty), Valid);
        assert!(p.writeback_on_evict(Dirty));
        assert!(!p.writeback_on_evict(Reserved));
        // Read snoops demote to shared without capturing.
        let out = p.snoop(Reserved, SnoopEvent::Read(decache_mem::Word::ZERO));
        assert_eq!(out, SnoopOutcome::to(Valid));
        let out = p.snoop(Valid, SnoopEvent::Write(decache_mem::Word::ZERO));
        assert_eq!(out, SnoopOutcome::to(Invalid));
    }

    #[test]
    fn effect_rendering_matches_probe_vocabulary() {
        assert_eq!(Effect::Hit { next: Valid }.render(), "hit→V");
        assert_eq!(
            Effect::Issue {
                intent: BusIntent::Write
            }
            .render(),
            "miss(BW)"
        );
        assert_eq!(
            Effect::Next {
                next: Invalid,
                capture: false
            }
            .render(),
            "→I"
        );
        assert_eq!(
            Effect::Next {
                next: LineState::Readable,
                capture: true
            }
            .render(),
            "capture→R"
        );
        assert_eq!(Effect::Supply { next: Valid }.render(), "supply→V");
        assert_eq!(Effect::Evict { writeback: true }.render(), "writeback");
        assert_eq!(Effect::Evict { writeback: false }.render(), "drop");
    }

    #[test]
    fn rule_ids_carry_guards() {
        let table = mesi();
        let guarded = table.rules_for(None, TableInput::OwnComplete(BusIntent::Read));
        assert_eq!(guarded.len(), 2);
        let ids: Vec<String> = guarded.iter().map(|r| r.id()).collect();
        assert!(ids.contains(&"NP --own:BR [no-other-readable]".to_owned()));
        assert!(ids.contains(&"NP --own:BR [other-readable]".to_owned()));
        let plain = table.rules_for(Some(Dirty), TableInput::Supply)[0];
        assert_eq!(plain.id(), "D --supply");
    }

    #[test]
    #[should_panic(expected = "no rule for")]
    fn missing_rules_panic_informatively() {
        let mut table = mesi();
        table.rules.retain(|r| r.input != TableInput::CpuRead);
        let p = TableProtocol::new(table);
        let _ = p.cpu_read(None);
    }

    #[test]
    fn mesi_probe_outcomes_are_total_over_the_domain() {
        let p = TableProtocol::new(mesi());
        for key in crate::introspect::transition_domain(&p) {
            assert!(
                crate::introspect::probe_outcome(&p, key).is_some(),
                "MESI: non-total handling of {key}"
            );
        }
    }
}
