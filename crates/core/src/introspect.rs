//! Transition-table introspection for the dead-transition lint.
//!
//! The verifier's lint wants to answer "which rows of a protocol's
//! `(state, input) → outcome` table can actually fire?". This module
//! enumerates that table *domain* — every state (including `NP`, the
//! not-present pseudo-state) crossed with every input the cache
//! controller can present — and probes each entry's outcome, catching
//! panics so non-total handling is reported instead of crashing the
//! lint.
//!
//! The domain is protocol-aware: `BI` rows exist only for protocols
//! that [`Protocol::uses_bus_invalidate`], and a `supply` row exists
//! only for states that [`Protocol::supplies_on_snoop_read`] — rows
//! that cannot exist are different from rows that exist but never fire,
//! and only the latter belong in a lint report.

use crate::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent};
use decache_mem::Word;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A snooped bus operation, without its data payload — the column labels
/// of the paper's transition tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SnoopKind {
    /// A foreign bus read (`BR`).
    Read,
    /// A foreign bus write (`BW`).
    Write,
    /// The RWB bus invalidate signal (`BI`).
    Invalidate,
    /// A foreign locked read (`BRL`).
    LockedRead,
    /// A foreign unlocking write (`BWU`).
    UnlockWrite,
}

impl SnoopKind {
    /// Every snoop kind, in table-column order.
    pub const ALL: [SnoopKind; 5] = [
        SnoopKind::Read,
        SnoopKind::Write,
        SnoopKind::Invalidate,
        SnoopKind::LockedRead,
        SnoopKind::UnlockWrite,
    ];

    /// The corresponding [`SnoopEvent`] with a zero probe word (protocol
    /// decisions never depend on the data payload).
    pub fn event(self) -> SnoopEvent {
        match self {
            SnoopKind::Read => SnoopEvent::Read(Word::ZERO),
            SnoopKind::Write => SnoopEvent::Write(Word::ZERO),
            SnoopKind::Invalidate => SnoopEvent::Invalidate,
            SnoopKind::LockedRead => SnoopEvent::LockedRead(Word::ZERO),
            SnoopKind::UnlockWrite => SnoopEvent::UnlockWrite(Word::ZERO),
        }
    }

    /// The [`SnoopKind`] of a [`SnoopEvent`].
    pub fn of(event: SnoopEvent) -> SnoopKind {
        match event {
            SnoopEvent::Read(_) => SnoopKind::Read,
            SnoopEvent::Write(_) => SnoopKind::Write,
            SnoopEvent::Invalidate => SnoopKind::Invalidate,
            SnoopEvent::LockedRead(_) => SnoopKind::LockedRead,
            SnoopEvent::UnlockWrite(_) => SnoopKind::UnlockWrite,
        }
    }
}

impl fmt::Display for SnoopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopKind::Read => write!(f, "BR"),
            SnoopKind::Write => write!(f, "BW"),
            SnoopKind::Invalidate => write!(f, "BI"),
            SnoopKind::LockedRead => write!(f, "BRL"),
            SnoopKind::UnlockWrite => write!(f, "BWU"),
        }
    }
}

/// One input axis of a protocol's transition table: what the cache
/// controller presents to the per-line state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TableInput {
    /// A CPU read reference ([`Protocol::cpu_read`]).
    CpuRead,
    /// A CPU write reference ([`Protocol::cpu_write`]).
    CpuWrite,
    /// Completion of this cache's own bus transaction
    /// ([`Protocol::own_complete`]).
    OwnComplete(BusIntent),
    /// Completion of this cache's own locked read
    /// ([`Protocol::own_locked_read_complete`]).
    OwnLockedRead,
    /// Completion of this cache's own unlocking write
    /// ([`Protocol::own_unlock_write_complete`]).
    OwnUnlockWrite,
    /// A snooped foreign transaction ([`Protocol::snoop`]).
    Snoop(SnoopKind),
    /// Interrupting a foreign bus read to supply data
    /// ([`Protocol::after_supply`], guarded by
    /// [`Protocol::supplies_on_snoop_read`]).
    Supply,
    /// Eviction of the line ([`Protocol::writeback_on_evict`]).
    Evict,
}

impl TableInput {
    fn rank(self) -> (u8, u8) {
        match self {
            TableInput::CpuRead => (0, 0),
            TableInput::CpuWrite => (1, 0),
            TableInput::OwnComplete(BusIntent::Read) => (2, 0),
            TableInput::OwnComplete(BusIntent::Write) => (2, 1),
            TableInput::OwnComplete(BusIntent::Invalidate) => (2, 2),
            TableInput::OwnLockedRead => (3, 0),
            TableInput::OwnUnlockWrite => (4, 0),
            TableInput::Snoop(k) => (5, k as u8),
            TableInput::Supply => (6, 0),
            TableInput::Evict => (7, 0),
        }
    }
}

impl fmt::Display for TableInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableInput::CpuRead => write!(f, "CR"),
            TableInput::CpuWrite => write!(f, "CW"),
            TableInput::OwnComplete(i) => write!(f, "own:{i}"),
            TableInput::OwnLockedRead => write!(f, "own:BRL"),
            TableInput::OwnUnlockWrite => write!(f, "own:BWU"),
            TableInput::Snoop(k) => write!(f, "snoop:{k}"),
            TableInput::Supply => write!(f, "supply"),
            TableInput::Evict => write!(f, "evict"),
        }
    }
}

/// One cell of a protocol's transition table: a line state (or `None`
/// for not-present) and the input applied to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionKey {
    /// The line state the input hits; `None` is the `NP` pseudo-state.
    pub state: Option<LineState>,
    /// The input applied.
    pub input: TableInput,
}

/// A stable ordering rank for line states, in paper-table order.
fn state_rank(state: Option<LineState>) -> (u8, u8) {
    match state {
        None => (0, 0),
        Some(LineState::Invalid) => (1, 0),
        Some(LineState::Readable) => (2, 0),
        Some(LineState::FirstWrite(c)) => (3, c),
        Some(LineState::Local) => (4, 0),
        Some(LineState::Valid) => (5, 0),
        Some(LineState::Reserved) => (6, 0),
        Some(LineState::Dirty) => (7, 0),
    }
}

impl Ord for TransitionKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (state_rank(self.state), self.input.rank())
            .cmp(&(state_rank(other.state), other.input.rank()))
    }
}

impl PartialOrd for TransitionKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for TransitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            None => write!(f, "NP --{}", self.input),
            Some(s) => write!(f, "{s} --{}", self.input),
        }
    }
}

/// Enumerates the full transition-table domain of a protocol: every
/// `(state, input)` cell the cache controller could in principle present.
///
/// The domain is protocol-aware (see the module docs): `BI` rows only
/// for invalidating protocols, `supply` rows only for supplying states.
///
/// # Examples
///
/// ```
/// use decache_core::{introspect, Rb};
///
/// let keys = introspect::transition_domain(&Rb::new());
/// // RB: NP + 3 states, no BI rows.
/// assert!(keys.iter().all(|k| !k.to_string().contains("BI")));
/// ```
pub fn transition_domain(protocol: &dyn Protocol) -> Vec<TransitionKey> {
    let bi = protocol.uses_bus_invalidate();
    let mut keys = Vec::new();
    let all_states: Vec<Option<LineState>> = std::iter::once(None)
        .chain(protocol.states().into_iter().map(Some))
        .collect();
    for &state in &all_states {
        keys.push(TransitionKey {
            state,
            input: TableInput::CpuRead,
        });
        keys.push(TransitionKey {
            state,
            input: TableInput::CpuWrite,
        });
        for intent in [BusIntent::Read, BusIntent::Write, BusIntent::Invalidate] {
            if intent == BusIntent::Invalidate && !bi {
                continue;
            }
            keys.push(TransitionKey {
                state,
                input: TableInput::OwnComplete(intent),
            });
        }
        keys.push(TransitionKey {
            state,
            input: TableInput::OwnLockedRead,
        });
        keys.push(TransitionKey {
            state,
            input: TableInput::OwnUnlockWrite,
        });
    }
    for state in protocol.states() {
        for kind in SnoopKind::ALL {
            if kind == SnoopKind::Invalidate && !bi {
                continue;
            }
            keys.push(TransitionKey {
                state: Some(state),
                input: TableInput::Snoop(kind),
            });
        }
        if probe(protocol, state, |p, s| p.supplies_on_snoop_read(s)) == Some(true) {
            keys.push(TransitionKey {
                state: Some(state),
                input: TableInput::Supply,
            });
        }
        keys.push(TransitionKey {
            state: Some(state),
            input: TableInput::Evict,
        });
    }
    keys.sort();
    keys
}

/// Runs a protocol query, converting a panic into `None`.
fn probe<R>(
    protocol: &dyn Protocol,
    state: LineState,
    query: impl FnOnce(&dyn Protocol, LineState) -> R,
) -> Option<R> {
    catch_unwind(AssertUnwindSafe(|| query(protocol, state))).ok()
}

/// Probes the outcome of one table cell, rendered as a short stable
/// string (`"hit→R"`, `"miss(BW)"`, `"capture→R"`, `"writeback"`, …).
/// Returns `None` if the protocol panicked on the cell — non-total
/// handling, which the lint reports.
pub fn probe_outcome(protocol: &dyn Protocol, key: TransitionKey) -> Option<String> {
    let render_cpu = |out: CpuOutcome| match out {
        CpuOutcome::Hit { next } => format!("hit→{next}"),
        CpuOutcome::Miss { intent } => format!("miss({intent})"),
    };
    catch_unwind(AssertUnwindSafe(|| match key.input {
        TableInput::CpuRead => render_cpu(protocol.cpu_read(key.state)),
        TableInput::CpuWrite => render_cpu(protocol.cpu_write(key.state)),
        TableInput::OwnComplete(intent) => {
            format!("→{}", protocol.own_complete(key.state, intent))
        }
        TableInput::OwnLockedRead => format!("→{}", protocol.own_locked_read_complete(key.state)),
        TableInput::OwnUnlockWrite => {
            format!("→{}", protocol.own_unlock_write_complete(key.state))
        }
        TableInput::Snoop(kind) => {
            let state = key.state.expect("snoop rows exist only for held states");
            let out = protocol.snoop(state, kind.event());
            if out.capture {
                format!("capture→{}", out.next)
            } else {
                format!("→{}", out.next)
            }
        }
        TableInput::Supply => {
            let state = key.state.expect("supply rows exist only for held states");
            format!("supply→{}", protocol.after_supply(state))
        }
        TableInput::Evict => {
            let state = key.state.expect("evict rows exist only for held states");
            if protocol.writeback_on_evict(state) {
                "writeback".to_owned()
            } else {
                "drop".to_owned()
            }
        }
    }))
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolKind, Rb};

    #[test]
    fn rb_domain_has_no_bi_rows_and_one_supply_row() {
        let keys = transition_domain(&Rb::new());
        assert!(keys
            .iter()
            .all(|k| !matches!(k.input, TableInput::Snoop(SnoopKind::Invalidate))));
        assert!(keys
            .iter()
            .all(|k| !matches!(k.input, TableInput::OwnComplete(BusIntent::Invalidate))));
        let supplies: Vec<_> = keys
            .iter()
            .filter(|k| k.input == TableInput::Supply)
            .collect();
        assert_eq!(supplies.len(), 1);
        assert_eq!(supplies[0].state, Some(LineState::Local));
    }

    #[test]
    fn rwb_domain_includes_bi_rows() {
        let rwb = ProtocolKind::Rwb.build();
        let keys = transition_domain(rwb.as_ref());
        assert!(keys
            .iter()
            .any(|k| matches!(k.input, TableInput::Snoop(SnoopKind::Invalidate))));
    }

    #[test]
    fn every_domain_cell_of_every_kind_is_total() {
        let kinds = [
            ProtocolKind::Rb,
            ProtocolKind::RbNoBroadcast,
            ProtocolKind::Rwb,
            ProtocolKind::RwbThreshold(1),
            ProtocolKind::RwbThreshold(3),
            ProtocolKind::WriteOnce,
            ProtocolKind::WriteThrough,
        ];
        for kind in kinds {
            let p = kind.build();
            for key in transition_domain(p.as_ref()) {
                assert!(
                    probe_outcome(p.as_ref(), key).is_some(),
                    "{kind}: non-total handling of {key}"
                );
            }
        }
    }

    #[test]
    fn keys_render_compactly_and_sort_stably() {
        let key = TransitionKey {
            state: None,
            input: TableInput::CpuRead,
        };
        assert_eq!(key.to_string(), "NP --CR");
        let key = TransitionKey {
            state: Some(LineState::Readable),
            input: TableInput::Snoop(SnoopKind::UnlockWrite),
        };
        assert_eq!(key.to_string(), "R --snoop:BWU");
        let mut keys = transition_domain(&Rb::new());
        let sorted = keys.clone();
        keys.reverse();
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn probe_reports_outcomes() {
        let rb = Rb::new();
        let out = probe_outcome(
            &rb,
            TransitionKey {
                state: None,
                input: TableInput::CpuRead,
            },
        );
        assert_eq!(out.as_deref(), Some("miss(BR)"));
        let out = probe_outcome(
            &rb,
            TransitionKey {
                state: Some(LineState::Local),
                input: TableInput::Evict,
            },
        );
        assert_eq!(out.as_deref(), Some("writeback"));
    }
}
