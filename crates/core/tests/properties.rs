//! Seeded randomized tests of the protocol state machines: invariants
//! that must hold for *every* protocol, every state, and every
//! stimulus. Exhaustive over protocols and states; randomized only over
//! data values and snoop events.

use decache_core::{transition_table, BusIntent, CpuOutcome, LineState, ProtocolKind, SnoopEvent};
use decache_mem::Word;
use decache_rng::{testing::check, Rng};

/// Every protocol variant under test, including the historical
/// `RwbThreshold(1)` regression (the proptest-era shrink case).
const PROTOCOLS: [ProtocolKind; 9] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(2),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::RwbThreshold(4),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

fn gen_snoop_event(rng: &mut Rng) -> SnoopEvent {
    let w = Word::new(rng.next_u64());
    match rng.gen_range(0u8..5) {
        0 => SnoopEvent::Read(w),
        1 => SnoopEvent::Write(w),
        2 => SnoopEvent::Invalidate,
        3 => SnoopEvent::LockedRead(w),
        _ => SnoopEvent::UnlockWrite(w),
    }
}

/// "A reference to an item not in the cache behaves exactly as if it
/// were in the invalid state" (Section 3) — for every protocol.
#[test]
fn not_present_is_equivalent_to_invalid() {
    for kind in PROTOCOLS {
        let p = kind.build();
        assert_eq!(p.cpu_read(None), p.cpu_read(Some(LineState::Invalid)));
        assert_eq!(p.cpu_write(None), p.cpu_write(Some(LineState::Invalid)));
        for intent in [BusIntent::Read, BusIntent::Write] {
            // Only compare intents the protocol can issue from Invalid.
            let issued = match p.cpu_write(Some(LineState::Invalid)) {
                CpuOutcome::Miss { intent } => Some(intent),
                CpuOutcome::Hit { .. } => None,
            };
            if issued == Some(intent) || intent == BusIntent::Read {
                assert_eq!(
                    p.own_complete(None, intent),
                    p.own_complete(Some(LineState::Invalid), intent)
                );
            }
        }
        assert_eq!(
            p.own_locked_read_complete(None),
            p.own_locked_read_complete(Some(LineState::Invalid))
        );
    }
}

/// Every snoop reaction lands in a state the protocol declares, and all
/// protocol entry points are closed over the declared state set.
#[test]
fn protocols_are_closed_over_their_state_sets() {
    check("protocols_are_closed_over_their_state_sets", 32, |rng| {
        let event = gen_snoop_event(rng);
        for kind in PROTOCOLS {
            let p = kind.build();
            let states = p.states();
            for &s in &states {
                if !p.supplies_on_snoop_read(s)
                    || !matches!(event, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_))
                {
                    let out = p.snoop(s, event);
                    assert!(
                        states.contains(&out.next),
                        "{}: snoop {s:?} x {event:?} -> undeclared {:?}",
                        p.name(),
                        out.next
                    );
                }
                match p.cpu_read(Some(s)) {
                    CpuOutcome::Hit { next } => assert!(states.contains(&next)),
                    CpuOutcome::Miss { intent } => {
                        assert!(states.contains(&p.own_complete(Some(s), intent)));
                    }
                }
                match p.cpu_write(Some(s)) {
                    CpuOutcome::Hit { next } => assert!(states.contains(&next)),
                    CpuOutcome::Miss { intent } => {
                        assert!(states.contains(&p.own_complete(Some(s), intent)));
                    }
                }
                if p.supplies_on_snoop_read(s) {
                    assert!(states.contains(&p.after_supply(s)));
                }
            }
            assert!(states.contains(&p.own_locked_read_complete(None)));
            assert!(states.contains(&p.own_unlock_write_complete(None)));
        }
    });
}

/// A foreign invalidate or write never leaves a stale-readable window:
/// afterwards the holder is either invalid or captured the new data.
#[test]
fn foreign_writes_never_leave_stale_readable_copies() {
    check(
        "foreign_writes_never_leave_stale_readable_copies",
        32,
        |rng| {
            let value = rng.next_u64();
            for kind in PROTOCOLS {
                let p = kind.build();
                for &s in &p.states() {
                    for event in [
                        SnoopEvent::Write(Word::new(value)),
                        SnoopEvent::UnlockWrite(Word::new(value)),
                        SnoopEvent::Invalidate,
                    ] {
                        let out = p.snoop(s, event);
                        let readable = out.next.is_readable_locally();
                        assert!(
                            !readable || out.capture,
                            "{}: {s:?} x {event:?} -> readable {:?} without capture",
                            p.name(),
                            out.next
                        );
                    }
                }
            }
        },
    );
}

/// Suppliers are exactly the states that own the latest value; only
/// those states require write-back on eviction. (A readable,
/// memory-consistent line must never be flushed or supplied.)
#[test]
fn supply_and_writeback_align_with_ownership() {
    for kind in PROTOCOLS {
        let p = kind.build();
        for &s in &p.states() {
            assert_eq!(
                p.supplies_on_snoop_read(s),
                s.owns_latest(),
                "{}: state {:?}",
                p.name(),
                s
            );
            assert_eq!(
                p.writeback_on_evict(s),
                s.owns_latest(),
                "{}: state {:?}",
                p.name(),
                s
            );
        }
    }
}

/// Local silent writes are only permitted in owning states: a write
/// that completes without bus activity must leave the line as the
/// unique up-to-date copy.
#[test]
fn silent_writes_imply_ownership_or_prior_ownership() {
    for kind in PROTOCOLS {
        let p = kind.build();
        for &s in &p.states() {
            if let CpuOutcome::Hit { next } = p.cpu_write(Some(s)) {
                assert!(
                    next.owns_latest(),
                    "{}: silent write in {s:?} leaves non-owning {next:?}",
                    p.name()
                );
            }
        }
    }
}

/// CPU reads never change the data and never reach the bus from a
/// readable state.
#[test]
fn reads_from_readable_states_are_free() {
    for kind in PROTOCOLS {
        let p = kind.build();
        for &s in &p.states() {
            if s.is_readable_locally() {
                assert!(
                    matches!(p.cpu_read(Some(s)), CpuOutcome::Hit { .. }),
                    "{}: read missed in readable {s:?}",
                    p.name()
                );
            }
        }
    }
}

/// The diagram extractor covers exactly (states x CPU stimuli) plus
/// snooped stimuli, and every edge it reports is reproducible.
#[test]
fn transition_tables_are_complete_and_deterministic() {
    for kind in PROTOCOLS {
        let p = kind.build();
        let rows = transition_table(p.as_ref());
        let per_state = if p.uses_bus_invalidate() { 5 } else { 4 };
        assert_eq!(rows.len(), p.states().len() * per_state);
        // Deterministic: extracting twice yields identical rows.
        assert_eq!(rows, transition_table(p.as_ref()));
    }
}

/// Only RWB captures write data; only RB-family protocols capture read
/// data.
#[test]
fn capture_capabilities_match_documentation() {
    for kind in PROTOCOLS {
        let p = kind.build();
        let writes_captured = p
            .states()
            .iter()
            .any(|&s| p.snoop(s, SnoopEvent::Write(Word::ONE)).capture);
        assert_eq!(writes_captured, p.broadcasts_write_data(), "{}", p.name());
    }
}

/// Non-randomized: the three-state RB machine is exactly the paper's.
#[test]
fn rb_state_count_matches_paper() {
    assert_eq!(ProtocolKind::Rb.build().states().len(), 3);
    assert_eq!(ProtocolKind::Rwb.build().states().len(), 4);
    assert_eq!(ProtocolKind::WriteOnce.build().states().len(), 4);
    assert_eq!(ProtocolKind::WriteThrough.build().states().len(), 2);
}
