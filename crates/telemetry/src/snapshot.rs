//! The unified metrics snapshot: every counter the machine exposes,
//! gathered into one typed, serializable tree.
//!
//! [`MetricsSnapshot::from_machine`] is the single reading point for
//! cache, bus, machine, fault, and histogram statistics; everything the
//! bench bins and experiment tables report is derived from it. The
//! serialized form contains **only raw integer counters** (never
//! derived ratios), so a snapshot round-trips through JSON exactly and
//! two snapshots can be merged by plain addition.

use crate::json::Json;
use decache_bus::BusOpKind;
use decache_cache::{AccessKind, RefClass};
use decache_machine::{Histogram, Machine};

/// Schema version stamped into every serialized snapshot.
pub const SCHEMA_VERSION: u64 = 1;

const KINDS: [&str; 2] = ["read", "write"];
const CLASSES: [&str; 3] = ["code", "local", "shared"];

fn field(value: &Json, key: &str) -> Result<Json, String> {
    value
        .get(key)
        .cloned()
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn uint(value: &Json, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an integer"))
}

/// Like [`uint`] but treats an absent field as 0, for counters added
/// after snapshots of this schema version were first written.
fn uint_or_zero(value: &Json, key: &str) -> Result<u64, String> {
    match value.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field '{key}' is not an integer")),
    }
}

/// Per-PE cache hit/miss counters, keyed by access kind × reference
/// class exactly like `CacheStats` (the paper's Table 1-1 taxonomy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// `hits[kind][class]`: kind 0 = read, 1 = write; class 0 = code,
    /// 1 = local, 2 = shared.
    pub hits: [[u64; 3]; 2],
    /// Misses, same indexing.
    pub misses: [[u64; 3]; 2],
}

impl CacheCounts {
    fn from_stats(stats: &decache_cache::CacheStats) -> Self {
        let mut out = CacheCounts::default();
        for (k, kind) in [AccessKind::Read, AccessKind::Write]
            .into_iter()
            .enumerate()
        {
            for (c, class) in RefClass::ALL.into_iter().enumerate() {
                out.hits[k][c] = stats.hits(kind, class);
                out.misses[k][c] = stats.misses(kind, class);
            }
        }
        out
    }

    /// Total references of all kinds and classes.
    pub fn total_references(&self) -> u64 {
        self.total_hits() + self.total_misses()
    }

    /// Total hits.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().flatten().sum()
    }

    /// Total misses.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().flatten().sum()
    }

    /// Read misses across all classes.
    pub fn read_misses(&self) -> u64 {
        self.misses[0].iter().sum()
    }

    /// Write misses across all classes.
    pub fn write_misses(&self) -> u64 {
        self.misses[1].iter().sum()
    }

    /// The hit ratio in `[0, 1]`; 0 with no references.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_references();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &CacheCounts) {
        for k in 0..2 {
            for c in 0..3 {
                self.hits[k][c] += other.hits[k][c];
                self.misses[k][c] += other.misses[k][c];
            }
        }
    }

    fn table_to_json(table: &[[u64; 3]; 2]) -> Json {
        Json::Object(
            KINDS
                .iter()
                .enumerate()
                .map(|(k, kind)| {
                    (
                        (*kind).to_owned(),
                        Json::Object(
                            CLASSES
                                .iter()
                                .enumerate()
                                .map(|(c, class)| ((*class).to_owned(), Json::U64(table[k][c])))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        )
    }

    fn table_from_json(value: &Json) -> Result<[[u64; 3]; 2], String> {
        let mut table = [[0u64; 3]; 2];
        for (k, kind) in KINDS.iter().enumerate() {
            let row = field(value, kind)?;
            for (c, class) in CLASSES.iter().enumerate() {
                table[k][c] = uint(&row, class)?;
            }
        }
        Ok(table)
    }

    fn to_json(self) -> Json {
        Json::object(vec![
            ("hits", Self::table_to_json(&self.hits)),
            ("misses", Self::table_to_json(&self.misses)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(CacheCounts {
            hits: Self::table_from_json(&field(value, "hits")?)?,
            misses: Self::table_from_json(&field(value, "misses")?)?,
        })
    }
}

/// Per-bus traffic counters, mirroring `TrafficStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusCounts {
    /// Plain bus reads (`BR`).
    pub reads: u64,
    /// Bus writes (`BW`), including supplier substitutions, eviction
    /// write-backs, and lock-rejected attempts.
    pub writes: u64,
    /// Bus invalidates (`BI`).
    pub invalidates: u64,
    /// Locked reads (`BRL`), accepted or rejected.
    pub locked_reads: u64,
    /// Unlocking writes (`BWU`).
    pub unlock_writes: u64,
    /// Reads interrupted by an owning snooper.
    pub aborted_reads: u64,
    /// Transactions re-run from the retry lane.
    pub retries: u64,
    /// Cycles with a transaction on the bus.
    pub busy_cycles: u64,
    /// Cycles with the bus idle.
    pub idle_cycles: u64,
    /// Split-transaction address phases (zero under non-split
    /// disciplines).
    pub address_phases: u64,
}

impl BusCounts {
    fn from_stats(stats: &decache_bus::TrafficStats) -> Self {
        BusCounts {
            reads: stats.count(BusOpKind::Read),
            writes: stats.count(BusOpKind::Write),
            invalidates: stats.count(BusOpKind::Invalidate),
            locked_reads: stats.count(BusOpKind::ReadWithLock),
            unlock_writes: stats.count(BusOpKind::WriteWithUnlock),
            aborted_reads: stats.aborted_reads,
            retries: stats.retries,
            busy_cycles: stats.busy_cycles,
            idle_cycles: stats.idle_cycles,
            address_phases: stats.address_phases,
        }
    }

    /// Total transactions across all kinds.
    pub fn total_transactions(&self) -> u64 {
        self.reads + self.writes + self.invalidates + self.locked_reads + self.unlock_writes
    }

    /// Data-fetching transactions (`BR + BRL`).
    pub fn total_reads(&self) -> u64 {
        self.reads + self.locked_reads
    }

    /// Memory-updating transactions (`BW + BWU`).
    pub fn total_writes(&self) -> u64 {
        self.writes + self.unlock_writes
    }

    /// The fraction of cycles the bus was busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &BusCounts) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.invalidates += other.invalidates;
        self.locked_reads += other.locked_reads;
        self.unlock_writes += other.unlock_writes;
        self.aborted_reads += other.aborted_reads;
        self.retries += other.retries;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.address_phases += other.address_phases;
    }

    fn to_json(self) -> Json {
        Json::object(vec![
            ("reads", Json::U64(self.reads)),
            ("writes", Json::U64(self.writes)),
            ("invalidates", Json::U64(self.invalidates)),
            ("locked_reads", Json::U64(self.locked_reads)),
            ("unlock_writes", Json::U64(self.unlock_writes)),
            ("aborted_reads", Json::U64(self.aborted_reads)),
            ("retries", Json::U64(self.retries)),
            ("busy_cycles", Json::U64(self.busy_cycles)),
            ("idle_cycles", Json::U64(self.idle_cycles)),
            ("address_phases", Json::U64(self.address_phases)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(BusCounts {
            reads: uint(value, "reads")?,
            writes: uint(value, "writes")?,
            invalidates: uint(value, "invalidates")?,
            locked_reads: uint(value, "locked_reads")?,
            unlock_writes: uint(value, "unlock_writes")?,
            aborted_reads: uint(value, "aborted_reads")?,
            retries: uint(value, "retries")?,
            busy_cycles: uint(value, "busy_cycles")?,
            idle_cycles: uint(value, "idle_cycles")?,
            // Postdates the first schema-1 snapshots; absent means a
            // run under a non-split discipline that never counted it.
            address_phases: uint_or_zero(value, "address_phases")?,
        })
    }
}

/// Machine-level counters, mirroring `MachineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineCounts {
    /// Stalled reads completed by snooping a broadcast.
    pub broadcast_satisfied: u64,
    /// Evicted lines written back to memory.
    pub writebacks: u64,
    /// Test-and-Set operations that acquired.
    pub ts_successes: u64,
    /// Test-and-Set operations that found the variable non-zero.
    pub ts_failures: u64,
    /// Bus transactions rejected by a memory lock and requeued.
    pub lock_rejections: u64,
    /// Locked reads among the rejections.
    pub lock_rejected_reads: u64,
    /// Plain bus writes among the rejections.
    pub lock_rejected_writes: u64,
    /// Deterministic work units: logical tag-store accesses.
    pub tag_probes: u64,
    /// Deterministic work units: broadcast fan-out visits (sharer and
    /// pending-reader).
    pub sharer_visits: u64,
    /// Deterministic work units: arbitration scans of a non-empty bus
    /// queue.
    pub queue_scans: u64,
    /// Split-transaction requests cancelled between their address and
    /// data phases (broadcast satisfaction or fail-stop).
    pub split_cancels: u64,
}

impl MachineCounts {
    fn from_stats(stats: &decache_machine::MachineStats) -> Self {
        MachineCounts {
            broadcast_satisfied: stats.broadcast_satisfied,
            writebacks: stats.writebacks,
            ts_successes: stats.ts_successes,
            ts_failures: stats.ts_failures,
            lock_rejections: stats.lock_rejections,
            lock_rejected_reads: stats.lock_rejected_reads,
            lock_rejected_writes: stats.lock_rejected_writes,
            tag_probes: stats.tag_probes,
            sharer_visits: stats.sharer_visits,
            queue_scans: stats.queue_scans,
            split_cancels: stats.split_cancels,
        }
    }

    /// Total Test-and-Set operations.
    pub fn ts_attempts(&self) -> u64 {
        self.ts_successes + self.ts_failures
    }

    /// Total deterministic work units, matching
    /// `MachineStats::work_units`.
    pub fn work_units(&self) -> u64 {
        self.tag_probes + self.sharer_visits + self.queue_scans
    }

    fn merge(&mut self, other: &MachineCounts) {
        self.broadcast_satisfied += other.broadcast_satisfied;
        self.writebacks += other.writebacks;
        self.ts_successes += other.ts_successes;
        self.ts_failures += other.ts_failures;
        self.lock_rejections += other.lock_rejections;
        self.lock_rejected_reads += other.lock_rejected_reads;
        self.lock_rejected_writes += other.lock_rejected_writes;
        self.tag_probes += other.tag_probes;
        self.sharer_visits += other.sharer_visits;
        self.queue_scans += other.queue_scans;
        self.split_cancels += other.split_cancels;
    }

    fn to_json(self) -> Json {
        Json::object(vec![
            ("broadcast_satisfied", Json::U64(self.broadcast_satisfied)),
            ("writebacks", Json::U64(self.writebacks)),
            ("ts_successes", Json::U64(self.ts_successes)),
            ("ts_failures", Json::U64(self.ts_failures)),
            ("lock_rejections", Json::U64(self.lock_rejections)),
            ("lock_rejected_reads", Json::U64(self.lock_rejected_reads)),
            ("lock_rejected_writes", Json::U64(self.lock_rejected_writes)),
            ("tag_probes", Json::U64(self.tag_probes)),
            ("sharer_visits", Json::U64(self.sharer_visits)),
            ("queue_scans", Json::U64(self.queue_scans)),
            ("split_cancels", Json::U64(self.split_cancels)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(MachineCounts {
            broadcast_satisfied: uint(value, "broadcast_satisfied")?,
            writebacks: uint(value, "writebacks")?,
            ts_successes: uint(value, "ts_successes")?,
            ts_failures: uint(value, "ts_failures")?,
            lock_rejections: uint(value, "lock_rejections")?,
            lock_rejected_reads: uint(value, "lock_rejected_reads")?,
            lock_rejected_writes: uint(value, "lock_rejected_writes")?,
            // The work-unit counters postdate the first schema-1
            // snapshots; absent means a run that never counted them.
            tag_probes: uint_or_zero(value, "tag_probes")?,
            sharer_visits: uint_or_zero(value, "sharer_visits")?,
            queue_scans: uint_or_zero(value, "queue_scans")?,
            split_cancels: uint_or_zero(value, "split_cancels")?,
        })
    }
}

/// Fault-injection and recovery counters, mirroring `FaultStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Memory word flips injected.
    pub memory_faults_injected: u64,
    /// Cache line flips injected.
    pub cache_faults_injected: u64,
    /// Bus transactions lost (granted, burned, retried).
    pub bus_transactions_lost: u64,
    /// PEs fail-stopped.
    pub pe_fail_stops: u64,
    /// Memory parity failures detected on bus reads.
    pub memory_faults_detected: u64,
    /// Cache parity failures detected on CPU access or supply.
    pub cache_faults_detected: u64,
    /// Memory words repaired from an owning cache copy.
    pub memory_recoveries_owner: u64,
    /// Memory words repaired by majority vote.
    pub memory_recoveries_majority: u64,
    /// Detected memory faults with no usable replica.
    pub memory_recoveries_failed: u64,
    /// Corrupted cache lines invalidated and re-fetched.
    pub cache_refetches: u64,
    /// Corrupted cache lines healed by a captured broadcast.
    pub broadcast_heals: u64,
    /// Writes that existed only in a corrupted or dead cache.
    pub lost_writes: u64,
    /// Owned lines flushed by fail-stop draining.
    pub drained_lines: u64,
    /// Memory locks forcibly released from fail-stopped PEs.
    pub forced_unlocks: u64,
    /// Sum over detections of (detection cycle − injection cycle).
    pub recovery_latency_total: u64,
    /// Detections contributing to the latency sum.
    pub recovery_latency_samples: u64,
    /// Sum over in-loop recoveries of the replica count consulted.
    pub replicas_at_recovery: u64,
}

impl FaultCounts {
    fn from_stats(stats: &decache_machine::FaultStats) -> Self {
        FaultCounts {
            memory_faults_injected: stats.memory_faults_injected,
            cache_faults_injected: stats.cache_faults_injected,
            bus_transactions_lost: stats.bus_transactions_lost,
            pe_fail_stops: stats.pe_fail_stops,
            memory_faults_detected: stats.memory_faults_detected,
            cache_faults_detected: stats.cache_faults_detected,
            memory_recoveries_owner: stats.memory_recoveries_owner,
            memory_recoveries_majority: stats.memory_recoveries_majority,
            memory_recoveries_failed: stats.memory_recoveries_failed,
            cache_refetches: stats.cache_refetches,
            broadcast_heals: stats.broadcast_heals,
            lost_writes: stats.lost_writes,
            drained_lines: stats.drained_lines,
            forced_unlocks: stats.forced_unlocks,
            recovery_latency_total: stats.recovery_latency_total,
            recovery_latency_samples: stats.recovery_latency_samples,
            replicas_at_recovery: stats.replicas_at_recovery,
        }
    }

    /// Total faults injected, of every kind.
    pub fn total_injected(&self) -> u64 {
        self.memory_faults_injected
            + self.cache_faults_injected
            + self.bus_transactions_lost
            + self.pe_fail_stops
    }

    /// In-loop memory recovery attempts.
    pub fn memory_recovery_attempts(&self) -> u64 {
        self.memory_recoveries_owner
            + self.memory_recoveries_majority
            + self.memory_recoveries_failed
    }

    /// Fraction of detected memory faults repaired from a replica
    /// (`None` when nothing was detected).
    pub fn memory_recovery_success_rate(&self) -> Option<f64> {
        let attempts = self.memory_recovery_attempts();
        (attempts > 0).then(|| {
            (self.memory_recoveries_owner + self.memory_recoveries_majority) as f64
                / attempts as f64
        })
    }

    const FIELDS: [&'static str; 17] = [
        "memory_faults_injected",
        "cache_faults_injected",
        "bus_transactions_lost",
        "pe_fail_stops",
        "memory_faults_detected",
        "cache_faults_detected",
        "memory_recoveries_owner",
        "memory_recoveries_majority",
        "memory_recoveries_failed",
        "cache_refetches",
        "broadcast_heals",
        "lost_writes",
        "drained_lines",
        "forced_unlocks",
        "recovery_latency_total",
        "recovery_latency_samples",
        "replicas_at_recovery",
    ];

    fn as_array(&self) -> [u64; 17] {
        [
            self.memory_faults_injected,
            self.cache_faults_injected,
            self.bus_transactions_lost,
            self.pe_fail_stops,
            self.memory_faults_detected,
            self.cache_faults_detected,
            self.memory_recoveries_owner,
            self.memory_recoveries_majority,
            self.memory_recoveries_failed,
            self.cache_refetches,
            self.broadcast_heals,
            self.lost_writes,
            self.drained_lines,
            self.forced_unlocks,
            self.recovery_latency_total,
            self.recovery_latency_samples,
            self.replicas_at_recovery,
        ]
    }

    fn from_array(values: [u64; 17]) -> Self {
        FaultCounts {
            memory_faults_injected: values[0],
            cache_faults_injected: values[1],
            bus_transactions_lost: values[2],
            pe_fail_stops: values[3],
            memory_faults_detected: values[4],
            cache_faults_detected: values[5],
            memory_recoveries_owner: values[6],
            memory_recoveries_majority: values[7],
            memory_recoveries_failed: values[8],
            cache_refetches: values[9],
            broadcast_heals: values[10],
            lost_writes: values[11],
            drained_lines: values[12],
            forced_unlocks: values[13],
            recovery_latency_total: values[14],
            recovery_latency_samples: values[15],
            replicas_at_recovery: values[16],
        }
    }

    fn merge(&mut self, other: &FaultCounts) {
        let mut merged = self.as_array();
        for (m, o) in merged.iter_mut().zip(other.as_array()) {
            *m += o;
        }
        *self = Self::from_array(merged);
    }

    fn to_json(self) -> Json {
        Json::Object(
            Self::FIELDS
                .iter()
                .zip(self.as_array())
                .map(|(k, v)| ((*k).to_owned(), Json::U64(v)))
                .collect(),
        )
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let mut values = [0u64; 17];
        for (slot, key) in values.iter_mut().zip(Self::FIELDS) {
            *slot = uint(value, key)?;
        }
        Ok(Self::from_array(values))
    }
}

/// A serialized latency histogram: the moments plus the non-empty
/// power-of-2 buckets as `(floor, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// The largest sample.
    pub max: u64,
    /// Non-empty buckets, ascending by floor.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets: h.nonzero_buckets(),
        }
    }

    /// The mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for &(floor, count) in &other.buckets {
            match self.buckets.binary_search_by_key(&floor, |&(f, _)| f) {
                Ok(i) => self.buckets[i].1 += count,
                Err(i) => self.buckets.insert(i, (floor, count)),
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            (
                "buckets",
                Json::Array(
                    self.buckets
                        .iter()
                        .map(|&(floor, count)| {
                            Json::Array(vec![Json::U64(floor), Json::U64(count)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let buckets = field(value, "buckets")?;
        let buckets = buckets
            .as_array()
            .ok_or("'buckets' is not an array")?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().ok_or("bucket is not a pair")?;
                match pair {
                    [floor, count] => Ok((
                        floor.as_u64().ok_or("bucket floor is not an integer")?,
                        count.as_u64().ok_or("bucket count is not an integer")?,
                    )),
                    _ => Err("bucket is not a pair".to_owned()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(HistogramSnapshot {
            count: uint(value, "count")?,
            sum: uint(value, "sum")?,
            max: uint(value, "max")?,
            buckets,
        })
    }
}

/// The four cycle-attribution histograms in serialized form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSet {
    /// Arbitration wait per granted transaction.
    pub bus_acquire_wait: HistogramSnapshot,
    /// Bus occupancy per memory-touching transaction.
    pub memory_service: HistogramSnapshot,
    /// Read-miss-to-fill latency.
    pub read_fill: HistogramSnapshot,
    /// Test-and-Set issue-to-resolution spin length.
    pub ts_spin: HistogramSnapshot,
}

impl HistogramSet {
    fn merge(&mut self, other: &HistogramSet) {
        self.bus_acquire_wait.merge(&other.bus_acquire_wait);
        self.memory_service.merge(&other.memory_service);
        self.read_fill.merge(&other.read_fill);
        self.ts_spin.merge(&other.ts_spin);
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("bus_acquire_wait", self.bus_acquire_wait.to_json()),
            ("memory_service", self.memory_service.to_json()),
            ("read_fill", self.read_fill.to_json()),
            ("ts_spin", self.ts_spin.to_json()),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(HistogramSet {
            bus_acquire_wait: HistogramSnapshot::from_json(&field(value, "bus_acquire_wait")?)?,
            memory_service: HistogramSnapshot::from_json(&field(value, "memory_service")?)?,
            read_fill: HistogramSnapshot::from_json(&field(value, "read_fill")?)?,
            ts_spin: HistogramSnapshot::from_json(&field(value, "ts_spin")?)?,
        })
    }
}

/// One unified snapshot of every statistic a machine exposes.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::{MachineBuilder, Script};
/// use decache_mem::{Addr, Word};
/// use decache_telemetry::MetricsSnapshot;
///
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .telemetry()
///     .processor(Script::new().write(Addr::new(0), Word::ONE).build())
///     .processor(Script::new().read(Addr::new(0)).build())
///     .build();
/// machine.run_to_completion(1_000);
///
/// let snapshot = MetricsSnapshot::from_machine(&machine);
/// snapshot.check_conservation().unwrap();
/// let back = MetricsSnapshot::parse(&snapshot.to_json_string()).unwrap();
/// assert_eq!(back, snapshot);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The coherence protocol's display name (e.g. `"RWB"`).
    pub protocol: String,
    /// Processing elements in the machine.
    pub pes: u64,
    /// Shared buses in the machine.
    pub buses: u64,
    /// Elapsed bus cycles.
    pub cycles: u64,
    /// Runs merged into this snapshot (1 for a fresh one).
    pub runs: u64,
    /// Per-PE cache hit/miss counters.
    pub cache_per_pe: Vec<CacheCounts>,
    /// Per-bus traffic counters.
    pub bus_per_bus: Vec<BusCounts>,
    /// Machine-level counters.
    pub machine: MachineCounts,
    /// Fault-injection and recovery counters.
    pub faults: FaultCounts,
    /// Cycle-attribution histograms; `None` when the machine was built
    /// without [`MachineBuilder::telemetry`].
    ///
    /// [`MachineBuilder::telemetry`]: decache_machine::MachineBuilder::telemetry
    pub histograms: Option<HistogramSet>,
}

impl MetricsSnapshot {
    /// Reads every counter out of a machine.
    pub fn from_machine(machine: &Machine) -> Self {
        let traffic = machine.traffic_per_bus();
        MetricsSnapshot {
            protocol: machine.protocol().name().to_owned(),
            pes: machine.pe_count() as u64,
            buses: machine.bus_count() as u64,
            cycles: machine.cycles(),
            runs: 1,
            cache_per_pe: (0..machine.pe_count())
                .map(|pe| CacheCounts::from_stats(&machine.cache_stats(pe)))
                .collect(),
            bus_per_bus: (0..machine.bus_count())
                .map(|b| BusCounts::from_stats(traffic.bus(b)))
                .collect(),
            machine: MachineCounts::from_stats(&machine.stats()),
            faults: FaultCounts::from_stats(&machine.fault_stats()),
            histograms: machine.histograms().map(|h| HistogramSet {
                bus_acquire_wait: HistogramSnapshot::from_histogram(&h.bus_acquire_wait),
                memory_service: HistogramSnapshot::from_histogram(&h.memory_service),
                read_fill: HistogramSnapshot::from_histogram(&h.read_fill),
                ts_spin: HistogramSnapshot::from_histogram(&h.ts_spin),
            }),
        }
    }

    /// Cache counters summed over all PEs.
    pub fn cache_total(&self) -> CacheCounts {
        let mut total = CacheCounts::default();
        for c in &self.cache_per_pe {
            total.merge(c);
        }
        total
    }

    /// Traffic counters summed over all buses.
    pub fn bus_total(&self) -> BusCounts {
        let mut total = BusCounts::default();
        for b in &self.bus_per_bus {
            total.merge(b);
        }
        total
    }

    /// Merges another run of the **same configuration** (protocol, PE
    /// count, bus count) into this snapshot by summing every counter.
    ///
    /// # Errors
    ///
    /// Returns a message if the configurations differ, or if exactly
    /// one of the two snapshots carries histograms.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), String> {
        if self.protocol != other.protocol {
            return Err(format!(
                "protocol mismatch: {} vs {}",
                self.protocol, other.protocol
            ));
        }
        if self.pes != other.pes || self.buses != other.buses {
            return Err(format!(
                "shape mismatch: {}x{} vs {}x{} (PEs x buses)",
                self.pes, self.buses, other.pes, other.buses
            ));
        }
        match (&mut self.histograms, &other.histograms) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, None) => {}
            _ => return Err("histogram presence mismatch".to_owned()),
        }
        self.cycles += other.cycles;
        self.runs += other.runs;
        for (mine, theirs) in self.cache_per_pe.iter_mut().zip(&other.cache_per_pe) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.bus_per_bus.iter_mut().zip(&other.bus_per_bus) {
            mine.merge(theirs);
        }
        self.machine.merge(&other.machine);
        self.faults.merge(&other.faults);
        Ok(())
    }

    /// Serializes to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::U64(SCHEMA_VERSION)),
            ("protocol", Json::Str(self.protocol.clone())),
            ("pes", Json::U64(self.pes)),
            ("buses", Json::U64(self.buses)),
            ("cycles", Json::U64(self.cycles)),
            ("runs", Json::U64(self.runs)),
            (
                "cache_per_pe",
                Json::Array(self.cache_per_pe.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "bus_per_bus",
                Json::Array(self.bus_per_bus.iter().map(|b| b.to_json()).collect()),
            ),
            ("machine", self.machine.to_json()),
            ("faults", self.faults.to_json()),
        ];
        if let Some(h) = &self.histograms {
            fields.push(("histograms", h.to_json()));
        }
        Json::object(fields)
    }

    /// The canonical compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Reconstructs a snapshot from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or ill-typed field, or an
    /// unsupported schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let schema = uint(value, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported snapshot schema {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let cache_per_pe = field(value, "cache_per_pe")?
            .as_array()
            .ok_or("'cache_per_pe' is not an array")?
            .iter()
            .map(CacheCounts::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let bus_per_bus = field(value, "bus_per_bus")?
            .as_array()
            .ok_or("'bus_per_bus' is not an array")?
            .iter()
            .map(BusCounts::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsSnapshot {
            protocol: field(value, "protocol")?
                .as_str()
                .ok_or("'protocol' is not a string")?
                .to_owned(),
            pes: uint(value, "pes")?,
            buses: uint(value, "buses")?,
            cycles: uint(value, "cycles")?,
            runs: uint(value, "runs")?,
            cache_per_pe,
            bus_per_bus,
            machine: MachineCounts::from_json(&field(value, "machine")?)?,
            faults: FaultCounts::from_json(&field(value, "faults")?)?,
            histograms: match value.get("histograms") {
                Some(h) => Some(HistogramSet::from_json(h)?),
                None => None,
            },
        })
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a schema mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Checks every cross-counter identity that holds for **any**
    /// snapshot — fault-free or fault-laden, fresh or merged. The
    /// seeded conservation suite layers stricter fault-free identities
    /// on top.
    ///
    /// # Errors
    ///
    /// Returns the list of violated identities.
    pub fn check_conservation(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let mut check = |ok: bool, what: String| {
            if !ok {
                violations.push(what);
            }
        };
        let bus = self.bus_total();
        let m = &self.machine;
        let f = &self.faults;

        check(
            self.cache_per_pe.len() as u64 == self.pes,
            format!(
                "per-PE cache vector length {} != pes {}",
                self.cache_per_pe.len(),
                self.pes
            ),
        );
        check(
            self.bus_per_bus.len() as u64 == self.buses,
            format!(
                "per-bus vector length {} != buses {}",
                self.bus_per_bus.len(),
                self.buses
            ),
        );

        // Rejection split: every rejection is exactly one locked read
        // or one plain write.
        check(
            m.lock_rejected_reads + m.lock_rejected_writes == m.lock_rejections,
            format!(
                "lock rejections {} != rejected reads {} + rejected writes {}",
                m.lock_rejections, m.lock_rejected_reads, m.lock_rejected_writes
            ),
        );

        // Every unlocking write completes exactly one successful TS
        // (BWU cannot be rejected; a cancelled one is never granted).
        check(
            bus.unlock_writes == m.ts_successes,
            format!(
                "BWU {} != TS successes {}",
                bus.unlock_writes, m.ts_successes
            ),
        );

        // Locked reads: one accepted BRL resolves each TS attempt, one
        // rejected BRL per rejected locked read; a fail-stop can cancel
        // an attempt after its BRL was accepted but before resolution.
        check(
            bus.locked_reads >= m.ts_attempts() + m.lock_rejected_reads
                && bus.locked_reads <= m.ts_attempts() + m.lock_rejected_reads + f.pe_fail_stops,
            format!(
                "BRL {} outside [TS attempts {} + rejected reads {}, +fail-stops {}]",
                bus.locked_reads,
                m.ts_attempts(),
                m.lock_rejected_reads,
                f.pe_fail_stops
            ),
        );

        // A broadcast can satisfy at most the n-1 other PEs per
        // transaction.
        check(
            m.broadcast_satisfied <= self.pes.saturating_sub(1) * bus.total_transactions(),
            format!(
                "broadcasts satisfied {} > (pes-1) x transactions {}",
                m.broadcast_satisfied,
                self.pes.saturating_sub(1) * bus.total_transactions()
            ),
        );

        // Work-unit identities (skipped for legacy snapshots that
        // predate the counters and parsed them as all-zero). Every
        // sharer or pending-reader visit probes exactly one tag store,
        // every issued CPU reference probes one, and every
        // broadcast-satisfied read was one pending-reader visit — on
        // both the scanned and the batched dispatch path.
        if m.work_units() > 0 {
            check(
                m.tag_probes >= m.sharer_visits,
                format!(
                    "tag probes {} < sharer visits {}",
                    m.tag_probes, m.sharer_visits
                ),
            );
            check(
                m.sharer_visits >= m.broadcast_satisfied,
                format!(
                    "sharer visits {} < broadcasts satisfied {}",
                    m.sharer_visits, m.broadcast_satisfied
                ),
            );
            check(
                m.tag_probes >= self.cache_total().total_references(),
                format!(
                    "tag probes {} < cache references {}",
                    m.tag_probes,
                    self.cache_total().total_references()
                ),
            );
            check(
                m.queue_scans <= self.cycles.saturating_mul(self.buses),
                format!(
                    "queue scans {} > cycles {} x buses {}",
                    m.queue_scans, self.cycles, self.buses
                ),
            );
        }

        // Address phases are busy cycles the split discipline charges
        // without a transaction completion; other disciplines never
        // record one.
        for (i, b) in self.bus_per_bus.iter().enumerate() {
            check(
                b.address_phases <= b.busy_cycles,
                format!(
                    "bus {i}: address phases {} > busy cycles {}",
                    b.address_phases, b.busy_cycles
                ),
            );
        }

        // Eviction write-backs and fail-stop drains are each charged
        // one bus write.
        check(
            m.writebacks + f.drained_lines <= bus.writes,
            format!(
                "writebacks {} + drained {} > bus writes {}",
                m.writebacks, f.drained_lines, bus.writes
            ),
        );

        // Every detected memory fault reaches the repair policy exactly
        // once.
        check(
            f.memory_recovery_attempts() == f.memory_faults_detected,
            format!(
                "memory recovery attempts {} != detections {}",
                f.memory_recovery_attempts(),
                f.memory_faults_detected
            ),
        );

        // Detecting a corrupted cache line and re-fetching it are the
        // same event.
        check(
            f.cache_refetches == f.cache_faults_detected,
            format!(
                "cache refetches {} != cache detections {}",
                f.cache_refetches, f.cache_faults_detected
            ),
        );

        // Each detection or heal closes at most one latency ledger
        // entry.
        check(
            f.recovery_latency_samples
                <= f.memory_faults_detected + f.cache_faults_detected + f.broadcast_heals,
            format!(
                "latency samples {} > detections {} + heals {}",
                f.recovery_latency_samples,
                f.memory_faults_detected + f.cache_faults_detected,
                f.broadcast_heals
            ),
        );

        if let Some(h) = &self.histograms {
            // Histogram populations equal their driving counters —
            // exact even under faults.
            // Split cancels sampled a wait at their address grant but
            // never complete a transaction, so they join the
            // ledger on the sample side.
            check(
                h.bus_acquire_wait.count
                    == bus.total_transactions() - m.writebacks - f.drained_lines + m.split_cancels,
                format!(
                    "acquire-wait samples {} != transactions {} - writebacks {} - drained {} \
                     + split cancels {}",
                    h.bus_acquire_wait.count,
                    bus.total_transactions(),
                    m.writebacks,
                    f.drained_lines,
                    m.split_cancels
                ),
            );
            // Under split every grant records exactly one address
            // phase; under other disciplines none do.
            check(
                bus.address_phases <= h.bus_acquire_wait.count,
                format!(
                    "address phases {} > acquire-wait samples {}",
                    bus.address_phases, h.bus_acquire_wait.count
                ),
            );
            check(
                h.memory_service.count
                    == bus.total_reads() + bus.total_writes() - m.lock_rejections,
                format!(
                    "memory-service samples {} != reads {} + writes {} - rejections {}",
                    h.memory_service.count,
                    bus.total_reads(),
                    bus.total_writes(),
                    m.lock_rejections
                ),
            );
            check(
                h.read_fill.count == bus.reads + m.broadcast_satisfied,
                format!(
                    "read-fill samples {} != BR {} + broadcasts satisfied {}",
                    h.read_fill.count, bus.reads, m.broadcast_satisfied
                ),
            );
            check(
                h.ts_spin.count == m.ts_attempts(),
                format!(
                    "TS-spin samples {} != TS attempts {}",
                    h.ts_spin.count,
                    m.ts_attempts()
                ),
            );
            for (name, hist) in [
                ("bus_acquire_wait", &h.bus_acquire_wait),
                ("memory_service", &h.memory_service),
                ("read_fill", &h.read_fill),
                ("ts_spin", &h.ts_spin),
            ] {
                let bucket_total: u64 = hist.buckets.iter().map(|&(_, c)| c).sum();
                check(
                    bucket_total == hist.count,
                    format!(
                        "{name}: bucket population {bucket_total} != count {}",
                        hist.count
                    ),
                );
                if hist.count > 0 {
                    check(
                        hist.max <= hist.sum
                            && hist.sum <= hist.count.saturating_mul(hist.max.max(1)),
                        format!(
                            "{name}: moments inconsistent (count={} sum={} max={})",
                            hist.count, hist.sum, hist.max
                        ),
                    );
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::{MachineBuilder, Script};
    use decache_mem::{Addr, Word};

    fn sample_machine(telemetry: bool) -> Machine {
        let mut b = MachineBuilder::new(ProtocolKind::Rwb);
        b.memory_words(64).cache_lines(8);
        if telemetry {
            b.telemetry();
        }
        let mut machine = b
            .processor(
                Script::new()
                    .write(Addr::new(0), Word::new(7))
                    .test_and_set(Addr::new(1), Word::ONE)
                    .read(Addr::new(2))
                    .build(),
            )
            .processor(
                Script::new()
                    .read(Addr::new(0))
                    .test_and_set(Addr::new(1), Word::ONE)
                    .build(),
            )
            .build();
        machine.run_to_completion(10_000);
        machine
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        for telemetry in [false, true] {
            let machine = sample_machine(telemetry);
            let snapshot = MetricsSnapshot::from_machine(&machine);
            assert_eq!(snapshot.histograms.is_some(), telemetry);
            let text = snapshot.to_json_string();
            let back = MetricsSnapshot::parse(&text).unwrap();
            assert_eq!(back, snapshot);
            assert_eq!(back.to_json_string(), text, "canonical form is stable");
        }
    }

    #[test]
    fn snapshot_matches_machine_counters() {
        let machine = sample_machine(true);
        let snapshot = MetricsSnapshot::from_machine(&machine);
        assert_eq!(snapshot.protocol, "RWB");
        assert_eq!(snapshot.pes, 2);
        assert_eq!(snapshot.cycles, machine.cycles());
        assert_eq!(
            snapshot.cache_total().total_references(),
            machine.total_cache_stats().total_references()
        );
        assert_eq!(
            snapshot.bus_total().total_transactions(),
            machine.traffic().total_transactions()
        );
        assert_eq!(
            snapshot.machine.ts_attempts(),
            machine.stats().ts_attempts()
        );
        assert_eq!(
            snapshot.machine.work_units(),
            machine.stats().work_units(),
            "work-unit counters survive the snapshot"
        );
        assert!(snapshot.machine.tag_probes > 0);
    }

    #[test]
    fn legacy_snapshot_without_work_units_still_parses() {
        let machine = sample_machine(false);
        let snapshot = MetricsSnapshot::from_machine(&machine);
        let mut text = snapshot.to_json_string();
        for key in ["tag_probes", "sharer_visits", "queue_scans"] {
            let needle = format!(
                ",\"{key}\":{}",
                match key {
                    "tag_probes" => snapshot.machine.tag_probes,
                    "sharer_visits" => snapshot.machine.sharer_visits,
                    _ => snapshot.machine.queue_scans,
                }
            );
            assert!(text.contains(&needle), "expected {needle} in {text}");
            text = text.replace(&needle, "");
        }
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(back.machine.work_units(), 0, "absent counters read as 0");
        back.check_conservation()
            .expect("work-unit identities are skipped for legacy snapshots");
    }

    #[test]
    fn conservation_catches_doctored_work_units() {
        let machine = sample_machine(true);
        let mut snapshot = MetricsSnapshot::from_machine(&machine);
        snapshot.machine.sharer_visits = snapshot.machine.tag_probes + 1;
        let violations = snapshot.check_conservation().unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("tag probes")),
            "{violations:?}"
        );
    }

    #[test]
    fn conservation_holds_on_a_real_run() {
        let machine = sample_machine(true);
        MetricsSnapshot::from_machine(&machine)
            .check_conservation()
            .unwrap();
    }

    #[test]
    fn conservation_catches_a_doctored_counter() {
        let machine = sample_machine(true);
        let mut snapshot = MetricsSnapshot::from_machine(&machine);
        snapshot.machine.ts_successes += 1;
        let violations = snapshot.check_conservation().unwrap_err();
        assert!(!violations.is_empty());
    }

    #[test]
    fn merge_sums_counters() {
        let machine = sample_machine(true);
        let one = MetricsSnapshot::from_machine(&machine);
        let mut two = one.clone();
        two.merge(&one).unwrap();
        assert_eq!(two.runs, 2);
        assert_eq!(two.cycles, 2 * one.cycles);
        assert_eq!(
            two.cache_total().total_references(),
            2 * one.cache_total().total_references()
        );
        two.check_conservation().unwrap();

        let mut other = one.clone();
        other.protocol = "RB".to_owned();
        assert!(other.merge(&one).is_err());
    }

    #[test]
    fn histogram_merge_combines_buckets() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 5,
            max: 4,
            buckets: vec![(1, 1), (4, 1)],
        };
        let b = HistogramSnapshot {
            count: 2,
            sum: 10,
            max: 8,
            buckets: vec![(4, 1), (8, 1)],
        };
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 15);
        assert_eq!(a.max, 8);
        assert_eq!(a.buckets, vec![(1, 1), (4, 2), (8, 1)]);
    }
}
