//! Unified telemetry for the decentralized-cache simulator: one typed
//! [`MetricsSnapshot`] over every counter the machine exposes,
//! cycle-attribution [`Histogram`]s, and a Chrome-trace / Perfetto
//! [`PerfettoTrace`] exporter over the machine's observation stream.
//!
//! The paper's evaluation (Sections 6–7) argues from aggregate
//! statistics — hit ratios, bus utilization, traffic mix. This crate
//! makes those statistics *portable*: a snapshot is a single JSON
//! document with a versioned schema, byte-stable canonical form, lossless
//! round-trip, and a [`check_conservation`] self-audit that ties the
//! counters to each other across crates (cache ↔ bus ↔ machine ↔
//! faults). Everything here observes the simulation without perturbing
//! it: telemetry-enabled and telemetry-disabled runs produce identical
//! statistics, a contract pinned by the fingerprint golden tests.
//!
//! Three layers:
//!
//! - [`json`] — a dependency-free JSON value, canonical writer, and
//!   parser (the build is hermetic; there is no serde here).
//! - [`MetricsSnapshot`] — the metrics registry: per-PE cache counters,
//!   per-bus traffic counters, machine and fault counters, and (when
//!   the machine was built with
//!   [`MachineBuilder::telemetry`](decache_machine::MachineBuilder::telemetry))
//!   the four cycle-attribution histograms: bus-acquire wait, memory
//!   service time, read-miss fill latency, and Test-and-Set spin
//!   length.
//! - [`PerfettoTrace`] — a ring-buffered observer whose capture exports
//!   as Trace Event Format JSON, one track per PE and per bus, loadable
//!   in `chrome://tracing` or ui.perfetto.dev. Bench bins honour
//!   `DECACHE_TRACE=<path>` via [`env_trace_path`].
//!
//! [`check_conservation`]: MetricsSnapshot::check_conservation

pub mod artifact;
pub mod checkpoint;
pub mod json;
mod perfetto;
mod snapshot;

pub use artifact::{append_line_atomic, write_atomic};
pub use checkpoint::{checkpoint_from_json, checkpoint_to_json, load_checkpoint, save_checkpoint};
pub use json::Json;
pub use perfetto::{env_trace_path, PerfettoTrace, DEFAULT_CAPACITY};
pub use snapshot::{
    BusCounts, CacheCounts, FaultCounts, HistogramSet, HistogramSnapshot, MachineCounts,
    MetricsSnapshot, SCHEMA_VERSION,
};

// The histograms themselves live in `decache-machine` (the machine
// records into them); re-export so telemetry users need one import.
pub use decache_machine::{CycleHistograms, Histogram};
