//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline with no external dependencies, so the
//! telemetry layer carries its own JSON support. The writer emits a
//! canonical compact form — objects keep insertion order, floats use
//! Rust's shortest round-trip formatting — so serializing a parsed
//! document reproduces it byte for byte. That property is what lets the
//! golden Perfetto trace be diffed as a whole file.

use std::fmt;

/// A JSON value.
///
/// Numbers are split into [`Json::U64`] (no decimal point or exponent
/// in the source) and [`Json::F64`] (everything else): counters stay
/// exact at full 64-bit range, ratios keep their floating form.
///
/// # Examples
///
/// ```
/// use decache_telemetry::Json;
///
/// let doc = Json::parse(r#"{"cycles": 42, "util": 0.5}"#).unwrap();
/// assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some(42));
/// assert_eq!(doc.to_string(), r#"{"cycles":42,"util":0.5}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A fractional, exponent, or negative numeric literal.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved and significant for the
    /// canonical form.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The member `key` of an object, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a [`Json::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or of trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal (quotes and escapes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            // `{:?}` is Rust's shortest round-trip float form: "1.0"
            // stays distinguishable from the integer "1", and parsing
            // the output recovers the exact bits.
            Json::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v:?}")
                } else {
                    // JSON has no Infinity/NaN; null is the
                    // conventional degradation.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(key.len() + 2);
                    write_escaped(&mut buf, key);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates and other invalid points fall
                            // back to the replacement character; the
                            // writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = self.bytes[start] == b'-';
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if fractional {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for value in [0.5, 1.0, 97.25, 1e-9, 123456.789] {
            let text = Json::F64(value).to_string();
            match Json::parse(&text).unwrap() {
                Json::F64(back) => assert_eq!(back.to_bits(), value.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(Json::parse("-7").unwrap(), Json::F64(-7.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a \"quote\"\nand\ttab \\ slash";
        let text = Json::Str(original.to_owned()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(original));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn nested_structure_round_trips_canonically() {
        let doc = r#"{"name":"rb","rows":[{"n":2,"util":0.5},{"n":4,"util":0.75}],"ok":true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        assert_eq!(
            v.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn whitespace_is_insignificant() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":{}}"#);
    }

    #[test]
    fn errors_name_the_offset() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").unwrap_err().contains("trailing"));
        assert!(Json::parse("\"open").is_err());
    }
}
