//! Chrome-trace / Perfetto export of the machine's [`Observation`]
//! stream.
//!
//! A [`PerfettoTrace`] is an [`Observer`] factory around a bounded ring
//! buffer: attach its observer to a [`MachineBuilder`], run, then
//! [`export`](PerfettoTrace::export) the captured events as Trace Event
//! Format JSON (`{"traceEvents":[...]}`) that `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly.
//!
//! Track layout: one process (`decache`), with thread 0 for
//! machine-wide events (fault injection, memory repair), one thread per
//! PE (`P0`, `P1`, …) carrying instant events for CPU decisions and
//! completions, and one thread per bus (`bus0`, …) carrying 1-cycle
//! complete events for bus transactions. Timestamps are bus cycles, so
//! a trace is exactly reproducible run-to-run.
//!
//! Capture never perturbs the simulation (observers are pure), and the
//! ring bound keeps memory flat on long runs: once full, the oldest
//! events fall off and [`dropped`](PerfettoTrace::dropped) counts them.

use crate::json::Json;
use decache_machine::{CpuDecision, FaultKind, Machine, Observation, Observer, RecoverySource};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough for every event of the bundled
/// experiment scenarios while bounding a pathological run to a few
/// megabytes.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct Ring {
    events: std::collections::VecDeque<(u64, Observation)>,
    capacity: usize,
    dropped: u64,
}

/// A bounded recorder for the machine's observation stream with a
/// Trace Event Format exporter.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::{MachineBuilder, Script};
/// use decache_mem::{Addr, Word};
/// use decache_telemetry::PerfettoTrace;
///
/// let trace = PerfettoTrace::new(1024);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .observer(trace.observer())
///     .processor(Script::new().write(Addr::new(0), Word::ONE).build())
///     .processor(Script::new().read(Addr::new(0)).build())
///     .build();
/// machine.run_to_completion(1_000);
///
/// let json = trace.export_string(&machine);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert_eq!(trace.dropped(), 0);
/// ```
pub struct PerfettoTrace {
    inner: Arc<Mutex<Ring>>,
}

struct RingObserver {
    inner: Arc<Mutex<Ring>>,
}

impl Observer for RingObserver {
    fn observe(&mut self, cycle: u64, observation: &Observation) {
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back((cycle, *observation));
    }
}

impl PerfettoTrace {
    /// A recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        PerfettoTrace {
            inner: Arc::new(Mutex::new(Ring {
                events: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// A recorder with [`DEFAULT_CAPACITY`].
    #[allow(clippy::new_without_default)]
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }

    /// A boxed observer feeding this recorder, for
    /// [`MachineBuilder::observer`](decache_machine::MachineBuilder::observer)
    /// or [`Machine::attach_observer`](decache_machine::Machine::attach_observer).
    /// Multiple observers from one recorder share the ring.
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(RingObserver {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").events.len()
    }

    /// `true` iff nothing has been captured (or everything fell off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Renders the captured events as a Trace Event Format document.
    ///
    /// The machine supplies the topology (PE/bus counts, protocol name,
    /// address-to-bus routing) used to lay out tracks; pass the machine
    /// the observer was attached to.
    pub fn export(&self, machine: &Machine) -> Json {
        let pes = machine.pe_count();
        let buses = machine.bus_count();
        let routing = machine.routing();
        let pe_tid = |pe: usize| pe as u64 + 1;
        let bus_tid = |bus: usize| (pes + bus) as u64 + 1;

        let mut events = Vec::new();
        let meta = |name: &str, tid: u64, value: String| {
            Json::object(vec![
                ("name", Json::Str(name.to_owned())),
                ("ph", Json::Str("M".to_owned())),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(tid)),
                ("args", Json::object(vec![("name", Json::Str(value))])),
            ])
        };
        events.push(meta(
            "process_name",
            0,
            format!("decache {}", machine.protocol().name()),
        ));
        events.push(meta("thread_name", 0, "machine".to_owned()));
        for pe in 0..pes {
            events.push(meta("thread_name", pe_tid(pe), format!("P{pe}")));
        }
        for bus in 0..buses {
            events.push(meta("thread_name", bus_tid(bus), format!("bus{bus}")));
        }

        let instant = |cycle: u64, tid: u64, name: String, args: Vec<(&str, Json)>| {
            Json::object(vec![
                ("name", Json::Str(name)),
                ("ph", Json::Str("i".to_owned())),
                ("s", Json::Str("t".to_owned())),
                ("ts", Json::U64(cycle)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(tid)),
                ("args", Json::object(args)),
            ])
        };
        let slice = |cycle: u64, tid: u64, name: String, args: Vec<(&str, Json)>| {
            Json::object(vec![
                ("name", Json::Str(name)),
                ("ph", Json::Str("X".to_owned())),
                ("ts", Json::U64(cycle)),
                ("dur", Json::U64(1)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(tid)),
                ("args", Json::object(args)),
            ])
        };
        let addr_arg = |addr: decache_mem::Addr| ("addr", Json::U64(addr.index()));

        let ring = self.inner.lock().expect("trace ring poisoned");
        for &(cycle, ref obs) in &ring.events {
            let event = match *obs {
                Observation::CpuAccess {
                    pe,
                    addr,
                    write,
                    decision,
                } => {
                    let kind = if write { "write" } else { "read" };
                    match decision {
                        CpuDecision::Hit => instant(
                            cycle,
                            pe_tid(pe),
                            format!("{kind} hit"),
                            vec![addr_arg(addr)],
                        ),
                        CpuDecision::Miss(intent) => instant(
                            cycle,
                            pe_tid(pe),
                            format!("{kind} miss"),
                            vec![addr_arg(addr), ("intent", Json::Str(format!("{intent:?}")))],
                        ),
                    }
                }
                Observation::LockedReadIssued { pe, addr } => instant(
                    cycle,
                    pe_tid(pe),
                    "TS issue".to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::Supplied {
                    supplier,
                    initiator,
                    addr,
                } => slice(
                    cycle,
                    bus_tid(routing.bus_of(addr)),
                    "supply".to_owned(),
                    vec![
                        addr_arg(addr),
                        ("supplier", Json::U64(supplier as u64)),
                        ("initiator", Json::U64(initiator as u64)),
                    ],
                ),
                Observation::ReadCompleted { pe, addr, locked } => slice(
                    cycle,
                    bus_tid(routing.bus_of(addr)),
                    if locked { "BRL" } else { "BR" }.to_owned(),
                    vec![addr_arg(addr), ("pe", Json::U64(pe as u64))],
                ),
                Observation::WriteCompleted { pe, addr, unlock } => slice(
                    cycle,
                    bus_tid(routing.bus_of(addr)),
                    if unlock { "BWU" } else { "BW" }.to_owned(),
                    vec![addr_arg(addr), ("pe", Json::U64(pe as u64))],
                ),
                Observation::InvalidateCompleted { pe, addr } => slice(
                    cycle,
                    bus_tid(routing.bus_of(addr)),
                    "BI".to_owned(),
                    vec![addr_arg(addr), ("pe", Json::U64(pe as u64))],
                ),
                Observation::BroadcastSatisfied { pe, addr } => instant(
                    cycle,
                    pe_tid(pe),
                    "broadcast fill".to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::Evicted {
                    pe,
                    addr,
                    writeback,
                } => instant(
                    cycle,
                    pe_tid(pe),
                    if writeback { "evict+wb" } else { "evict" }.to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::FaultInjected { fault } => {
                    let (tid, args) = match fault {
                        FaultKind::MemoryFlip { addr } => (0, vec![addr_arg(addr)]),
                        FaultKind::CacheFlip { pe, addr } => (pe_tid(pe), vec![addr_arg(addr)]),
                        FaultKind::BusLoss { bus } => (bus_tid(bus), vec![]),
                        FaultKind::FailStop { pe } => (pe_tid(pe), vec![]),
                    };
                    instant(cycle, tid, format!("inject: {fault}"), args)
                }
                Observation::FaultDetected { pe, addr } => instant(
                    cycle,
                    pe.map_or(0, pe_tid),
                    if pe.is_some() {
                        "cache parity fail"
                    } else {
                        "memory parity fail"
                    }
                    .to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::LineScrubbed {
                    pe,
                    addr,
                    lost_write,
                } => instant(
                    cycle,
                    pe_tid(pe),
                    if lost_write {
                        "scrub (write lost)"
                    } else {
                        "scrub"
                    }
                    .to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::MemoryRepaired { addr, source } => instant(
                    cycle,
                    0,
                    match source {
                        RecoverySource::Owner { .. } => "repair from owner",
                        RecoverySource::Majority { .. } => "repair by majority",
                    }
                    .to_owned(),
                    vec![addr_arg(addr), ("source", Json::Str(format!("{source:?}")))],
                ),
                Observation::BroadcastHealed { pe, addr } => instant(
                    cycle,
                    pe_tid(pe),
                    "broadcast heal".to_owned(),
                    vec![addr_arg(addr)],
                ),
                Observation::PeFailStopped {
                    pe,
                    drained,
                    lost_writes,
                } => instant(
                    cycle,
                    pe_tid(pe),
                    "fail-stop".to_owned(),
                    vec![
                        ("drained", Json::U64(drained as u64)),
                        ("lost_writes", Json::U64(lost_writes as u64)),
                    ],
                ),
            };
            events.push(event);
        }

        Json::object(vec![
            ("traceEvents", Json::Array(events)),
            (
                "otherData",
                Json::object(vec![
                    ("protocol", Json::Str(machine.protocol().name().to_owned())),
                    ("pes", Json::U64(pes as u64)),
                    ("buses", Json::U64(buses as u64)),
                    ("cycles", Json::U64(machine.cycles())),
                    ("dropped_events", Json::U64(ring.dropped)),
                ]),
            ),
        ])
    }

    /// The exported document as canonical compact JSON text.
    pub fn export_string(&self, machine: &Machine) -> String {
        self.export(machine).to_string()
    }

    /// Writes the exported document to `path` crash-safely
    /// (tmp + rename via [`crate::artifact::write_atomic`]); an
    /// interrupted save never leaves a truncated trace.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn save(&self, machine: &Machine, path: &Path) -> std::io::Result<()> {
        crate::artifact::write_atomic(path, self.export_string(machine).as_bytes())
    }
}

/// The trace destination requested via the `DECACHE_TRACE` environment
/// variable, if any. Bench bins call this to decide whether to attach a
/// [`PerfettoTrace`] and where to save it.
pub fn env_trace_path() -> Option<PathBuf> {
    match std::env::var("DECACHE_TRACE") {
        Ok(path) if !path.is_empty() => Some(PathBuf::from(path)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::{MachineBuilder, Script};
    use decache_mem::{Addr, Word};

    fn traced_run(capacity: usize) -> (PerfettoTrace, Machine) {
        let trace = PerfettoTrace::new(capacity);
        let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
            .observer(trace.observer())
            .processor(
                Script::new()
                    .write(Addr::new(0), Word::new(7))
                    .test_and_set(Addr::new(1), Word::ONE)
                    .build(),
            )
            .processor(Script::new().read(Addr::new(0)).build())
            .build();
        machine.run_to_completion(1_000);
        (trace, machine)
    }

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let (trace, machine) = traced_run(1024);
        assert!(!trace.is_empty());
        assert_eq!(trace.dropped(), 0);

        let doc = Json::parse(&trace.export_string(&machine)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata: process name + machine/P0/P1/bus0 thread names.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 5);
        // Every non-metadata event has a cycle timestamp and a track.
        for event in events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        {
            assert!(event.get("ts").and_then(Json::as_u64).is_some());
            assert!(event.get("tid").and_then(Json::as_u64).unwrap() <= 3);
        }
        // The run produced at least one bus write slice.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("BW")
        }));
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let (trace, _machine) = traced_run(4);
        assert_eq!(trace.len(), 4);
        assert!(trace.dropped() > 0);
    }

    #[test]
    fn env_gate_reads_decache_trace() {
        // Can't mutate the environment safely under the threaded test
        // harness; just exercise the unset/empty path.
        if std::env::var_os("DECACHE_TRACE").is_none() {
            assert_eq!(env_trace_path(), None);
        }
    }
}
