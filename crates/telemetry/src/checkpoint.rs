//! JSON serialization for [`MachineCheckpoint`]: the persistence half
//! of the deterministic checkpoint/resume story.
//!
//! The machine crate exports its complete run state as plain public
//! data; this module encodes it through the workspace's canonical
//! [`Json`] codec (the same one the metrics snapshots use) and lands
//! files via the crash-safe [`artifact`](crate::artifact) writer. Every
//! scalar is a raw integer or a short tag string, so a checkpoint
//! round-trips exactly: `decode(encode(ck)) == ck`, bit for bit.
//!
//! Enums are encoded as kind-tagged objects (`{"kind": "read", ...}`),
//! line states as their display letters (`"L"`, `"F1"`), and the
//! fault counters as an object keyed by
//! [`decache_machine::FAULT_STAT_FIELDS`] so the file stays
//! self-describing.

use crate::json::Json;
use decache_bus::{ArbiterCheckpoint, BusOp, BusTransaction};
use decache_cache::{LineCheckpoint, RefClass, TagStoreCheckpoint};
use decache_core::LineState;
use decache_machine::{
    CacheStatsCheckpoint, FaultClockEntry, FaultEngineCheckpoint, HistogramCheckpoint,
    MachineCheckpoint, MachineStats, MemoryCheckpoint, OpResult, PendingCheckpoint,
    ProcessorCheckpoint, QueueCheckpoint, StatusCheckpoint, TelemetryCheckpoint, TrafficCheckpoint,
    FAULT_STAT_FIELDS,
};
use decache_mem::{Addr, MemoryStats, PeId, Word};
use std::path::Path;

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn uint(value: &Json, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an integer"))
}

fn string<'a>(value: &'a Json, key: &str) -> Result<&'a str, String> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn boolean(value: &Json, key: &str) -> Result<bool, String> {
    match field(value, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("field '{key}' is not a boolean")),
    }
}

fn array<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| format!("field '{key}' is not an array"))
}

fn uints_to_json(values: impl IntoIterator<Item = u64>) -> Json {
    Json::Array(values.into_iter().map(Json::U64).collect())
}

fn uints(value: &Json, key: &str) -> Result<Vec<u64>, String> {
    array(value, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("field '{key}' holds a non-integer element"))
        })
        .collect()
}

fn rng4(value: &Json, key: &str) -> Result<[u64; 4], String> {
    let words = uints(value, key)?;
    <[u64; 4]>::try_from(words)
        .map_err(|w| format!("field '{key}' has {} words, expected 4", w.len()))
}

fn items<T>(
    value: &Json,
    key: &str,
    decode: impl Fn(&Json) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    array(value, key)?
        .iter()
        .enumerate()
        .map(|(i, v)| decode(v).map_err(|e| format!("{key}[{i}]: {e}")))
        .collect()
}

fn addr(value: &Json, key: &str) -> Result<Addr, String> {
    Ok(Addr::new(uint(value, key)?))
}

fn word(value: &Json, key: &str) -> Result<Word, String> {
    Ok(Word::new(uint(value, key)?))
}

fn pe_id(value: &Json, key: &str) -> Result<PeId, String> {
    let raw = uint(value, key)?;
    let idx = u16::try_from(raw).map_err(|_| format!("field '{key}' = {raw} overflows a PE id"))?;
    Ok(PeId::new(idx))
}

fn class_to_json(class: RefClass) -> Json {
    Json::Str(class.to_string())
}

fn class_from_json(value: &Json, key: &str) -> Result<RefClass, String> {
    match string(value, key)? {
        "code" => Ok(RefClass::Code),
        "local" => Ok(RefClass::Local),
        "shared" => Ok(RefClass::Shared),
        other => Err(format!("unknown reference class '{other}'")),
    }
}

fn line_state_to_json(state: LineState) -> Json {
    Json::Str(match state {
        LineState::FirstWrite(c) => format!("F{c}"),
        other => other.letter().to_string(),
    })
}

fn line_state_from_str(text: &str) -> Result<LineState, String> {
    match text {
        "I" => Ok(LineState::Invalid),
        "R" => Ok(LineState::Readable),
        "L" => Ok(LineState::Local),
        "V" => Ok(LineState::Valid),
        "S" => Ok(LineState::Reserved),
        "D" => Ok(LineState::Dirty),
        _ => {
            let count = text
                .strip_prefix('F')
                .and_then(|c| c.parse::<u8>().ok())
                .ok_or_else(|| format!("unknown line state '{text}'"))?;
            Ok(LineState::FirstWrite(count))
        }
    }
}

fn memory_stats_to_json(s: MemoryStats) -> Json {
    Json::object(vec![
        ("reads", Json::U64(s.reads)),
        ("writes", Json::U64(s.writes)),
        ("locked_reads", Json::U64(s.locked_reads)),
        ("rejected_writes", Json::U64(s.rejected_writes)),
    ])
}

fn memory_stats_from_json(value: &Json) -> Result<MemoryStats, String> {
    Ok(MemoryStats {
        reads: uint(value, "reads")?,
        writes: uint(value, "writes")?,
        locked_reads: uint(value, "locked_reads")?,
        rejected_writes: uint(value, "rejected_writes")?,
    })
}

fn memory_to_json(m: &MemoryCheckpoint) -> Json {
    Json::object(vec![
        ("words", uints_to_json(m.words.iter().map(|w| w.value()))),
        (
            "locks",
            Json::Array(
                m.locks
                    .iter()
                    .map(|&(addr, holder)| {
                        Json::object(vec![
                            ("addr", Json::U64(addr)),
                            ("holder", Json::U64(holder.index() as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("bad_parity", uints_to_json(m.bad_parity.iter().copied())),
        ("stats", memory_stats_to_json(m.stats)),
    ])
}

fn memory_from_json(value: &Json) -> Result<MemoryCheckpoint, String> {
    Ok(MemoryCheckpoint {
        words: uints(value, "words")?.into_iter().map(Word::new).collect(),
        locks: items(value, "locks", |v| {
            Ok((uint(v, "addr")?, pe_id(v, "holder")?))
        })?,
        bad_parity: uints(value, "bad_parity")?,
        stats: memory_stats_from_json(field(value, "stats")?)?,
    })
}

fn tag_store_to_json(ts: &TagStoreCheckpoint<LineState>) -> Json {
    Json::object(vec![
        (
            "lines",
            Json::Array(
                ts.lines
                    .iter()
                    .map(|line| {
                        Json::object(vec![
                            ("addr", Json::U64(line.addr.index())),
                            ("data", Json::U64(line.data.value())),
                            ("state", line.state.map_or(Json::Null, line_state_to_json)),
                            ("parity_ok", Json::Bool(line.parity_ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("lru_stamps", uints_to_json(ts.lru_stamps.iter().copied())),
        (
            "insert_stamps",
            uints_to_json(ts.insert_stamps.iter().copied()),
        ),
        ("clock", Json::U64(ts.clock)),
        ("rng_state", uints_to_json(ts.rng_state)),
    ])
}

fn tag_store_from_json(value: &Json) -> Result<TagStoreCheckpoint<LineState>, String> {
    Ok(TagStoreCheckpoint {
        lines: items(value, "lines", |v| {
            Ok(LineCheckpoint {
                addr: addr(v, "addr")?,
                data: word(v, "data")?,
                state: match field(v, "state")? {
                    Json::Null => None,
                    Json::Str(s) => Some(line_state_from_str(s)?),
                    _ => return Err("field 'state' is not a string or null".to_string()),
                },
                parity_ok: boolean(v, "parity_ok")?,
            })
        })?,
        lru_stamps: uints(value, "lru_stamps")?,
        insert_stamps: uints(value, "insert_stamps")?,
        clock: uint(value, "clock")?,
        rng_state: rng4(value, "rng_state")?,
    })
}

fn cache_stats_to_json(s: &CacheStatsCheckpoint) -> Json {
    let table = |t: &[[u64; 3]; 2]| Json::Array(t.iter().map(|row| uints_to_json(*row)).collect());
    Json::object(vec![("hits", table(&s.hits)), ("misses", table(&s.misses))])
}

fn cache_stats_from_json(value: &Json) -> Result<CacheStatsCheckpoint, String> {
    let table = |key: &str| -> Result<[[u64; 3]; 2], String> {
        let rows = array(value, key)?;
        if rows.len() != 2 {
            return Err(format!("field '{key}' has {} rows, expected 2", rows.len()));
        }
        let mut out = [[0u64; 3]; 2];
        for (k, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("field '{key}' row is not an array"))?;
            if cells.len() != 3 {
                return Err(format!(
                    "field '{key}' row has {} cells, expected 3",
                    cells.len()
                ));
            }
            for (c, cell) in cells.iter().enumerate() {
                out[k][c] = cell
                    .as_u64()
                    .ok_or_else(|| format!("field '{key}' holds a non-integer cell"))?;
            }
        }
        Ok(out)
    };
    Ok(CacheStatsCheckpoint {
        hits: table("hits")?,
        misses: table("misses")?,
    })
}

fn pending_to_json(p: PendingCheckpoint) -> Json {
    match p {
        PendingCheckpoint::Read { addr, class } => Json::object(vec![
            ("kind", Json::Str("read".to_string())),
            ("addr", Json::U64(addr.index())),
            ("class", class_to_json(class)),
        ]),
        PendingCheckpoint::Write { addr, value, class } => Json::object(vec![
            ("kind", Json::Str("write".to_string())),
            ("addr", Json::U64(addr.index())),
            ("value", Json::U64(value.value())),
            ("class", class_to_json(class)),
        ]),
        PendingCheckpoint::LockedRead {
            addr,
            set_to,
            class,
        } => Json::object(vec![
            ("kind", Json::Str("locked-read".to_string())),
            ("addr", Json::U64(addr.index())),
            ("set_to", Json::U64(set_to.value())),
            ("class", class_to_json(class)),
        ]),
        PendingCheckpoint::UnlockWrite { addr, old, class } => Json::object(vec![
            ("kind", Json::Str("unlock-write".to_string())),
            ("addr", Json::U64(addr.index())),
            ("old", Json::U64(old.value())),
            ("class", class_to_json(class)),
        ]),
    }
}

fn pending_from_json(value: &Json) -> Result<PendingCheckpoint, String> {
    match string(value, "kind")? {
        "read" => Ok(PendingCheckpoint::Read {
            addr: addr(value, "addr")?,
            class: class_from_json(value, "class")?,
        }),
        "write" => Ok(PendingCheckpoint::Write {
            addr: addr(value, "addr")?,
            value: word(value, "value")?,
            class: class_from_json(value, "class")?,
        }),
        "locked-read" => Ok(PendingCheckpoint::LockedRead {
            addr: addr(value, "addr")?,
            set_to: word(value, "set_to")?,
            class: class_from_json(value, "class")?,
        }),
        "unlock-write" => Ok(PendingCheckpoint::UnlockWrite {
            addr: addr(value, "addr")?,
            old: word(value, "old")?,
            class: class_from_json(value, "class")?,
        }),
        other => Err(format!("unknown pending kind '{other}'")),
    }
}

fn status_to_json(s: StatusCheckpoint) -> Json {
    match s {
        StatusCheckpoint::Idle => Json::object(vec![("kind", Json::Str("idle".to_string()))]),
        StatusCheckpoint::WaitBus(p) => Json::object(vec![
            ("kind", Json::Str("wait-bus".to_string())),
            ("pending", pending_to_json(p)),
        ]),
        StatusCheckpoint::Done => Json::object(vec![("kind", Json::Str("done".to_string()))]),
        StatusCheckpoint::Failed => Json::object(vec![("kind", Json::Str("failed".to_string()))]),
    }
}

fn status_from_json(value: &Json) -> Result<StatusCheckpoint, String> {
    match string(value, "kind")? {
        "idle" => Ok(StatusCheckpoint::Idle),
        "wait-bus" => Ok(StatusCheckpoint::WaitBus(pending_from_json(field(
            value, "pending",
        )?)?)),
        "done" => Ok(StatusCheckpoint::Done),
        "failed" => Ok(StatusCheckpoint::Failed),
        other => Err(format!("unknown status kind '{other}'")),
    }
}

fn op_result_to_json(r: Option<OpResult>) -> Json {
    match r {
        None => Json::Null,
        Some(OpResult::Read(w)) => Json::object(vec![
            ("kind", Json::Str("read".to_string())),
            ("word", Json::U64(w.value())),
        ]),
        Some(OpResult::Write) => Json::object(vec![("kind", Json::Str("write".to_string()))]),
        Some(OpResult::TestAndSet { old, acquired }) => Json::object(vec![
            ("kind", Json::Str("ts".to_string())),
            ("old", Json::U64(old.value())),
            ("acquired", Json::Bool(acquired)),
        ]),
    }
}

fn op_result_from_json(value: &Json) -> Result<Option<OpResult>, String> {
    if matches!(value, Json::Null) {
        return Ok(None);
    }
    match string(value, "kind")? {
        "read" => Ok(Some(OpResult::Read(word(value, "word")?))),
        "write" => Ok(Some(OpResult::Write)),
        "ts" => Ok(Some(OpResult::TestAndSet {
            old: word(value, "old")?,
            acquired: boolean(value, "acquired")?,
        })),
        other => Err(format!("unknown result kind '{other}'")),
    }
}

fn processor_to_json(p: &ProcessorCheckpoint) -> Json {
    match p {
        ProcessorCheckpoint::Stateless => {
            Json::object(vec![("kind", Json::Str("stateless".to_string()))])
        }
        ProcessorCheckpoint::Script { ops_left } => Json::object(vec![
            ("kind", Json::Str("script".to_string())),
            ("ops_left", Json::U64(*ops_left)),
        ]),
        ProcessorCheckpoint::Loop {
            rounds_left,
            position,
        } => Json::object(vec![
            ("kind", Json::Str("loop".to_string())),
            ("rounds_left", Json::U64(*rounds_left)),
            ("position", Json::U64(*position)),
        ]),
        ProcessorCheckpoint::Spin { satisfied } => Json::object(vec![
            ("kind", Json::Str("spin".to_string())),
            ("satisfied", Json::Bool(*satisfied)),
        ]),
        ProcessorCheckpoint::Custom { kind, words } => Json::object(vec![
            ("kind", Json::Str("custom".to_string())),
            ("custom_kind", Json::Str(kind.clone())),
            ("words", uints_to_json(words.iter().copied())),
        ]),
    }
}

fn processor_from_json(value: &Json) -> Result<ProcessorCheckpoint, String> {
    match string(value, "kind")? {
        "stateless" => Ok(ProcessorCheckpoint::Stateless),
        "script" => Ok(ProcessorCheckpoint::Script {
            ops_left: uint(value, "ops_left")?,
        }),
        "loop" => Ok(ProcessorCheckpoint::Loop {
            rounds_left: uint(value, "rounds_left")?,
            position: uint(value, "position")?,
        }),
        "spin" => Ok(ProcessorCheckpoint::Spin {
            satisfied: boolean(value, "satisfied")?,
        }),
        "custom" => Ok(ProcessorCheckpoint::Custom {
            kind: string(value, "custom_kind")?.to_string(),
            words: uints(value, "words")?,
        }),
        other => Err(format!("unknown processor kind '{other}'")),
    }
}

fn bus_op_to_json(op: BusOp) -> Json {
    match op {
        BusOp::Read => Json::object(vec![("kind", Json::Str("read".to_string()))]),
        BusOp::Write(w) => Json::object(vec![
            ("kind", Json::Str("write".to_string())),
            ("value", Json::U64(w.value())),
        ]),
        BusOp::Invalidate => Json::object(vec![("kind", Json::Str("invalidate".to_string()))]),
        BusOp::ReadWithLock => {
            Json::object(vec![("kind", Json::Str("read-with-lock".to_string()))])
        }
        BusOp::WriteWithUnlock(w) => Json::object(vec![
            ("kind", Json::Str("write-with-unlock".to_string())),
            ("value", Json::U64(w.value())),
        ]),
    }
}

fn bus_op_from_json(value: &Json) -> Result<BusOp, String> {
    match string(value, "kind")? {
        "read" => Ok(BusOp::Read),
        "write" => Ok(BusOp::Write(word(value, "value")?)),
        "invalidate" => Ok(BusOp::Invalidate),
        "read-with-lock" => Ok(BusOp::ReadWithLock),
        "write-with-unlock" => Ok(BusOp::WriteWithUnlock(word(value, "value")?)),
        other => Err(format!("unknown bus op kind '{other}'")),
    }
}

fn transaction_to_json(t: &BusTransaction) -> Json {
    Json::object(vec![
        ("pe", Json::U64(t.initiator.index() as u64)),
        ("addr", Json::U64(t.addr.index())),
        ("op", bus_op_to_json(t.op)),
    ])
}

fn transaction_from_json(value: &Json) -> Result<BusTransaction, String> {
    Ok(BusTransaction {
        initiator: pe_id(value, "pe")?,
        addr: addr(value, "addr")?,
        op: bus_op_from_json(field(value, "op")?)?,
    })
}

fn queue_to_json(q: &QueueCheckpoint) -> Json {
    Json::object(vec![
        (
            "retry",
            Json::Array(q.retry.iter().map(transaction_to_json).collect()),
        ),
        (
            "pending",
            Json::Array(q.pending.iter().map(transaction_to_json).collect()),
        ),
        (
            "arrival",
            uints_to_json(q.arrival.iter().map(|pe| pe.index() as u64)),
        ),
        (
            "batch",
            uints_to_json(q.batch.iter().map(|pe| pe.index() as u64)),
        ),
        (
            "in_flight",
            Json::Array(
                q.in_flight
                    .iter()
                    .map(|(tx, ready)| {
                        Json::object(vec![
                            ("tx", transaction_to_json(tx)),
                            ("ready", Json::U64(*ready)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn pes_from_json(value: &Json, name: &'static str) -> Result<Vec<PeId>, String> {
    uints(value, name)?
        .into_iter()
        .map(|raw| {
            u16::try_from(raw)
                .map(PeId::new)
                .map_err(|_| format!("field '{name}' holds PE id {raw} out of range"))
        })
        .collect()
}

fn queue_from_json(value: &Json) -> Result<QueueCheckpoint, String> {
    Ok(QueueCheckpoint {
        retry: items(value, "retry", transaction_from_json)?,
        pending: items(value, "pending", transaction_from_json)?,
        arrival: pes_from_json(value, "arrival")?,
        batch: pes_from_json(value, "batch")?,
        in_flight: items(value, "in_flight", |v| {
            Ok((transaction_from_json(field(v, "tx")?)?, uint(v, "ready")?))
        })?,
    })
}

fn arbiter_to_json(a: &ArbiterCheckpoint) -> Json {
    match a {
        ArbiterCheckpoint::Stateless => {
            Json::object(vec![("kind", Json::Str("stateless".to_string()))])
        }
        ArbiterCheckpoint::RoundRobin { last } => Json::object(vec![
            ("kind", Json::Str("round-robin".to_string())),
            (
                "last",
                last.map_or(Json::Null, |pe| Json::U64(pe.index() as u64)),
            ),
        ]),
        ArbiterCheckpoint::Random { rng_state } => Json::object(vec![
            ("kind", Json::Str("random".to_string())),
            ("rng_state", uints_to_json(*rng_state)),
        ]),
    }
}

fn arbiter_from_json(value: &Json) -> Result<ArbiterCheckpoint, String> {
    match string(value, "kind")? {
        "stateless" => Ok(ArbiterCheckpoint::Stateless),
        "round-robin" => Ok(ArbiterCheckpoint::RoundRobin {
            last: match field(value, "last")? {
                Json::Null => None,
                _ => Some(pe_id(value, "last")?),
            },
        }),
        "random" => Ok(ArbiterCheckpoint::Random {
            rng_state: rng4(value, "rng_state")?,
        }),
        other => Err(format!("unknown arbiter kind '{other}'")),
    }
}

fn traffic_to_json(t: &TrafficCheckpoint) -> Json {
    Json::object(vec![
        ("counts", uints_to_json(t.counts)),
        ("aborted_reads", Json::U64(t.aborted_reads)),
        ("retries", Json::U64(t.retries)),
        ("busy_cycles", Json::U64(t.busy_cycles)),
        ("idle_cycles", Json::U64(t.idle_cycles)),
        ("address_phases", Json::U64(t.address_phases)),
    ])
}

fn traffic_from_json(value: &Json) -> Result<TrafficCheckpoint, String> {
    let counts = uints(value, "counts")?;
    Ok(TrafficCheckpoint {
        counts: <[u64; 5]>::try_from(counts)
            .map_err(|c| format!("field 'counts' has {} kinds, expected 5", c.len()))?,
        aborted_reads: uint(value, "aborted_reads")?,
        retries: uint(value, "retries")?,
        busy_cycles: uint(value, "busy_cycles")?,
        idle_cycles: uint(value, "idle_cycles")?,
        address_phases: uint(value, "address_phases")?,
    })
}

fn machine_stats_to_json(s: MachineStats) -> Json {
    Json::object(vec![
        ("broadcast_satisfied", Json::U64(s.broadcast_satisfied)),
        ("writebacks", Json::U64(s.writebacks)),
        ("ts_failures", Json::U64(s.ts_failures)),
        ("ts_successes", Json::U64(s.ts_successes)),
        ("lock_rejections", Json::U64(s.lock_rejections)),
        ("lock_rejected_reads", Json::U64(s.lock_rejected_reads)),
        ("lock_rejected_writes", Json::U64(s.lock_rejected_writes)),
        ("tag_probes", Json::U64(s.tag_probes)),
        ("sharer_visits", Json::U64(s.sharer_visits)),
        ("queue_scans", Json::U64(s.queue_scans)),
        ("split_cancels", Json::U64(s.split_cancels)),
    ])
}

fn machine_stats_from_json(value: &Json) -> Result<MachineStats, String> {
    Ok(MachineStats {
        broadcast_satisfied: uint(value, "broadcast_satisfied")?,
        writebacks: uint(value, "writebacks")?,
        ts_failures: uint(value, "ts_failures")?,
        ts_successes: uint(value, "ts_successes")?,
        lock_rejections: uint(value, "lock_rejections")?,
        lock_rejected_reads: uint(value, "lock_rejected_reads")?,
        lock_rejected_writes: uint(value, "lock_rejected_writes")?,
        tag_probes: uint(value, "tag_probes")?,
        sharer_visits: uint(value, "sharer_visits")?,
        queue_scans: uint(value, "queue_scans")?,
        split_cancels: uint(value, "split_cancels")?,
    })
}

fn histogram_to_json(h: &HistogramCheckpoint) -> Json {
    Json::object(vec![
        ("buckets", uints_to_json(h.buckets.iter().copied())),
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("max", Json::U64(h.max)),
    ])
}

fn histogram_from_json(value: &Json) -> Result<HistogramCheckpoint, String> {
    Ok(HistogramCheckpoint {
        buckets: uints(value, "buckets")?,
        count: uint(value, "count")?,
        sum: uint(value, "sum")?,
        max: uint(value, "max")?,
    })
}

fn telemetry_to_json(t: &TelemetryCheckpoint) -> Json {
    Json::object(vec![
        ("bus_acquire_wait", histogram_to_json(&t.bus_acquire_wait)),
        ("memory_service", histogram_to_json(&t.memory_service)),
        ("read_fill", histogram_to_json(&t.read_fill)),
        ("ts_spin", histogram_to_json(&t.ts_spin)),
        ("enqueued_at", uints_to_json(t.enqueued_at.iter().copied())),
        ("read_since", uints_to_json(t.read_since.iter().copied())),
        ("ts_since", uints_to_json(t.ts_since.iter().copied())),
    ])
}

fn telemetry_from_json(value: &Json) -> Result<TelemetryCheckpoint, String> {
    Ok(TelemetryCheckpoint {
        bus_acquire_wait: histogram_from_json(field(value, "bus_acquire_wait")?)?,
        memory_service: histogram_from_json(field(value, "memory_service")?)?,
        read_fill: histogram_from_json(field(value, "read_fill")?)?,
        ts_spin: histogram_from_json(field(value, "ts_spin")?)?,
        enqueued_at: uints(value, "enqueued_at")?,
        read_since: uints(value, "read_since")?,
        ts_since: uints(value, "ts_since")?,
    })
}

fn fault_to_json(f: &FaultEngineCheckpoint) -> Json {
    Json::object(vec![
        ("rng_state", uints_to_json(f.rng_state)),
        ("cursor", Json::U64(f.cursor)),
        (
            "lose_grant",
            Json::Array(f.lose_grant.iter().map(|&b| Json::Bool(b)).collect()),
        ),
    ])
}

fn fault_from_json(value: &Json) -> Result<FaultEngineCheckpoint, String> {
    Ok(FaultEngineCheckpoint {
        rng_state: rng4(value, "rng_state")?,
        cursor: uint(value, "cursor")?,
        lose_grant: array(value, "lose_grant")?
            .iter()
            .map(|v| match v {
                Json::Bool(b) => Ok(*b),
                _ => Err("field 'lose_grant' holds a non-boolean element".to_string()),
            })
            .collect::<Result<_, String>>()?,
    })
}

fn fault_clock_to_json(entries: &[FaultClockEntry]) -> Json {
    Json::Array(
        entries
            .iter()
            .map(|e| {
                Json::object(vec![
                    ("pe", e.pe.map_or(Json::Null, Json::U64)),
                    ("addr", Json::U64(e.addr)),
                    ("injected_at", Json::U64(e.injected_at)),
                ])
            })
            .collect(),
    )
}

fn fault_stats_to_json(stats: &[u64; 17]) -> Json {
    Json::Object(
        FAULT_STAT_FIELDS
            .iter()
            .zip(stats.iter())
            .map(|(name, &v)| ((*name).to_owned(), Json::U64(v)))
            .collect(),
    )
}

fn fault_stats_from_json(value: &Json) -> Result<[u64; 17], String> {
    let mut out = [0u64; 17];
    for (slot, name) in out.iter_mut().zip(FAULT_STAT_FIELDS.iter()) {
        *slot = uint(value, name)?;
    }
    Ok(out)
}

/// Encodes a [`MachineCheckpoint`] as the workspace's canonical JSON
/// value; its `Display` form is the stable on-disk format.
pub fn checkpoint_to_json(ck: &MachineCheckpoint) -> Json {
    Json::object(vec![
        ("version", Json::U64(u64::from(ck.version))),
        ("protocol", Json::Str(ck.protocol.clone())),
        ("pes", Json::U64(ck.pes)),
        ("bus_count", Json::U64(ck.bus_count)),
        ("memory_size", Json::U64(ck.memory_size)),
        ("sets", Json::U64(ck.sets)),
        ("ways", Json::U64(ck.ways)),
        ("block_words", Json::U64(ck.block_words)),
        ("transaction_cycles", Json::U64(ck.transaction_cycles)),
        ("discipline", Json::Str(ck.discipline.clone())),
        ("cycle", Json::U64(ck.cycle)),
        ("sharded_cycles", Json::U64(ck.sharded_cycles)),
        ("memory", memory_to_json(&ck.memory)),
        (
            "caches",
            Json::Array(ck.caches.iter().map(tag_store_to_json).collect()),
        ),
        (
            "cache_stats",
            Json::Array(ck.cache_stats.iter().map(cache_stats_to_json).collect()),
        ),
        (
            "statuses",
            Json::Array(ck.statuses.iter().map(|&s| status_to_json(s)).collect()),
        ),
        (
            "last_results",
            Json::Array(
                ck.last_results
                    .iter()
                    .map(|&r| op_result_to_json(r))
                    .collect(),
            ),
        ),
        (
            "processors",
            Json::Array(ck.processors.iter().map(processor_to_json).collect()),
        ),
        (
            "queues",
            Json::Array(ck.queues.iter().map(queue_to_json).collect()),
        ),
        (
            "arbiters",
            Json::Array(ck.arbiters.iter().map(arbiter_to_json).collect()),
        ),
        (
            "traffic",
            Json::Array(ck.traffic.iter().map(traffic_to_json).collect()),
        ),
        ("bus_free_at", uints_to_json(ck.bus_free_at.iter().copied())),
        ("stats", machine_stats_to_json(ck.stats)),
        ("fault", ck.fault.as_ref().map_or(Json::Null, fault_to_json)),
        ("fault_stats", fault_stats_to_json(&ck.fault_stats)),
        ("fault_clock", fault_clock_to_json(&ck.fault_clock)),
        (
            "last_progress",
            uints_to_json(ck.last_progress.iter().copied()),
        ),
        (
            "last_addr",
            Json::Array(
                ck.last_addr
                    .iter()
                    .map(|a| a.map_or(Json::Null, |a| Json::U64(a.index())))
                    .collect(),
            ),
        ),
        (
            "telemetry",
            ck.telemetry.as_ref().map_or(Json::Null, telemetry_to_json),
        ),
    ])
}

/// Decodes a [`MachineCheckpoint`] from its JSON form.
///
/// # Errors
///
/// Returns a description of the first missing, mistyped, or
/// out-of-range field. Semantic validation (shape against a concrete
/// machine, RNG-state sanity) is [`decache_machine::Machine::restore`]'s
/// job, not the codec's.
pub fn checkpoint_from_json(value: &Json) -> Result<MachineCheckpoint, String> {
    let raw_version = uint(value, "version")?;
    let version = u32::try_from(raw_version)
        .map_err(|_| format!("field 'version' = {raw_version} overflows u32"))?;
    Ok(MachineCheckpoint {
        version,
        protocol: string(value, "protocol")?.to_string(),
        pes: uint(value, "pes")?,
        bus_count: uint(value, "bus_count")?,
        memory_size: uint(value, "memory_size")?,
        sets: uint(value, "sets")?,
        ways: uint(value, "ways")?,
        block_words: uint(value, "block_words")?,
        transaction_cycles: uint(value, "transaction_cycles")?,
        discipline: string(value, "discipline")?.to_string(),
        cycle: uint(value, "cycle")?,
        sharded_cycles: uint(value, "sharded_cycles")?,
        memory: memory_from_json(field(value, "memory")?).map_err(|e| format!("memory: {e}"))?,
        caches: items(value, "caches", tag_store_from_json)?,
        cache_stats: items(value, "cache_stats", cache_stats_from_json)?,
        statuses: items(value, "statuses", status_from_json)?,
        last_results: items(value, "last_results", op_result_from_json)?,
        processors: items(value, "processors", processor_from_json)?,
        queues: items(value, "queues", queue_from_json)?,
        arbiters: items(value, "arbiters", arbiter_from_json)?,
        traffic: items(value, "traffic", traffic_from_json)?,
        bus_free_at: uints(value, "bus_free_at")?,
        stats: machine_stats_from_json(field(value, "stats")?)
            .map_err(|e| format!("stats: {e}"))?,
        fault: match field(value, "fault")? {
            Json::Null => None,
            f => Some(fault_from_json(f).map_err(|e| format!("fault: {e}"))?),
        },
        fault_stats: fault_stats_from_json(field(value, "fault_stats")?)
            .map_err(|e| format!("fault_stats: {e}"))?,
        fault_clock: items(value, "fault_clock", |v| {
            Ok(FaultClockEntry {
                pe: match field(v, "pe")? {
                    Json::Null => None,
                    _ => Some(uint(v, "pe")?),
                },
                addr: uint(v, "addr")?,
                injected_at: uint(v, "injected_at")?,
            })
        })?,
        last_progress: uints(value, "last_progress")?,
        last_addr: items(value, "last_addr", |v| match v {
            Json::Null => Ok(None),
            _ => Ok(Some(Addr::new(v.as_u64().ok_or_else(|| {
                "field 'last_addr' holds a non-integer element".to_string()
            })?))),
        })?,
        telemetry: match field(value, "telemetry")? {
            Json::Null => None,
            t => Some(telemetry_from_json(t).map_err(|e| format!("telemetry: {e}"))?),
        },
    })
}

/// Serializes a checkpoint and writes it to `path` crash-safely
/// (tmp + rename via [`crate::artifact::write_atomic`]), so an
/// interrupted save can never clobber a previous good checkpoint.
///
/// # Errors
///
/// Propagates any I/O error; on failure the previous file (if any) is
/// intact.
pub fn save_checkpoint(path: impl AsRef<Path>, ck: &MachineCheckpoint) -> std::io::Result<()> {
    let mut text = checkpoint_to_json(ck).to_string();
    text.push('\n');
    crate::artifact::write_atomic(path, text.as_bytes())
}

/// Reads and decodes a checkpoint file written by [`save_checkpoint`].
///
/// # Errors
///
/// Returns a description of the I/O, parse, or decode failure.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<MachineCheckpoint, String> {
    let path = path.as_ref();
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let value = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    checkpoint_from_json(&value).map_err(|e| format!("decoding {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;
    use decache_mem::AddrRange;
    use decache_workloads::{MixConfig, MixWorkload};

    fn running_machine() -> decache_machine::Machine {
        let shared = AddrRange::with_len(Addr::new(0), 32);
        let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
            .memory_words(4096)
            .processors(4, |pe| {
                Box::new(MixWorkload::new(MixConfig::default(), shared, pe as u64))
            })
            .build();
        for _ in 0..500 {
            machine.step();
        }
        machine
    }

    #[test]
    fn checkpoint_round_trips_through_json_exactly() {
        let machine = running_machine();
        let ck = machine.checkpoint().unwrap();
        let encoded = checkpoint_to_json(&ck).to_string();
        let decoded = checkpoint_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, ck);
        // The canonical rendering is stable: re-encoding is a fixpoint.
        assert_eq!(checkpoint_to_json(&decoded).to_string(), encoded);
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let machine = running_machine();
        let ck = machine.checkpoint().unwrap();
        let path =
            std::env::temp_dir().join(format!("decache-checkpoint-{}.json", std::process::id()));
        save_checkpoint(&path, &ck).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded, ck);
    }

    #[test]
    fn line_states_round_trip_including_write_counts() {
        for state in [
            LineState::Invalid,
            LineState::Readable,
            LineState::Local,
            LineState::FirstWrite(1),
            LineState::FirstWrite(3),
            LineState::Valid,
            LineState::Reserved,
            LineState::Dirty,
        ] {
            let encoded = line_state_to_json(state);
            let text = encoded.as_str().unwrap().to_string();
            assert_eq!(line_state_from_str(&text).unwrap(), state, "{text}");
        }
        assert!(line_state_from_str("Q").is_err());
        assert!(line_state_from_str("Fx").is_err());
    }

    #[test]
    fn decode_reports_missing_and_mistyped_fields() {
        let err = checkpoint_from_json(&Json::object(vec![])).unwrap_err();
        assert!(err.contains("version"), "{err}");
        let machine = running_machine();
        let ck = machine.checkpoint().unwrap();
        let mut bad = checkpoint_to_json(&ck);
        if let Json::Object(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "protocol" {
                    *v = Json::U64(7);
                }
            }
        }
        let err = checkpoint_from_json(&bad).unwrap_err();
        assert!(err.contains("protocol"), "{err}");
    }
}
