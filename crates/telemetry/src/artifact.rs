//! Crash-safe artifact writes: every file this workspace emits
//! (metrics JSONL, Perfetto traces, protocol baselines, checkpoint and
//! progress files) lands via tmp + rename, so a crash or `SIGKILL`
//! mid-write can never leave a truncated artifact. Readers observe
//! either the previous complete file or the new complete file — never
//! a partial state.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The temporary sibling a write lands in before the rename: same
/// directory as `path` (renames across filesystems are not atomic),
/// suffixed with the writer's process id so concurrent writers of the
/// same artifact cannot corrupt each other's staging file.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: the bytes are staged in a
/// temporary file in the same directory, flushed to disk, and renamed
/// over `path` in one step. Parent directories are created as needed.
///
/// # Errors
///
/// Propagates any I/O error; on failure the staging file is removed
/// and `path` is untouched.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_sibling(path);
    let staged = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        // The rename only makes durable bytes visible: flush file data
        // before the new name can be observed.
        file.sync_all()
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Appends one line to a JSONL artifact crash-safely: the existing
/// contents are read, the line (with a trailing newline) is appended,
/// and the whole file is rewritten through [`write_atomic`]. A missing
/// file starts empty. O(file size) per append — fine for bench-report
/// cadence, not for high-frequency logging.
///
/// # Errors
///
/// Propagates any I/O error; on failure the artifact keeps its
/// previous complete contents.
pub fn append_line_atomic(path: impl AsRef<Path>, line: &str) -> io::Result<()> {
    let path = path.as_ref();
    let mut contents = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    if !contents.is_empty() && !contents.ends_with(b"\n") {
        contents.push(b'\n');
    }
    contents.extend_from_slice(line.as_bytes());
    contents.push(b'\n');
    write_atomic(path, &contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("decache-artifact-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let path = scratch("whole.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No staging file left behind.
        assert!(!tmp_sibling(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_creates_parent_directories() {
        let path = scratch("nested/deeper/a.json");
        write_atomic(&path, b"{}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_line_accumulates_jsonl() {
        let path = scratch("log.jsonl");
        let _ = fs::remove_file(&path);
        append_line_atomic(&path, "{\"a\":1}").unwrap();
        append_line_atomic(&path, "{\"b\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        fs::remove_file(&path).unwrap();
    }
}
