//! Cross-crate stat-conservation suite: seeded random machines under
//! every protocol, checked against the counter identities that tie the
//! cache, bus, machine, and fault statistics together.
//!
//! [`MetricsSnapshot::check_conservation`] carries the identities valid
//! for *any* run; this suite layers the stricter ones that hold only
//! fault-free (exact acquire-wait population, zero fault counters) or
//! only for plan-driven faults (detections bounded by injections —
//! manual `corrupt_*` calls corrupt without counting an injection).
//!
//! Runs under `decache_rng::testing::check`; a failure prints a
//! replayable seed (`DECACHE_TEST_SEED=<seed>`).

use decache_core::ProtocolKind;
use decache_machine::{FaultPlan, Machine, MachineBuilder, Script};
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::testing::check;
use decache_rng::Rng;
use decache_telemetry::MetricsSnapshot;
use decache_workloads::{MixConfig, MixWorkload};

const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

const MEMORY_WORDS: u64 = 256;

/// A random scripted machine: 2–6 PEs on one or two buses with tiny
/// caches, mixing reads, writes, and Test-and-Set over a hot shared
/// region so evictions, write-backs, lock rejections, and supplier
/// aborts all occur.
fn build_random(rng: &mut Rng, kind: ProtocolKind, faults: bool) -> Machine {
    let pes = rng.gen_range(2usize..7);
    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(MEMORY_WORDS)
        .cache_lines(*rng.choose(&[4usize, 8, 16]))
        .telemetry();
    if rng.gen_bool(0.3) {
        builder.buses(2);
    }
    if faults {
        builder.fault_plan(
            FaultPlan::new(rng.next_u64())
                .memory_flip_rate(0.002)
                .cache_flip_rate(0.002)
                .bus_loss_rate(0.002)
                .fail_stop_rate(0.0005)
                .region(AddrRange::with_len(Addr::new(0), MEMORY_WORDS)),
        );
    }
    for pe in 0..pes {
        let ops = rng.gen_range(10u64..60);
        let mut script = Script::new();
        for i in 0..ops {
            let addr = if rng.gen_bool(0.7) {
                Addr::new(rng.gen_range(0..24u64))
            } else {
                Addr::new(rng.gen_range(0..MEMORY_WORDS))
            };
            script = match rng.gen_range(0..10u32) {
                0 => script.test_and_set(addr, Word::ONE),
                1 => script.write(addr, Word::ZERO),
                2..=4 => script.write(addr, Word::new(pe as u64 * 1000 + i)),
                _ => script.read(addr),
            };
        }
        builder.processor(script.build());
    }
    builder.build()
}

fn snapshot_of(machine: &Machine) -> MetricsSnapshot {
    let snapshot = MetricsSnapshot::from_machine(machine);
    snapshot.check_conservation().unwrap_or_else(|violations| {
        panic!(
            "conservation violated under {}:\n  {}",
            snapshot.protocol,
            violations.join("\n  ")
        )
    });
    snapshot
}

/// Fault-free runs obey the universal identities plus the exact forms:
/// every counted transaction except a write-back was individually
/// granted, every BRL is a TS attempt or a rejection, and every fault
/// counter is zero.
#[test]
fn conservation_holds_fault_free_across_protocols() {
    check("telemetry_conservation_fault_free", 24, |rng| {
        for kind in PROTOCOLS {
            let mut machine = build_random(rng, kind, false);
            machine.run_to_completion(1_000_000);
            assert!(machine.is_done(), "machine failed to terminate");
            let snapshot = snapshot_of(&machine);

            let bus = snapshot.bus_total();
            let m = &snapshot.machine;
            let h = snapshot.histograms.as_ref().expect("telemetry enabled");
            assert_eq!(
                h.bus_acquire_wait.count,
                bus.total_transactions() - m.writebacks,
                "fault-free: every non-writeback transaction is granted once"
            );
            assert_eq!(
                bus.locked_reads,
                m.ts_attempts() + m.lock_rejected_reads,
                "fault-free: BRL population is exact"
            );
            assert_eq!(snapshot.faults, Default::default(), "no faults were armed");
        }
    });
}

/// The identities survive live fault injection: flips, bus losses, and
/// fail-stops move the counters but never break the ledgers.
#[test]
fn conservation_holds_under_plan_driven_faults() {
    check("telemetry_conservation_faults", 24, |rng| {
        let kind = *rng.choose(&PROTOCOLS);
        let mut machine = build_random(rng, kind, true);
        machine.run_to_completion(1_000_000);
        assert!(machine.is_done(), "machine failed to terminate");
        let snapshot = snapshot_of(&machine);

        // Plan-driven-only identities: detections are bounded by
        // injections (each corrupted word/line is detected or healed at
        // most once before being repaired or adopted).
        let f = &snapshot.faults;
        assert!(
            f.memory_faults_detected <= f.memory_faults_injected,
            "memory detections {} > injections {}",
            f.memory_faults_detected,
            f.memory_faults_injected
        );
        assert!(
            f.cache_faults_detected + f.broadcast_heals <= f.cache_faults_injected,
            "cache detections {} + heals {} > injections {}",
            f.cache_faults_detected,
            f.broadcast_heals,
            f.cache_faults_injected
        );
        assert!(f.pe_fail_stops <= snapshot.pes, "more fail-stops than PEs");
        assert!(
            f.forced_unlocks <= f.pe_fail_stops,
            "forced unlocks {} > fail-stops {}",
            f.forced_unlocks,
            f.pe_fail_stops
        );
    });
}

/// Every snapshot round-trips losslessly through its canonical JSON
/// text, and the canonical form is byte-stable.
#[test]
fn snapshots_round_trip_through_json() {
    check("telemetry_snapshot_round_trip", 16, |rng| {
        let kind = *rng.choose(&PROTOCOLS);
        let with_faults = rng.gen_bool(0.5);
        let mut machine = build_random(rng, kind, with_faults);
        machine.run_to_completion(1_000_000);
        let snapshot = MetricsSnapshot::from_machine(&machine);
        let text = snapshot.to_json_string();
        let back = MetricsSnapshot::parse(&text).expect("snapshot JSON parses");
        assert_eq!(back, snapshot, "lossless round-trip");
        assert_eq!(back.to_json_string(), text, "canonical form is stable");
    });
}

/// Merging independent runs of one configuration preserves every
/// conservation identity (they are all sums or sum-bounds).
#[test]
fn merged_snapshots_conserve() {
    check("telemetry_merge_conserves", 8, |rng| {
        let kind = *rng.choose(&PROTOCOLS);
        let mut merged: Option<MetricsSnapshot> = None;
        // Fixed shape across runs so the snapshots are mergeable.
        for _ in 0..3 {
            let mut builder = MachineBuilder::new(kind);
            builder
                .memory_words(MEMORY_WORDS)
                .cache_lines(8)
                .telemetry();
            for pe in 0..3usize {
                let mut script = Script::new();
                for i in 0..rng.gen_range(10u64..40) {
                    let addr = Addr::new(rng.gen_range(0..32u64));
                    script = match rng.gen_range(0..6u32) {
                        0 => script.test_and_set(addr, Word::ONE),
                        1 => script.write(addr, Word::ZERO),
                        2 => script.write(addr, Word::new(pe as u64 + i)),
                        _ => script.read(addr),
                    };
                }
                builder.processor(script.build());
            }
            let mut machine = builder.build();
            machine.run_to_completion(1_000_000);
            let snapshot = snapshot_of(&machine);
            match &mut merged {
                None => merged = Some(snapshot),
                Some(acc) => acc.merge(&snapshot).expect("same configuration"),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.runs, 3);
        merged.check_conservation().unwrap_or_else(|violations| {
            panic!("merged snapshot violated:\n  {}", violations.join("\n  "))
        });
    });
}

/// The mixed workload issues exactly `ops_per_pe` classified references
/// per PE, and the snapshot's cache tree accounts for every one of them
/// under every protocol.
#[test]
fn mix_workload_reference_count_is_conserved() {
    const PES: usize = 4;
    const OPS: u64 = 500;
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let config = MixConfig {
        ops_per_pe: OPS,
        ..MixConfig::default()
    };
    for kind in PROTOCOLS {
        let mut machine = MachineBuilder::new(kind)
            .memory_words(1 << 12)
            .cache_lines(32)
            .telemetry()
            .processors(PES, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            })
            .build();
        machine.run_to_completion(10_000_000);
        assert!(machine.is_done());
        let snapshot = snapshot_of(&machine);
        assert_eq!(
            snapshot.cache_total().total_references(),
            PES as u64 * OPS,
            "every issued reference lands in exactly one hit/miss cell ({kind:?})"
        );
        let h = snapshot.histograms.as_ref().unwrap();
        assert!(h.bus_acquire_wait.count > 0, "misses crossed the bus");
        assert_eq!(h.ts_spin.count, 0, "the mix issues no Test-and-Set");
    }
}
