//! Golden trace snapshot: a pinned 2-PE scenario under RB and RWB,
//! exported to Perfetto JSON and diffed byte-for-byte against the
//! committed goldens in `tests/golden/`.
//!
//! Timestamps are bus cycles and the writer emits canonical compact
//! JSON, so the export is fully deterministic: any drift means the
//! machine's observable event stream (or the exporter's format)
//! changed. To regenerate after an *intentional* change, run
//! `DECACHE_GOLDEN_PRINT=1 cargo test -p decache-telemetry --test golden_trace`
//! and commit the rewritten files.

use decache_core::ProtocolKind;
use decache_machine::{Machine, MachineBuilder, Script};
use decache_mem::{Addr, Word};
use decache_telemetry::{Json, PerfettoTrace};

/// The pinned scenario: P0 writes a shared word, both PEs contend for
/// one Test-and-Set lock, and both touch a second shared word —
/// exercising BR, BW, BRL, BWU, broadcast satisfaction, and (under
/// RWB) invalidates, in a trace small enough to review by eye.
fn traced_run(kind: ProtocolKind) -> (PerfettoTrace, Machine) {
    let shared = Addr::new(0);
    let lock = Addr::new(8);
    let other = Addr::new(1);
    let trace = PerfettoTrace::new(1024);
    let mut machine = MachineBuilder::new(kind)
        .memory_words(64)
        .cache_lines(8)
        .observer(trace.observer())
        .processor(
            Script::new()
                .write(shared, Word::new(7))
                .test_and_set(lock, Word::ONE)
                .read(other)
                .write(other, Word::new(5))
                .build(),
        )
        .processor(
            Script::new()
                .read(shared)
                .test_and_set(lock, Word::ONE)
                .read(other)
                .build(),
        )
        .build();
    machine.run_to_completion(10_000);
    assert!(machine.is_done());
    (trace, machine)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

#[test]
fn pinned_trace_matches_committed_golden() {
    let print_mode = std::env::var("DECACHE_GOLDEN_PRINT").is_ok();
    for (kind, file) in [
        (ProtocolKind::Rb, "trace_rb.json"),
        (ProtocolKind::Rwb, "trace_rwb.json"),
    ] {
        let (trace, machine) = traced_run(kind);
        assert_eq!(trace.dropped(), 0, "the pinned scenario fits the ring");
        let exported = trace.export_string(&machine);
        let path = golden_path(file);

        if print_mode {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &exported).unwrap();
            println!("rewrote {}", path.display());
            continue;
        }

        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); regenerate with DECACHE_GOLDEN_PRINT=1",
                path.display()
            )
        });
        assert_eq!(
            exported, golden,
            "trace drift under {kind:?}; if intentional, regenerate with \
             DECACHE_GOLDEN_PRINT=1 cargo test -p decache-telemetry --test golden_trace"
        );

        // The golden is well-formed Trace Event Format: it parses, and
        // every event sits on a declared track.
        let doc = Json::parse(&golden).expect("golden parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(events.len() > 5, "scenario produced real events");
        for event in events {
            let tid = event.get("tid").and_then(Json::as_u64).expect("tid");
            assert!(tid <= 3, "tid {tid} beyond machine/P0/P1/bus0 tracks");
        }
        // Round-trip: the canonical writer reproduces the file exactly.
        assert_eq!(doc.to_string(), golden, "canonical form is stable");
    }
}
